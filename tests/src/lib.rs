//! Integration-test support crate.
//!
//! The actual tests live in `tests/tests/*.rs`; this library only hosts
//! small helpers shared between those test files.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use bc_graph::Csr;

/// Maximum relative error tolerated when comparing floating-point BC
/// scores produced by different (but mathematically equivalent)
/// summation orders.
pub const BC_TOL: f64 = 1e-6;

/// Assert that two BC score vectors agree within [`BC_TOL`] relative
/// tolerance (absolute for near-zero entries).
pub fn assert_scores_eq(expected: &[f64], actual: &[f64]) {
    assert_eq!(expected.len(), actual.len(), "score length mismatch");
    for (v, (e, a)) in expected.iter().zip(actual).enumerate() {
        let scale = e.abs().max(1.0);
        assert!(
            (e - a).abs() <= BC_TOL * scale,
            "BC mismatch at vertex {v}: expected {e}, got {a}"
        );
    }
}

/// A tiny deterministic graph menagerie used across integration tests.
pub fn small_graphs() -> Vec<(&'static str, Csr)> {
    use bc_graph::gen;
    vec![
        ("path_16", gen::path(16)),
        ("cycle_17", gen::cycle(17)),
        ("star_20", gen::star(20)),
        ("complete_8", gen::complete(8)),
        ("grid_5x7", gen::grid(5, 7)),
        ("binary_tree_31", gen::balanced_tree(2, 4)),
    ]
}
