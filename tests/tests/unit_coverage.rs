//! Direct coverage of the small metric/statistics helpers the bigger
//! experiment code leans on: `bc_core::teps` (the paper's Eq. 4
//! TEPS_BC and its Table IV variants) and `bc_graph::{stats,
//! analysis}` (the Table II descriptors used to pin generator
//! classes). The formulas are checked from outside the crates, on
//! shapes whose answers are derivable by hand.

use bc_core::teps::{geometric_mean, teps_bc, teps_bc_adjusted};
use bc_graph::analysis::{
    average_local_clustering, degree_assortativity, global_clustering, triangle_count,
};
use bc_graph::stats::{degree_gini, degree_histogram, power_law_alpha};
use bc_graph::{gen, Csr, GraphStats};

#[test]
fn teps_is_mn_over_t() {
    // 250 undirected edges, 64 roots, 0.5s: 250·64/0.5 = 32000.
    assert!((teps_bc(250, 64, 0.5) - 32_000.0).abs() < 1e-9);
    // Time must be positive for the rate to mean anything.
    assert_eq!(teps_bc(250, 64, 0.0), 0.0);
    assert_eq!(teps_bc(250, 64, -2.0), 0.0);
    // Degenerate graphs yield zero rate, not NaN.
    assert_eq!(teps_bc(0, 64, 1.0), 0.0);
}

#[test]
fn adjusted_teps_only_credits_connected_roots() {
    // Table IV's kron caveat: isolated vertices contribute no
    // traversals, so the adjusted metric scales by (n - isolated)/n.
    let raw = teps_bc(500, 200, 2.0);
    let adj = teps_bc_adjusted(500, 200, 50, 2.0);
    assert!((adj - raw * 0.75).abs() < 1e-9);
    // No isolated vertices: both metrics agree exactly.
    assert_eq!(teps_bc_adjusted(500, 200, 0, 2.0), raw);
    // More isolated vertices than vertices clamps to zero.
    assert_eq!(teps_bc_adjusted(500, 200, 1000, 2.0), 0.0);
    assert_eq!(teps_bc_adjusted(500, 200, 50, 0.0), 0.0);
}

#[test]
fn geometric_mean_is_order_invariant_and_scale_correct() {
    assert!((geometric_mean(&[1.0, 8.0]) - (8.0f64).sqrt()).abs() < 1e-12);
    assert!((geometric_mean(&[8.0, 1.0]) - (8.0f64).sqrt()).abs() < 1e-12);
    // A slowdown and the inverse speedup cancel.
    assert!((geometric_mean(&[4.0, 0.25]) - 1.0).abs() < 1e-12);
    // The empty product is the identity.
    assert_eq!(geometric_mean(&[]), 1.0);
}

#[test]
fn graph_stats_of_a_known_shape() {
    // A 3x4 grid: n = 12, m = 17, max degree 4 (the two interior
    // vertices), diameter 5 (opposite corners), one component.
    let g = gen::grid(3, 4);
    let s = GraphStats::compute(&g);
    assert_eq!(s.vertices, 12);
    assert_eq!(s.edges, 17);
    assert_eq!(s.max_degree, 4);
    assert_eq!(s.diameter, 5);
    assert!(s.diameter_exact);
    assert_eq!(s.components, 1);
    assert_eq!(s.isolated, 0);
    assert!((s.avg_degree - 2.0 * 17.0 / 12.0).abs() < 1e-12);
    assert!((s.largest_component_frac - 1.0).abs() < 1e-12);
}

#[test]
fn graph_stats_count_components_and_isolates() {
    // Two triangles plus two isolated vertices.
    let g = Csr::from_undirected_edges(8, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
    let s = GraphStats::compute(&g);
    assert_eq!(s.components, 4);
    assert_eq!(s.isolated, 2);
    assert!((s.largest_component_frac - 3.0 / 8.0).abs() < 1e-12);
    assert_eq!(s.diameter, 1);
}

#[test]
fn stats_estimate_matches_exact_on_small_graphs() {
    // Forcing the estimator path (limit 0) on a graph the exact BFS
    // can also handle: the multi-sweep lower bound must find the true
    // diameter of a path, and never exceed it elsewhere.
    let path = gen::path(40);
    let est = GraphStats::compute_with_limit(&path, 0);
    assert!(!est.diameter_exact);
    assert_eq!(est.diameter, 39);
    let grid = gen::grid(7, 9);
    let exact = GraphStats::compute(&grid);
    let lower = GraphStats::compute_with_limit(&grid, 0);
    assert!(lower.diameter <= exact.diameter);
}

#[test]
fn degree_histogram_shape() {
    let star = gen::star(9); // hub degree 8, eight leaves
    let h = degree_histogram(&star);
    assert_eq!(h.len(), 9);
    assert_eq!(h[1], 8);
    assert_eq!(h[8], 1);
    assert_eq!(h.iter().sum::<usize>(), 9);
}

#[test]
fn gini_separates_the_generator_classes() {
    // The structural divide the hybrid methods exploit: meshes and
    // roads are near-regular (tiny Gini), scale-free graphs are
    // heavily skewed.
    let road = gen::triangulated_grid(24, 24, 1);
    let sf = gen::barabasi_albert(576, 3, 7);
    let g_road = degree_gini(&road);
    let g_sf = degree_gini(&sf);
    assert!(
        g_road < 0.15 && g_sf > 0.3,
        "road {g_road:.3} vs scale-free {g_sf:.3}"
    );
}

#[test]
fn power_law_fit_lands_near_the_ba_exponent() {
    // Barabási–Albert's theoretical tail exponent is 3; the MLE on a
    // finite sample should land in the right neighbourhood, and a
    // regular lattice should give no meaningful (much larger) fit.
    let sf = gen::barabasi_albert(4000, 4, 11);
    let alpha = power_law_alpha(&sf, 8).expect("enough tail samples");
    assert!(
        (2.0..4.5).contains(&alpha),
        "BA tail exponent fit: {alpha:.2}"
    );
    // Too few qualifying vertices: no fit rather than a bogus one.
    assert!(power_law_alpha(&gen::path(8), 3).is_none());
}

#[test]
fn triangle_count_on_closed_forms() {
    // K_n has C(n,3) triangles.
    assert_eq!(triangle_count(&gen::complete(6)), 20);
    // Bipartite and tree shapes have none.
    assert_eq!(triangle_count(&gen::grid(5, 5)), 0);
    assert_eq!(triangle_count(&gen::balanced_tree(2, 5)), 0);
    // One shared diagonal per grid cell: 2 triangles per cell.
    let tg = gen::triangulated_grid(4, 4, 1);
    assert_eq!(triangle_count(&tg), 2 * 9);
}

#[test]
fn clustering_coefficients_bracket_known_graphs() {
    assert!((global_clustering(&gen::complete(7)) - 1.0).abs() < 1e-12);
    assert_eq!(global_clustering(&gen::star(12)), 0.0);
    assert_eq!(average_local_clustering(&gen::cycle(12)), 0.0);
    // The WS lattice keeps high local clustering at low rewiring.
    let ws = gen::watts_strogatz(600, 8, 0.02, 3);
    assert!(average_local_clustering(&ws) > 0.4);
}

#[test]
fn assortativity_sign_matches_structure() {
    // Star: the hub (degree n-1) only touches leaves (degree 1) —
    // maximally disassortative.
    assert!(degree_assortativity(&gen::star(16)) < -0.9);
    // Regular ring: all degrees equal, zero by convention.
    assert_eq!(degree_assortativity(&gen::cycle(20)), 0.0);
}
