//! The static-analysis gate, exercised end to end: the real kernels
//! and scheduler must pass all three passes, and every seeded mutant
//! must be flagged. These are the PR's acceptance criteria as tests —
//! quick bounds here; `ci.sh` runs the full 4×6 bound via the
//! released `bc-analyze` binary.

use bc_analyze::model::{explore, ModelConfig, ModelError, SchedulerMutant, Violation};
use bc_analyze::mutants::{Mutant, SpecMutant};
use bc_analyze::prover::{prove, SpecSet};
use bc_analyze::{analyze, analyze_with_mutant, mutation_battery, AnalyzeOptions};
use bc_core::kernel_spec::{KernelId, LaunchId};
use bc_core::Schedule;

fn quick() -> AnalyzeOptions {
    AnalyzeOptions {
        roots: 1,
        quick: true,
        datasets: Some(3),
        ..AnalyzeOptions::default()
    }
}

#[test]
fn full_analysis_is_clean_at_quick_bounds() {
    let report = analyze(&quick());
    assert!(report.is_clean(), "{}", report.render());
    // The paper's claims, as named facts of the report: the backward
    // sweep is race-free with an empty minimal atomic set, and the
    // pull kernel needs exactly its declared atomicOr.
    let backward = report
        .prover
        .launches
        .iter()
        .find(|l| l.launch == LaunchId::Backward)
        .unwrap();
    assert!(backward.is_race_free());
    let sweep_audit = report
        .prover
        .audits
        .iter()
        .find(|a| a.kernel == KernelId::BackwardSweep)
        .unwrap();
    assert!(sweep_audit.required.is_empty() && sweep_audit.agrees());
    let pull_audit = report
        .prover
        .audits
        .iter()
        .find(|a| a.kernel == KernelId::PullForward)
        .unwrap();
    assert_eq!(pull_audit.required.len(), 1);
    // Every exploration exhausted its bound (no budget bailouts).
    assert!(report.explorations.iter().all(|e| e.result.is_ok()));
    // Conformance exercised every declared spec.
    assert!(report.conformance.unhit_specs.is_empty());
    assert!(report.conformance.events > 0);
}

#[test]
fn every_seeded_mutant_is_flagged() {
    let opts = quick();
    for m in Mutant::ALL {
        let (flagged, evidence) = analyze_with_mutant(m, &opts);
        assert!(flagged, "mutant {m} survived the analyzer");
        assert!(!evidence.is_empty(), "mutant {m} flagged without evidence");
    }
    let (all, lines) = mutation_battery(&opts);
    assert!(all, "{lines}");
}

#[test]
fn prover_refutations_name_the_racy_pairs() {
    // The seeded predecessor-style accumulation must be refuted *in
    // the backward launch specifically*, with δ on both sides of the
    // reported pair — the analyzer explains the bug, not just rejects.
    let report = prove(&SpecMutant::PredecessorAccumulation.apply());
    let backward = report
        .launches
        .iter()
        .find(|l| l.launch == LaunchId::Backward)
        .unwrap();
    assert!(!backward.is_race_free());
    assert!(backward
        .races
        .iter()
        .any(|r| r.writer.1.array == bc_gpusim::trace::KernelArray::Delta));
    // And the real specs stay provable in the same process (no global
    // state leaks between spec sets).
    assert!(prove(&SpecSet::real()).is_clean());
}

#[test]
fn explorer_counterexamples_replay() {
    // A mutant violation must come with a concrete interleaving.
    let err = explore(
        Schedule::WorkStealing,
        &ModelConfig::quick(),
        Some(SchedulerMutant::NonAtomicSteal),
    )
    .expect_err("the racy steal must be refuted");
    let ModelError::Violation(v) = err else {
        panic!("expected a violation, got {err}");
    };
    assert!(matches!(
        v.kind,
        Violation::Duplicated(_) | Violation::Lost(_)
    ));
    assert!(
        v.steps.iter().any(|s| s.contains("read-half")),
        "the counterexample must include the torn steal: {:?}",
        v.steps
    );
}

#[test]
fn explorer_is_clean_for_all_schedules_at_quick_bound() {
    for schedule in Schedule::ALL {
        for cfg in [ModelConfig::quick(), ModelConfig::quick().skewed()] {
            let e = explore(schedule, &cfg, None)
                .unwrap_or_else(|err| panic!("{schedule} must be clean: {err}"));
            assert!(e.states > 0, "{schedule}");
        }
    }
}
