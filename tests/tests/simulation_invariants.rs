//! Invariants of the GPU simulation layer: work accounting must be
//! internally consistent and the timing model monotone in work.

use bc_core::{BcOptions, Method, RootSelection};
use bc_gpusim::{DeviceConfig, IterationWork};
use bc_graph::{gen, traversal};
use proptest::prelude::*;

#[test]
fn useful_edge_inspections_match_reachable_edges() {
    // One root on a connected graph: the forward pass inspects every
    // directed edge exactly once, the backward pass re-inspects the
    // edges of every level except the deepest and level 0.
    let g = gen::grid(10, 10);
    let opts = BcOptions {
        roots: RootSelection::Explicit(vec![0]),
        ..Default::default()
    };
    let run = Method::WorkEfficient.run(&g, &opts).unwrap();
    let m2 = g.num_directed_edges() as u64;
    let c = &run.report.counters;
    assert!(
        c.useful_edge_inspections >= m2,
        "forward pass alone covers all {m2} arcs"
    );
    assert!(
        c.useful_edge_inspections <= 2 * m2,
        "at most both passes: {} vs {}",
        c.useful_edge_inspections,
        2 * m2
    );
    assert_eq!(
        c.wasted_edge_inspections, 0,
        "work-efficient wastes nothing"
    );
}

#[test]
fn edge_parallel_waste_grows_with_diameter() {
    let opts = BcOptions {
        roots: RootSelection::Explicit(vec![0]),
        ..Default::default()
    };
    let path = gen::path(256);
    let star = gen::star(256);
    let wasted_path = Method::EdgeParallel
        .run(&path, &opts)
        .unwrap()
        .report
        .counters
        .wasted_edge_inspections;
    let wasted_star = Method::EdgeParallel
        .run(&star, &opts)
        .unwrap()
        .report
        .counters
        .wasted_edge_inspections;
    assert!(
        wasted_path > 20 * wasted_star,
        "per-depth all-edges scans: path {wasted_path} vs star {wasted_star}"
    );
}

#[test]
fn iteration_count_tracks_eccentricity() {
    let g = gen::path(100);
    for root in [0u32, 50] {
        let opts = BcOptions {
            roots: RootSelection::Explicit(vec![root]),
            ..Default::default()
        };
        let run = Method::WorkEfficient.run(&g, &opts).unwrap();
        let ecc = traversal::eccentricity(&g, root) as u64;
        // init + forward levels (ecc + 1) + backward levels (ecc - 1).
        let iters = run.report.counters.iterations;
        assert!(
            iters >= 2 * ecc - 1 && iters <= 2 * ecc + 3,
            "root {root}: {iters} iterations for eccentricity {ecc}"
        );
    }
}

#[test]
fn vertex_parallel_checks_every_vertex_every_level() {
    let g = gen::path(64);
    let opts = BcOptions {
        roots: RootSelection::Explicit(vec![0]),
        ..Default::default()
    };
    let run = Method::VertexParallel.run(&g, &opts).unwrap();
    let c = &run.report.counters;
    // 64 levels x (n - frontier) wasted checks — O(n^2) in total.
    assert!(
        c.wasted_vertex_checks > (g.num_vertices() * g.num_vertices()) as u64 / 2,
        "vertex-parallel must scan all vertices per depth, got {}",
        c.wasted_vertex_checks
    );
}

#[test]
fn device_seconds_scale_with_sm_count() {
    // Twice the SMs, same roots: coarse-grained makespan halves
    // (roots spread over twice as many blocks).
    let g = gen::watts_strogatz(2048, 8, 0.1, 1);
    let mut fat = DeviceConfig::gtx_titan();
    fat.num_sms *= 2;
    fat.mem_bandwidth_gb_s *= 2.0; // keep per-SM bandwidth equal
    let opts14 = BcOptions {
        roots: RootSelection::Strided(56),
        ..Default::default()
    };
    let opts28 = BcOptions {
        roots: RootSelection::Strided(56),
        device: fat,
        ..Default::default()
    };
    let t14 = Method::WorkEfficient
        .run(&g, &opts14)
        .unwrap()
        .report
        .device_seconds;
    let t28 = Method::WorkEfficient
        .run(&g, &opts28)
        .unwrap()
        .report
        .device_seconds;
    let ratio = t14 / t28;
    assert!(
        (1.6..=2.4).contains(&ratio),
        "doubling SMs should ~halve time, got {ratio:.2}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_timing_monotone_in_work(
        steps in 0u64..1_000_000,
        extra in 1u64..1_000_000,
        bytes in 0u64..100_000_000,
        scattered in 0u64..1_000_000,
        ws in 0u64..100_000_000,
    ) {
        let d = DeviceConfig::gtx_titan();
        let base = IterationWork {
            warp_steps: steps,
            coalesced_bytes: bytes,
            scattered_accesses: scattered,
            working_set_bytes: ws,
            ..Default::default()
        };
        let t0 = d.block_iteration_seconds(&base);
        prop_assert!(t0 > 0.0, "every iteration pays overhead");
        for more in [
            IterationWork { warp_steps: steps + extra, ..base },
            IterationWork { coalesced_bytes: bytes + extra, ..base },
            IterationWork { scattered_accesses: scattered + extra, ..base },
            IterationWork { atomics: extra, ..base },
            IterationWork { contended_atomics: extra, ..base },
            IterationWork { global_sync: true, ..base },
        ] {
            let t1 = d.block_iteration_seconds(&more);
            prop_assert!(t1 >= t0, "more work must never be faster: {t0} -> {t1}");
        }
        // Larger working sets gather slower (worse hit rate).
        let worse = IterationWork { working_set_bytes: ws.saturating_mul(2), ..base };
        prop_assert!(d.block_iteration_seconds(&worse) + 1e-15 >= t0);
    }

    #[test]
    fn prop_warp_steps_bounds(
        trips in proptest::collection::vec(0u32..64, 0..600),
    ) {
        use bc_gpusim::warp;
        let steps = warp::round_robin_warp_steps(&trips, 256, 32);
        let total: u64 = trips.iter().map(|&t| t as u64).sum();
        // Lower bound: perfect balance across 256 lanes grouped in
        // 8 warps — at least ceil(total / 256) per warp round.
        prop_assert!(steps * 32 >= total.div_ceil(8), "steps {steps} too low for {total}");
        // Upper bound: full serialization.
        prop_assert!(steps <= total.max(1), "steps {steps} exceed serial work {total}");
        let eff = warp::divergence_efficiency(&trips, 256, 32);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&eff));
    }

    #[test]
    fn prop_makespan_bounds(
        times in proptest::collection::vec(0.0f64..10.0, 1..200),
        blocks in 1u32..32,
    ) {
        use bc_gpusim::coarse_grained_makespan;
        let makespan = coarse_grained_makespan(&times, blocks);
        let total: f64 = times.iter().sum();
        let max = times.iter().cloned().fold(0.0, f64::max);
        prop_assert!(makespan >= total / blocks as f64 - 1e-9, "below perfect balance");
        prop_assert!(makespan >= max - 1e-12, "cannot beat the longest item");
        prop_assert!(makespan <= total + 1e-9, "cannot exceed serial time");
    }
}
