//! Cross-crate integration: cluster runs vs single-device runs, and
//! I/O round-trips over generated graphs.

use bc_cluster::{run_cluster, strong_scaling, ClusterConfig};
use bc_core::{cpu_parallel, Method};
use bc_graph::{gen, io, Csr, DatasetId};
use bc_integration::assert_scores_eq;
use proptest::prelude::*;

#[test]
fn cluster_matches_host_reference_across_classes() {
    // ~2k-vertex instances: all n roots run, so scores must be exact.
    for (d, reduction) in [
        (DatasetId::Smallworld, 6),
        (DatasetId::LuxembourgOsm, 6),
        (DatasetId::KronG500Logn20, 9),
    ] {
        let g = d.generate(reduction, 11);
        let n = g.num_vertices();
        let cfg = ClusterConfig {
            method: Method::WorkEfficient,
            ..ClusterConfig::keeneland(3)
        };
        let run = run_cluster(&g, &cfg, n).unwrap();
        let expect = cpu_parallel::betweenness(&g).unwrap();
        assert_scores_eq(&expect, &run.scores);
    }
}

#[test]
fn cluster_scores_independent_of_gpu_count() {
    let g = gen::watts_strogatz(400, 6, 0.1, 3);
    let base = ClusterConfig {
        method: Method::WorkEfficient,
        ..ClusterConfig::keeneland(1)
    };
    let r1 = run_cluster(&g, &base, 400).unwrap();
    let r8 = run_cluster(&g, &ClusterConfig { nodes: 8, ..base }, 400).unwrap();
    assert_scores_eq(&r1.scores, &r8.scores);
}

#[test]
fn strong_scaling_monotone_until_saturation() {
    let g = gen::delaunay_like(180, 180, 1);
    let base = ClusterConfig::keeneland(1);
    let pts = strong_scaling(&g, &base, &[1, 2, 4, 8, 16], 64).unwrap();
    for w in pts.windows(2) {
        assert!(
            w[1].report.total_seconds <= w[0].report.total_seconds * 1.05,
            "more nodes should not slow the run: {} -> {}",
            w[0].report.total_seconds,
            w[1].report.total_seconds
        );
    }
    // Early doublings are near-linear at this size.
    assert!(pts[1].speedup > 1.6, "2-node speedup {:.2}", pts[1].speedup);
}

#[test]
fn io_round_trips_for_every_generator_class() {
    for d in DatasetId::ALL {
        let g = d.small_instance(9);
        let mut metis = Vec::new();
        io::write_metis(&g, &mut metis).unwrap();
        assert_eq!(
            io::read_metis(metis.as_slice()).unwrap(),
            g,
            "{} metis",
            d.name()
        );

        let mut mm = Vec::new();
        io::write_matrix_market(&g, &mut mm).unwrap();
        assert_eq!(
            io::read_matrix_market(mm.as_slice()).unwrap(),
            g,
            "{} mm",
            d.name()
        );

        let mut bin = Vec::new();
        io::write_binary(&g, &mut bin).unwrap();
        assert_eq!(
            io::read_binary(bin.as_slice()).unwrap(),
            g,
            "{} binary",
            d.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_io_round_trip_random(n in 2usize..80, frac in 0.0f64..0.8, seed in 0u64..100) {
        let m = ((n * (n - 1) / 2) as f64 * frac) as usize;
        let g = gen::erdos_renyi(n, m, seed);
        let mut buf = Vec::new();
        io::write_metis(&g, &mut buf).unwrap();
        prop_assert_eq!(io::read_metis(buf.as_slice()).unwrap(), g.clone());
        buf.clear();
        io::write_binary(&g, &mut buf).unwrap();
        prop_assert_eq!(io::read_binary(buf.as_slice()).unwrap(), g.clone());
        buf.clear();
        io::write_edge_list(&g, &mut buf).unwrap();
        let el = io::read_edge_list(buf.as_slice()).unwrap();
        // Edge lists drop isolated vertices but preserve structure.
        prop_assert_eq!(el.num_undirected_edges(), g.num_undirected_edges());
    }

    #[test]
    fn prop_relabel_preserves_bc_multiset(n in 4usize..40, frac in 0.2f64..0.9, seed in 0u64..50) {
        use bc_core::brandes;
        use bc_graph::builder;
        let m = ((n * (n - 1) / 2) as f64 * frac) as usize;
        let g = gen::erdos_renyi(n, m, seed);
        // Reverse permutation.
        let perm: Vec<u32> = (0..n as u32).rev().collect();
        let h = builder::relabel(&g, &perm);
        let mut bg = brandes::betweenness(&g);
        let mut bh = brandes::betweenness(&h);
        bg.sort_by(f64::total_cmp);
        bh.sort_by(f64::total_cmp);
        for (a, b) in bg.iter().zip(&bh) {
            prop_assert!((a - b).abs() < 1e-7, "BC must be label-invariant");
        }
    }

    #[test]
    fn prop_approx_unbiased_at_full_sampling(n in 4usize..40, frac in 0.2f64..0.9, seed in 0u64..50) {
        use bc_core::{approx, brandes, BcOptions};
        let m = ((n * (n - 1) / 2) as f64 * frac) as usize;
        let g = gen::erdos_renyi(n, m, seed);
        let run = approx::approximate_bc(&g, &Method::WorkEfficient, n, seed, &BcOptions::default())
            .unwrap();
        let exact = brandes::betweenness(&g);
        for (e, a) in exact.iter().zip(&run.scores) {
            prop_assert!((e - a).abs() < 1e-7);
        }
    }
}

#[test]
fn directed_graph_io_preserved_in_binary() {
    let g = Csr::from_directed_edges(5, [(0u32, 1u32), (1, 2), (2, 0), (3, 4)]);
    let mut buf = Vec::new();
    io::write_binary(&g, &mut buf).unwrap();
    let h = io::read_binary(buf.as_slice()).unwrap();
    assert_eq!(g, h);
    assert!(!h.is_symmetric());
}
