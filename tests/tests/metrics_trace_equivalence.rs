//! Property test for the observability layer: on random graphs, the
//! counters `bc_metrics` reports for each level are *exactly* the
//! counts derivable by replaying the same root under the recording
//! trace sink — edges inspected = traced dedup-CAS events, queue
//! insertions = traced `Q_next` writes, σ-updates = traced
//! `atomicAdd`s, priced atomics = traced atomic events — and the
//! metrics stream is identical at 1, 2, and 4 host threads.

use bc_core::engine::{process_root_traced, RootContext, RootOutcome, SearchWorkspace};
use bc_core::methods::models::WorkEfficientModel;
use bc_core::{BcOptions, Method, RootSelection};
use bc_gpusim::trace::{AccessKind, KernelArray, TracePhase};
use bc_gpusim::DeviceConfig;
use bc_graph::Csr;
use bc_metrics::{MetricPhase, RootMetrics};
use bc_verify::trace::{LevelTrace, RecordingSink, Trace};
use proptest::collection::vec;
use proptest::prelude::*;

/// Replay one root under the trace recorder (same work-efficient
/// model the metered run prices with) and return its level traces.
fn trace_root(g: &Csr, root: u32, device: &DeviceConfig) -> Trace {
    let mut ws = SearchWorkspace::new(g.num_vertices());
    let mut bc = vec![0.0; g.num_vertices()];
    let mut out = RootOutcome::default();
    let mut sink = RecordingSink::default();
    process_root_traced(
        &RootContext { g, root, device },
        &mut ws,
        &mut WorkEfficientModel::default(),
        &mut bc,
        &mut out,
        &mut sink,
    );
    sink.trace
}

fn count(level: &LevelTrace, array: KernelArray, kind: AccessKind) -> u64 {
    level
        .events
        .iter()
        .filter(|e| e.array == array && e.kind == kind)
        .count() as u64
}

/// Check one root's metrics against its independently recorded trace.
fn assert_root_matches_trace(g: &Csr, m: &RootMetrics, device: &DeviceConfig) {
    let trace = trace_root(g, m.root, device);
    assert_eq!(
        trace.levels.len(),
        m.levels.len(),
        "root {}: level count",
        m.root
    );
    for (traced, level) in trace.levels.iter().zip(&m.levels) {
        let phase = match level.phase {
            MetricPhase::Forward => TracePhase::Forward,
            MetricPhase::Backward => TracePhase::Backward,
        };
        assert_eq!((traced.phase, traced.depth), (phase, level.depth));
        assert_eq!(
            level.priced_atomics,
            traced.atomic_events(),
            "root {} {:?} depth {}: priced atomics vs traced",
            m.root,
            level.phase,
            level.depth
        );
        if level.phase == MetricPhase::Forward {
            // Push forward level (work-efficient is push-only): one
            // dedup CAS per inspected edge, one Q_next write per won
            // CAS, one σ atomicAdd per update.
            let cas = count(traced, KernelArray::Dist, AccessKind::AtomicCas);
            let enq = count(traced, KernelArray::QNext, AccessKind::Write);
            let sigma = count(traced, KernelArray::Sigma, AccessKind::AtomicAdd);
            assert_eq!(level.edges_inspected, cas, "root {}: edges", m.root);
            assert_eq!(level.cas_attempts, cas);
            assert_eq!(level.cas_wins, enq);
            assert_eq!(level.q_next, enq);
            assert_eq!(level.updates, sigma);
        } else {
            assert_eq!(traced.atomic_events(), 0, "backward must be atomic-free");
        }
    }
}

/// Decode one drawn word into an edge on `n` vertices: low half is
/// the source, high half the target. (The vendored proptest stub has
/// no tuple or mapped strategies, so graphs are built in the body.)
fn decode_edges(n: usize, raw: &[u64]) -> Vec<(u32, u32)> {
    raw.iter()
        .take(3 * n)
        .map(|w| ((w % n as u64) as u32, ((w >> 32) % n as u64) as u32))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn metrics_equal_trace_replay_at_every_thread_count(
        n in 2usize..48,
        raw in vec(0u64..u64::MAX, 0..144),
    ) {
        let g = Csr::from_undirected_edges(n, decode_edges(n, &raw));
        let k = n.min(6);
        let opts = |threads| BcOptions {
            roots: RootSelection::Strided(k),
            threads,
            ..BcOptions::default()
        };
        let device = BcOptions::default().device;
        let (_, baseline) = Method::WorkEfficient
            .run_metered(&g, &opts(1))
            .expect("fits in device memory");
        let expected_roots = RootSelection::Strided(k).resolve(n);
        prop_assert_eq!(baseline.per_root.len(), expected_roots.len());
        for (m, &root) in baseline.per_root.iter().zip(&expected_roots) {
            prop_assert_eq!(m.root, root);
            assert_root_matches_trace(&g, m, &device);
        }
        // Thread count moves work between shards, never the counters.
        for threads in [2usize, 4] {
            let (_, run) = Method::WorkEfficient
                .run_metered(&g, &opts(threads))
                .expect("fits in device memory");
            prop_assert_eq!(run.per_root.len(), baseline.per_root.len());
            for (a, b) in run.per_root.iter().zip(&baseline.per_root) {
                prop_assert_eq!(a.root, b.root);
                prop_assert_eq!(&a.levels, &b.levels, "threads={}", threads);
            }
            prop_assert_eq!(run.summary, baseline.summary);
        }
    }
}
