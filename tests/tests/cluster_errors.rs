//! Contract tests for every [`ClusterError`] variant: mid-run
//! failures carry the partial [`bc_cluster::ClusterRun`] (merged in
//! root order, fault counters intact), pre-flight failures carry
//! actionable diagnostics, and every variant renders a structured
//! message — the durability layer's "never a bare panic" claim.

use bc_cluster::{
    run_cluster, run_cluster_durable, run_cluster_with_faults, ClusterConfig, ClusterError,
    DurabilityOptions, FaultPlan,
};
use bc_core::Method;
use bc_graph::gen;
use std::error::Error;

#[test]
fn invalid_config_is_preflight_and_partial_free() {
    let g = gen::grid(6, 6);
    let cfg = ClusterConfig {
        nodes: 0,
        ..ClusterConfig::keeneland(1)
    };
    let err = run_cluster(&g, &cfg, 8).expect_err("zero nodes cannot run");
    match &err {
        ClusterError::InvalidConfig { what } => assert!(!what.is_empty()),
        other => panic!("expected InvalidConfig, got {other}"),
    }
    assert!(err.partial().is_none(), "no work started");
    assert!(err.to_string().contains("invalid cluster configuration"));
}

#[test]
fn insufficient_memory_names_every_doomed_gpu_and_its_footprint() {
    // GPU-FAN's O(n^2) footprint cannot fit a 64k-vertex graph in a
    // Keeneland device; the pre-flight rejection must say which GPUs
    // and exactly how many bytes are missing.
    let g = gen::grid(256, 256);
    let cfg = ClusterConfig {
        method: Method::GpuFan,
        ..ClusterConfig::keeneland(2)
    };
    let err = run_cluster(&g, &cfg, 4).expect_err("O(n^2) cannot fit");
    match &err {
        ClusterError::InsufficientMemory {
            method,
            diagnostics,
        } => {
            assert_eq!(method, Method::GpuFan.name());
            assert_eq!(
                diagnostics.len(),
                cfg.nodes * cfg.gpus_per_node,
                "every GPU in the homogeneous cluster is diagnosed"
            );
            for (i, d) in diagnostics.iter().enumerate() {
                assert_eq!(d.gpu, i, "diagnostics are indexed by flat GPU id");
                assert!(
                    d.required_bytes > d.available_bytes,
                    "gpu {i}: required {} must exceed available {}",
                    d.required_bytes,
                    d.available_bytes
                );
            }
            let s = err.to_string();
            assert!(s.contains("gpu 0") && s.contains(" B"), "{s}");
        }
        other => panic!("expected InsufficientMemory, got {other}"),
    }
    assert!(err.partial().is_none(), "pre-flight: no work started");
}

#[test]
fn all_gpus_lost_carries_the_merged_partial() {
    let g = gen::grid(10, 10);
    let plan = FaultPlan {
        dead_gpus: vec![0, 1, 2],
        death_fraction: 0.5,
        ..FaultPlan::none()
    };
    let err = run_cluster_with_faults(&g, &ClusterConfig::keeneland(1), 20, &plan)
        .expect_err("the whole single-node cluster dies");
    match &err {
        ClusterError::AllGpusLost {
            dead,
            completed_roots,
            partial,
        } => {
            assert_eq!(dead.len(), 3);
            assert_eq!(partial.report.roots_sampled, *completed_roots);
            assert_eq!(partial.report.faults.dead_gpus, 3);
            assert_eq!(partial.scores.len(), g.num_vertices());
        }
        other => panic!("expected AllGpusLost, got {other}"),
    }
    assert!(err.partial().is_some());
}

#[test]
fn root_failed_reports_retry_exhaustion_with_partial() {
    let g = gen::grid(8, 8);
    let plan = FaultPlan {
        panic_rate: 1.0,
        max_attempts: 2,
        ..FaultPlan::none()
    };
    let err = run_cluster_with_faults(&g, &ClusterConfig::keeneland(1), 8, &plan)
        .expect_err("every attempt is shot down");
    match &err {
        ClusterError::RootFailed {
            gpus_tried,
            last_error,
            partial,
            ..
        } => {
            assert!(*gpus_tried > 0);
            assert!(!last_error.is_empty());
            assert_eq!(partial.scores.len(), g.num_vertices());
        }
        other => panic!("expected RootFailed, got {other}"),
    }
}

#[test]
fn reduce_failed_keeps_node_local_results() {
    let g = gen::grid(12, 12);
    let cfg = ClusterConfig::keeneland(2);
    let plan = FaultPlan {
        reduce_drop_rate: 1.0,
        ..FaultPlan::none()
    };
    let err = run_cluster_with_faults(&g, &cfg, 16, &plan).expect_err("reduce can never complete");
    match &err {
        ClusterError::ReduceFailed {
            depth,
            attempts,
            partial,
        } => {
            assert!(
                *attempts > 1,
                "the level was retransmitted before giving up"
            );
            let clean = run_cluster(&g, &cfg, 16).unwrap();
            assert_eq!(
                partial.scores, clean.scores,
                "all per-GPU work completed; only the cross-node tree failed"
            );
            assert!(err.to_string().contains(&format!("level {depth}")));
        }
        other => panic!("expected ReduceFailed, got {other}"),
    }
}

#[test]
fn process_killed_counts_checkpointed_roots_and_advises_resume() {
    let g = gen::grid(10, 10);
    let plan = FaultPlan {
        kill_fraction: Some(0.5),
        ..FaultPlan::none()
    };
    let err = run_cluster_durable(
        &g,
        &ClusterConfig::keeneland(1),
        24,
        &plan,
        &DurabilityOptions::default(),
    )
    .expect_err("the seeded kill point fires");
    match &err {
        ClusterError::ProcessKilled {
            completed_roots,
            planned_roots,
            partial,
        } => {
            assert_eq!(*planned_roots, 24);
            assert!(*completed_roots < *planned_roots);
            assert_eq!(partial.report.roots_sampled, *completed_roots);
        }
        other => panic!("expected ProcessKilled, got {other}"),
    }
    assert!(
        err.to_string().contains("--checkpoint"),
        "the message tells the operator how to resume: {err}"
    );
}

#[test]
fn checkpoint_errors_chain_their_source() {
    // Point the store at a path that exists as a *file*: opening the
    // directory fails, surfacing as a structured Checkpoint error with
    // the underlying store error chained via `Error::source`.
    let dir = std::env::temp_dir().join(format!("bc-err-as-file-{}", std::process::id()));
    std::fs::write(&dir, b"not a directory").unwrap();
    let g = gen::grid(6, 6);
    let err = run_cluster_durable(
        &g,
        &ClusterConfig::keeneland(1),
        8,
        &FaultPlan::none(),
        &DurabilityOptions {
            checkpoint: Some(dir.clone()),
            ..DurabilityOptions::default()
        },
    )
    .expect_err("a file where the checkpoint directory should be");
    match &err {
        ClusterError::Checkpoint { .. } => {
            assert!(err.source().is_some(), "the store error is chained");
        }
        other => panic!("expected Checkpoint, got {other}"),
    }
    assert!(err.partial().is_none(), "store rejected before any work");
    let _ = std::fs::remove_file(&dir);
}

#[test]
fn worker_panicked_contract_carries_partial() {
    // The variant's accessor contract, exercised directly: a genuine
    // worker panic hands back everything completed so far.
    let g = gen::grid(6, 6);
    let run = run_cluster(&g, &ClusterConfig::keeneland(1), 8).unwrap();
    let err = ClusterError::WorkerPanicked {
        gpu: 1,
        message: "index out of bounds".into(),
        partial: Box::new(run),
    };
    assert_eq!(
        err.partial().unwrap().scores.len(),
        g.num_vertices(),
        "partial scores span the full vertex set"
    );
    assert!(err.to_string().contains("gpu 1"));
}
