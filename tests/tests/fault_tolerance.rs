//! Fault-tolerance guarantees of the cluster runner, end to end.
//!
//! The contract under test: a *recoverable* fault schedule — whatever
//! mix of transient errors, contained panics, GPU deaths, stragglers,
//! and lossy reductions it injects — changes the clock but not one
//! bit of the scores, at any cluster width; and an *unrecoverable*
//! schedule comes back as a structured [`ClusterError`] carrying the
//! partial result, never as a process panic.

use bc_cluster::{
    run_cluster_with_faults, score_checksum, ClusterConfig, ClusterError, FaultPlan, Schedule,
};
use bc_graph::gen;
use proptest::prelude::*;

fn baseline(g: &bc_graph::Csr, nodes: usize, roots: usize) -> bc_cluster::ClusterRun {
    run_cluster_with_faults(
        g,
        &ClusterConfig::keeneland(nodes),
        roots,
        &FaultPlan::none(),
    )
    .expect("fault-free run succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any recoverable plan proptest can dream up yields scores
    /// bitwise identical to the fault-free run at 1, 2, and 8 nodes —
    /// and identical *across* those widths.
    #[test]
    fn prop_recoverable_plans_are_invisible_in_the_scores(
        seed in 0u64..1000,
        transient in 0.0f64..0.35,
        oom in 0.0f64..0.15,
        panic_rate in 0.0f64..0.2,
        dead_sel in 0usize..4,
        death_fraction in 0.0f64..1.0,
        straggler_sel in 0usize..4,
        drop in 0.0f64..0.4,
        corrupt in 0.0f64..0.3,
    ) {
        let g = gen::watts_strogatz(120, 4, 0.1, 5);
        let roots = 24;
        let plan = FaultPlan {
            seed,
            transient_rate: transient,
            oom_rate: oom,
            panic_rate,
            // Selector 3 means "no such GPU" — the stub proptest has
            // no Option strategy.
            dead_gpus: (dead_sel < 3).then_some(dead_sel).into_iter().collect(),
            death_fraction,
            straggler_gpus: (straggler_sel < 3).then_some(straggler_sel).into_iter().collect(),
            straggler_slowdown: 3.0,
            reduce_drop_rate: drop,
            reduce_corrupt_rate: corrupt,
            ..FaultPlan::none()
        };
        let clean = baseline(&g, 2, roots);
        for nodes in [1usize, 2, 8] {
            let cfg = ClusterConfig::keeneland(nodes);
            let faulted = run_cluster_with_faults(&g, &cfg, roots, &plan)
                .expect("recoverable plan is recovered from");
            prop_assert!(
                faulted.scores.iter().zip(&clean.scores)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "scores moved at {nodes} node(s), seed {seed}"
            );
            prop_assert_eq!(faulted.report.checksum, clean.report.checksum);
            prop_assert_eq!(faulted.report.checksum, score_checksum(&faulted.scores));
            prop_assert!(faulted.report.faults.added_seconds >= 0.0);
            prop_assert!(faulted.report.total_seconds >= clean.report.total_seconds - 1e-9
                || nodes != 2);
        }
    }

    /// Dynamic schedules compose with fault injection: an arbitrary
    /// root subset (the strided selection is a pure function of the
    /// count) run under guided or work-stealing assignment with any
    /// recoverable fault plan is bitwise identical to the fault-free
    /// *static* run of the same subset. Cost-planned seeding moves
    /// roots to different GPUs and faults then migrate them again —
    /// the root-ordered merge must erase both.
    #[test]
    fn prop_dynamic_schedules_with_faults_match_static_fault_free(
        seed in 0u64..1000,
        roots in 1usize..=96,
        sched_sel in 0usize..2,
        transient in 0.0f64..0.3,
        panic_rate in 0.0f64..0.2,
        dead_sel in 0usize..4,
        death_fraction in 0.0f64..1.0,
        drop in 0.0f64..0.4,
    ) {
        let g = gen::watts_strogatz(150, 6, 0.1, 9);
        let schedule = if sched_sel == 0 {
            Schedule::Guided
        } else {
            Schedule::WorkStealing
        };
        let plan = FaultPlan {
            seed,
            transient_rate: transient,
            panic_rate,
            dead_gpus: (dead_sel < 3).then_some(dead_sel).into_iter().collect(),
            death_fraction,
            reduce_drop_rate: drop,
            ..FaultPlan::none()
        };
        let clean = baseline(&g, 2, roots);
        let cfg = ClusterConfig {
            schedule,
            ..ClusterConfig::keeneland(2)
        };
        let faulted = run_cluster_with_faults(&g, &cfg, roots, &plan)
            .expect("recoverable plan under a dynamic schedule is recovered from");
        prop_assert!(
            faulted.scores.iter().zip(&clean.scores)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "scores moved under {} with {} root(s), seed {}",
            schedule, roots, seed
        );
        prop_assert_eq!(faulted.report.checksum, clean.report.checksum);
        prop_assert_eq!(faulted.report.checksum, score_checksum(&faulted.scores));
    }

    /// The same plan replayed twice is bitwise identical in scores
    /// *and* in every counter and clock — the schedule is a pure
    /// function of (plan, graph, config).
    #[test]
    fn prop_faulted_runs_replay_exactly(seed in 0u64..500) {
        let g = gen::erdos_renyi(100, 300, 3);
        let plan = FaultPlan {
            seed,
            transient_rate: 0.2,
            panic_rate: 0.1,
            dead_gpus: vec![1],
            death_fraction: 0.5,
            reduce_drop_rate: 0.3,
            ..FaultPlan::none()
        };
        let cfg = ClusterConfig::keeneland(2);
        let a = run_cluster_with_faults(&g, &cfg, 20, &plan).expect("recoverable");
        let b = run_cluster_with_faults(&g, &cfg, 20, &plan).expect("recoverable");
        prop_assert_eq!(&a.scores, &b.scores);
        prop_assert_eq!(a.report.faults, b.report.faults);
        prop_assert_eq!(a.report.total_seconds.to_bits(), b.report.total_seconds.to_bits());
    }
}

/// Killing every GPU mid-run is unrecoverable: the error is
/// structured, names the dead devices, and carries the roots that
/// completed before the lights went out.
#[test]
fn all_gpus_dead_returns_partial_report_not_a_panic() {
    let g = gen::grid(12, 12);
    let plan = FaultPlan {
        dead_gpus: (0..6).collect(),
        death_fraction: 0.5,
        ..FaultPlan::none()
    };
    match run_cluster_with_faults(&g, &ClusterConfig::keeneland(2), 24, &plan) {
        Err(ClusterError::AllGpusLost {
            dead,
            completed_roots,
            partial,
        }) => {
            assert_eq!(dead, (0..6).collect::<Vec<_>>());
            assert!(
                completed_roots > 0,
                "death_fraction 0.5 completes work first"
            );
            assert_eq!(partial.report.roots_sampled, completed_roots);
            assert_eq!(partial.report.checksum, score_checksum(&partial.scores));
            assert_eq!(partial.report.faults.dead_gpus, 6);
        }
        other => panic!("expected AllGpusLost, got {other:?}"),
    }
}

/// An error-path result still exposes the partial run through the
/// generic accessor the CLI uses.
#[test]
fn cluster_error_partial_accessor_matches_variant() {
    let g = gen::path(40);
    let plan = FaultPlan {
        dead_gpus: vec![0, 1, 2],
        death_fraction: 0.25,
        ..FaultPlan::none()
    };
    let err = run_cluster_with_faults(&g, &ClusterConfig::keeneland(1), 16, &plan)
        .expect_err("all three GPUs of the single node are dead");
    let partial = err.partial().expect("AllGpusLost carries a partial run");
    assert!(partial.report.roots_sampled < 16);
    assert!(err.to_string().contains("lost"));
}

/// A plan that panics on every single attempt of every root is still
/// unrecoverable-but-contained: the process survives, the error is
/// structural.
#[test]
fn saturating_panics_never_escape_the_runner() {
    let g = gen::grid(8, 8);
    let plan = FaultPlan {
        panic_rate: 1.0,
        max_attempts: 3,
        ..FaultPlan::none()
    };
    let err = run_cluster_with_faults(&g, &ClusterConfig::keeneland(1), 8, &plan)
        .expect_err("every attempt panics, every GPU exhausts its retries");
    match err {
        ClusterError::RootFailed {
            root,
            gpus_tried,
            last_error,
            ..
        } => {
            assert_eq!(root, 0, "first root in schedule order fails first");
            assert_eq!(gpus_tried, 3, "all three GPUs were tried");
            assert!(last_error.contains("injected"), "{last_error}");
        }
        other => panic!("expected RootFailed, got {other}"),
    }
}
