//! Determinism contract of the parallel multi-root runner: scores
//! are bitwise identical at every thread count (explicit or via
//! `RAYON_NUM_THREADS`), and agree with sequential Brandes to 1e-9.

use bc_core::engine::FreeModel;
use bc_core::{brandes, cpu_parallel, parallel, BcOptions, Method, RootSelection, TraversalMode};
use bc_graph::{gen, Csr};

/// A graph with several components of very different sizes — the
/// worst case for the O(reached) workspace reset: a root in a tiny
/// component must not observe state left behind by a search that
/// covered the big one.
fn multi_component_graph() -> Csr {
    let mut edges = Vec::new();
    // Component A: a 10x10 grid occupying vertices 0..100.
    let g = gen::grid(10, 10);
    for v in g.vertices() {
        for &w in g.neighbors(v) {
            if v < w {
                edges.push((v, w));
            }
        }
    }
    // Component B: a triangle at 100..103.
    edges.extend([(100, 101), (101, 102), (100, 102)]);
    // Component C: a path at 103..108.
    edges.extend((103..107).map(|v| (v, v + 1)));
    // Vertices 108 and 109 stay isolated.
    Csr::from_undirected_edges(110, edges)
}

fn assert_close(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!((x - y).abs() < 1e-9, "{what}: vertex {i}: {x} vs {y}");
    }
}

#[test]
fn engine_runner_bitwise_across_thread_counts() {
    for g in [gen::watts_strogatz(500, 8, 0.1, 9), multi_component_graph()] {
        let roots: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let device = bc_gpusim::DeviceConfig::gtx_titan();
        let baseline = parallel::run_roots(&g, &device, &roots, 1, &mut FreeModel).unwrap();
        for threads in [2usize, 8] {
            let run = parallel::run_roots(&g, &device, &roots, threads, &mut FreeModel).unwrap();
            assert_eq!(run.scores, baseline.scores, "threads={threads}");
            assert_eq!(run.per_root_seconds, baseline.per_root_seconds);
            assert_eq!(run.max_depths, baseline.max_depths);
            assert_eq!(run.counters, baseline.counters);
        }
        // And the parallel result matches sequential Brandes to 1e-9.
        let mut scores = baseline.scores.clone();
        brandes::halve_if_symmetric(&g, &mut scores);
        assert_close(&scores, &brandes::betweenness(&g), "vs sequential");
    }
}

#[test]
fn cpu_runner_bitwise_across_thread_counts() {
    let g = multi_component_graph();
    let roots: Vec<u32> = (0..110).collect();
    let one = parallel::cpu_betweenness_from_roots(&g, &roots, 1).unwrap();
    for threads in [2usize, 8] {
        assert_eq!(
            parallel::cpu_betweenness_from_roots(&g, &roots, threads).unwrap(),
            one,
            "threads={threads}"
        );
    }
    assert_close(&one, &brandes::betweenness(&g), "vs sequential");
}

#[test]
fn rayon_num_threads_env_is_honored_and_bitwise() {
    // threads = 0 defers to RAYON_NUM_THREADS; whatever it resolves
    // to, the bits must not move. (Other tests in this binary never
    // pass threads = 0, so mutating the variable here is safe even
    // under the parallel test harness.)
    let g = multi_component_graph();
    let roots: Vec<u32> = (0..110).collect();
    let baseline = parallel::cpu_betweenness_from_roots(&g, &roots, 1).unwrap();
    for setting in ["1", "2", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", setting);
        assert_eq!(
            parallel::effective_threads(0),
            setting.parse::<usize>().unwrap()
        );
        assert_eq!(
            parallel::cpu_betweenness_from_roots(&g, &roots, 0).unwrap(),
            baseline,
            "RAYON_NUM_THREADS={setting}"
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
    // Explicit thread counts always win over the environment.
    std::env::set_var("RAYON_NUM_THREADS", "2");
    assert_eq!(parallel::effective_threads(5), 5);
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn method_run_bitwise_across_thread_counts_on_disconnected_graph() {
    let g = multi_component_graph();
    let run_at = |threads: usize| {
        Method::WorkEfficient
            .run(
                &g,
                &BcOptions {
                    roots: RootSelection::All,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap()
    };
    let one = run_at(1);
    for threads in [2usize, 8] {
        let run = run_at(threads);
        assert_eq!(run.scores, one.scores);
        assert_eq!(run.report.per_root_seconds, one.report.per_root_seconds);
        assert_eq!(run.report.full_seconds, one.report.full_seconds);
    }
    assert_close(&one.scores, &brandes::betweenness(&g), "vs sequential");
}

#[test]
fn traversal_modes_bitwise_identical_across_generators_and_threads() {
    // The direction-optimizing contract: push, pull, and auto produce
    // the same bits as the push baseline on every generator family,
    // every root set, and every thread count.
    let graphs: Vec<(&str, Csr)> = vec![
        ("watts_strogatz", gen::watts_strogatz(500, 8, 0.1, 9)),
        ("erdos_renyi", gen::erdos_renyi(400, 1600, 21)),
        ("star", gen::star(300)),
        ("grid", gen::grid(20, 18)),
        ("road_network", gen::road_network(360, 6)),
        ("triangulated_grid", gen::triangulated_grid(18, 20, 2)),
        ("multi_component", multi_component_graph()),
    ];
    for (name, g) in &graphs {
        for roots in [
            RootSelection::All,
            RootSelection::Strided(48),
            RootSelection::Explicit(vec![0, (g.num_vertices() - 1) as u32]),
        ] {
            let baseline = Method::WorkEfficient
                .run(
                    g,
                    &BcOptions {
                        roots: roots.clone(),
                        threads: 1,
                        ..Default::default()
                    },
                )
                .unwrap();
            for mode in [
                TraversalMode::Push,
                TraversalMode::Pull,
                TraversalMode::Auto,
            ] {
                for threads in [1usize, 2, 4] {
                    let run = Method::WorkEfficient
                        .run(
                            g,
                            &BcOptions {
                                roots: roots.clone(),
                                threads,
                                traversal: mode,
                                ..Default::default()
                            },
                        )
                        .unwrap();
                    assert_eq!(
                        run.scores, baseline.scores,
                        "{name} {roots:?} {mode:?} threads={threads}"
                    );
                    assert_eq!(
                        run.report.max_depths, baseline.report.max_depths,
                        "{name} {roots:?} {mode:?} threads={threads}"
                    );
                }
            }
        }
        // The scores are also correct, not merely consistent
        // (Method::run halves symmetric scores, like Brandes).
        let auto = Method::WorkEfficient
            .run(
                g,
                &BcOptions {
                    traversal: TraversalMode::Auto,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_close(&auto.scores, &brandes::betweenness(g), name);
    }
}

#[test]
fn cpu_parallel_module_matches_brandes_on_disconnected_graph() {
    let g = multi_component_graph();
    let roots: Vec<u32> = (0..110).collect();
    assert_close(
        &cpu_parallel::betweenness_from_roots(&g, &roots).unwrap(),
        &brandes::betweenness_from_roots(&g, roots.iter().copied()),
        "cpu_parallel vs brandes",
    );
}
