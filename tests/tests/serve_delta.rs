//! Property tests for the serving layer's dynamic-graph deltas.
//!
//! Three claims, swept over random graphs and random valid edits:
//!
//! 1. **Invalidation soundness** — the delta test
//!    (`edit_touches_root` over a root's checkpointed BFS level map)
//!    may only *over*-approximate: every root it declares untouched
//!    must have a bitwise-identical per-root contribution on the
//!    edited graph. Equivalently, the invalidated set is a superset
//!    of the roots whose scores actually change.
//! 2. **Delta-served equality** — a server that answers a post-edit
//!    query from carried cache entries plus recomputed touched roots
//!    must match a cold full recompute on the edited graph bitwise.
//! 3. **Relabel compatibility** — graphs rebuilt by
//!    `Csr::with_edge_inserted`/`with_edge_removed` remain ordinary
//!    CSRs to the rest of the stack: the degree-relabel equivalence
//!    battery must stay bitwise clean on edited graphs.

use bc_core::{run_roots_contributions, DirectionOptimizingModel, RootSelection, TraversalMode};
use bc_gpusim::DeviceConfig;
use bc_graph::{gen, Csr, VertexId};
use bc_serve::{
    cold_answer, edit_touches_root, random_edits, BcServer, EdgeEdit, Event, Query, Request,
    ServeConfig,
};
use proptest::prelude::*;

/// One random valid edit against `g`, derived from `seed` (delete of
/// a live edge or insert of a missing one).
fn draw_edit(g: &Csr, seed: u64) -> EdgeEdit {
    match random_edits(g, "default", 1, 1.0, seed).remove(0) {
        Event::Edit { edit, .. } => edit,
        Event::Query(_) => unreachable!("random_edits emits only edits"),
    }
}

fn apply_edit(g: &Csr, edit: EdgeEdit) -> Csr {
    let (u, v) = edit.endpoints();
    match edit {
        EdgeEdit::Insert(..) => g.with_edge_inserted(u, v),
        EdgeEdit::Delete(..) => g.with_edge_removed(u, v),
    }
}

/// Per-root contributions of every vertex of `g` under the serving
/// model (single-threaded static run — the contribution extraction
/// is schedule/thread-invariant, which `bc_core`'s own tests prove).
fn contributions(g: &Csr) -> Vec<bc_core::RootContribution> {
    let roots: Vec<VertexId> = (0..g.num_vertices() as u32).collect();
    let mut model = DirectionOptimizingModel::new(TraversalMode::Auto);
    run_roots_contributions(
        g,
        &DeviceConfig::gtx_titan(),
        &roots,
        1,
        bc_core::Schedule::Static,
        &mut model,
    )
    .expect("contribution run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Soundness: roots the delta test declares untouched are
    /// provably untouched — their contribution entries (and level
    /// maps) are bitwise identical on the edited graph. Roots whose
    /// contributions actually changed must all have been flagged.
    #[test]
    fn prop_untouched_roots_have_identical_contributions(
        n in 8usize..48,
        frac in 0.05f64..0.6,
        seed in 0u64..1000,
        edit_seed in 0u64..1000,
    ) {
        let m = ((n * (n - 1) / 2) as f64 * frac) as usize;
        let g = gen::erdos_renyi(n, m.max(1), seed);
        let edit = draw_edit(&g, edit_seed);
        let edited = apply_edit(&g, edit);

        let before = contributions(&g);
        let after = contributions(&edited);
        for (b, a) in before.iter().zip(&after) {
            prop_assert_eq!(b.root, a.root);
            let flagged = edit_touches_root(&b.levels, edit);
            let entries_equal = b.entries.len() == a.entries.len()
                && b.entries.iter().zip(&a.entries).all(|(x, y)| {
                    x.0 == y.0 && x.1.to_bits() == y.1.to_bits()
                });
            let levels_equal = b.levels == a.levels;
            if !flagged {
                // Untouched verdicts are promises: bitwise identical.
                prop_assert!(
                    entries_equal && levels_equal,
                    "root {} declared untouched by {:?} but its contribution changed",
                    b.root, edit
                );
            }
            // (Flagged roots may or may not change — the test is an
            // over-approximation by design.)
            if !entries_equal || !levels_equal {
                prop_assert!(
                    flagged,
                    "root {} changed under {:?} but was not invalidated",
                    b.root, edit
                );
            }
        }
    }

    /// Delta-served scores are bitwise identical to a cold full
    /// recompute on the edited graph, even though the server answers
    /// from carried epoch-(k+1) cache entries plus recomputed
    /// touched roots.
    #[test]
    fn prop_delta_served_equals_cold_recompute(
        n in 8usize..40,
        frac in 0.05f64..0.5,
        seed in 0u64..1000,
        edit_seed in 0u64..1000,
    ) {
        let m = ((n * (n - 1) / 2) as f64 * frac) as usize;
        let g = gen::erdos_renyi(n, m.max(1), seed);
        let edit = draw_edit(&g, edit_seed);
        let edited = apply_edit(&g, edit);

        let config = ServeConfig::default();
        let roots = RootSelection::All;
        let query = Query::SubgraphBc { vertices: (0..n as u32).collect() };
        let request = |id: u64, arrival: f64| Event::Query(Request {
            id,
            arrival,
            graph: "default".to_owned(),
            roots: roots.clone(),
            query: query.clone(),
        });
        let mut server = BcServer::single(g, config.clone());
        let out = server.run(vec![
            request(0, 0.0), // warm every root at epoch 0
            Event::Edit { at: 1.0, graph: "default".to_owned(), edit },
            request(1, 2.0), // answered from carried + recomputed roots
        ]).expect("serve");
        prop_assert_eq!(server.epoch("default"), Some(1));

        let cold = cold_answer(&edited, &config, &roots, &query).expect("cold");
        let served = &out.responses.iter().find(|r| r.id == 1).expect("response").answer;
        prop_assert_eq!(served, &cold, "delta-served answer diverges from cold recompute");
    }

    /// Edited CSRs stay relabel-compatible: the PR-8 degree-relabel
    /// equivalence battery must remain bitwise clean after a chain of
    /// inserts/deletes rebuilt the graph.
    #[test]
    fn prop_edited_graphs_pass_relabel_battery(
        n in 16usize..48,
        frac in 0.1f64..0.5,
        seed in 0u64..1000,
        edit_seed in 0u64..1000,
    ) {
        let m = ((n * (n - 1) / 2) as f64 * frac) as usize;
        let mut g = gen::erdos_renyi(n, m.max(2), seed);
        for i in 0..3 {
            g = apply_edit(&g, draw_edit(&g, edit_seed.wrapping_add(i)));
        }
        let opts = bc_core::BcOptions {
            roots: RootSelection::Strided(8.min(n)),
            ..Default::default()
        };
        let bad = bc_verify::check_relabel_equivalence(
            &g,
            &bc_core::Method::WorkEfficient,
            &opts,
        );
        prop_assert!(bad.is_empty(), "relabel violations on edited graph: {:?}", bad);
    }
}

/// Non-property pin: the full relabel battery (direction × threads ×
/// schedules) on one edited scale-free graph, matching the PR-8
/// battery's shape exactly.
#[test]
fn edited_scale_free_graph_passes_full_relabel_battery() {
    let mut g = gen::barabasi_albert(300, 4, 77);
    for i in 0..4 {
        g = apply_edit(&g, draw_edit(&g, 1000 + i));
    }
    let bad = bc_verify::relabel_battery(
        &g,
        &bc_core::Method::WorkEfficient,
        RootSelection::Strided(16),
    );
    assert!(bad.is_empty(), "relabel battery on edited graph: {bad:?}");
}
