//! Property tests on the graph substrate: every generator must
//! produce well-formed, deterministic CSRs in its advertised
//! structural class.

use bc_graph::{gen, stats, traversal, Csr, DatasetId};
use proptest::prelude::*;

/// Structural sanity common to every undirected generator output.
fn check_well_formed(g: &Csr) {
    // Offsets monotone and adjacency within range are enforced by
    // construction; check symmetry and no self-loops.
    assert!(g.is_symmetric());
    for (u, v) in g.arcs() {
        assert_ne!(u, v, "self loop survived");
        assert!(g.has_arc(v, u), "asymmetric arc {u}->{v}");
    }
    // Sorted, deduplicated adjacency.
    for v in g.vertices() {
        let nb = g.neighbors(v);
        assert!(
            nb.windows(2).all(|w| w[0] < w[1]),
            "unsorted/duplicated neighbors of {v}"
        );
    }
}

#[test]
fn all_dataset_analogues_are_well_formed() {
    for d in DatasetId::ALL {
        check_well_formed(&d.small_instance(3));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_erdos_renyi_well_formed(n in 2usize..200, frac in 0.0f64..1.0, seed in 0u64..100) {
        let m = ((n * (n - 1) / 2) as f64 * frac) as usize;
        let g = gen::erdos_renyi(n, m, seed);
        prop_assert_eq!(g.num_undirected_edges(), m as u64);
        check_well_formed(&g);
    }

    #[test]
    fn prop_watts_strogatz_class(n in 20usize..400, khalf in 1usize..4, seed in 0u64..100) {
        let k = khalf * 2;
        let g = gen::watts_strogatz(n, k, 0.1, seed);
        check_well_formed(&g);
        // Rewiring only collapses duplicates: m <= n*k/2.
        prop_assert!(g.num_undirected_edges() <= (n * k / 2) as u64);
        prop_assert!(g.num_undirected_edges() >= (n * k / 2) as u64 * 9 / 10);
    }

    #[test]
    fn prop_kronecker_deterministic(scale in 4u32..10, ef in 2usize..16, seed in 0u64..100) {
        let a = gen::kronecker(scale, ef, seed);
        let b = gen::kronecker(scale, ef, seed);
        prop_assert_eq!(&a, &b);
        check_well_formed(&a);
        prop_assert_eq!(a.num_vertices(), 1 << scale);
    }

    #[test]
    fn prop_rgg_radius_monotone(n in 100usize..800, seed in 0u64..50) {
        let small = gen::random_geometric(n, gen::rgg_radius_for_degree(n, 4.0), seed);
        let large = gen::random_geometric(n, gen::rgg_radius_for_degree(n, 10.0), seed);
        check_well_formed(&small);
        // Same points, larger radius: strictly more (or equal) edges.
        prop_assert!(large.num_undirected_edges() >= small.num_undirected_edges());
    }

    #[test]
    fn prop_ba_connected(n in 10usize..300, m_attach in 1usize..5, seed in 0u64..100) {
        let g = gen::barabasi_albert(n, m_attach, seed);
        check_well_formed(&g);
        prop_assert!(traversal::is_connected(&g), "BA growth must stay connected");
    }

    #[test]
    fn prop_road_degree_bound(n in 200usize..4000, seed in 0u64..50) {
        let g = gen::road_network(n, seed);
        check_well_formed(&g);
        prop_assert!(g.max_degree() <= 6, "roads cap at degree 6, got {}", g.max_degree());
        let avg = 2.0 * g.num_undirected_edges() as f64 / g.num_vertices() as f64;
        prop_assert!(avg < 3.0, "roads are nearly 1-D, avg degree {avg}");
    }

    #[test]
    fn prop_mesh_planar_degree(w in 3usize..40, h in 3usize..40, seed in 0u64..50) {
        let g = gen::triangulated_grid(w, h, seed);
        check_well_formed(&g);
        prop_assert!(g.max_degree() <= 8, "triangulation degree bound");
        prop_assert!(traversal::is_connected(&g));
    }

    #[test]
    fn prop_degree_histogram_consistent(n in 10usize..200, frac in 0.1f64..0.9, seed in 0u64..50) {
        let m = ((n * (n - 1) / 2) as f64 * frac) as usize;
        let g = gen::erdos_renyi(n, m, seed);
        let hist = stats::degree_histogram(&g);
        let total_deg: usize = hist.iter().enumerate().map(|(d, &c)| d * c).sum();
        prop_assert_eq!(total_deg as u64, 2 * g.num_undirected_edges());
        let gini = stats::degree_gini(&g);
        prop_assert!((0.0..=1.0).contains(&gini));
    }

    #[test]
    fn prop_components_partition_vertices(n in 2usize..150, frac in 0.0f64..0.3, seed in 0u64..50) {
        let m = ((n * (n - 1) / 2) as f64 * frac) as usize;
        let g = gen::erdos_renyi(n, m, seed);
        let comp = traversal::connected_components(&g);
        prop_assert_eq!(comp.len(), n);
        // Endpoints of every edge share a component.
        for (u, v) in g.arcs() {
            prop_assert_eq!(comp[u as usize], comp[v as usize]);
        }
        // Component count + non-isolated structure is consistent.
        let k = traversal::num_components(&g);
        prop_assert!(k >= 1 || n == 0);
        prop_assert!(k <= n);
    }

    #[test]
    fn prop_bfs_distance_triangle(n in 5usize..100, frac in 0.1f64..0.8, seed in 0u64..50) {
        let m = ((n * (n - 1) / 2) as f64 * frac).max(1.0) as usize;
        let g = gen::erdos_renyi(n, m, seed);
        let d0 = traversal::bfs_distances(&g, 0);
        // Adjacent vertices differ by at most 1 in BFS distance.
        for (u, v) in g.arcs() {
            let (du, dv) = (d0[u as usize], d0[v as usize]);
            if du != u32::MAX && dv != u32::MAX {
                prop_assert!(du.abs_diff(dv) <= 1, "BFS Lipschitz violated on {u}-{v}");
            } else {
                prop_assert_eq!(du, dv, "one endpoint reachable, the other not");
            }
        }
    }
}
