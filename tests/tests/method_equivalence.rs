//! Every simulated GPU method must compute exactly the scores of
//! sequential Brandes — on every structural class, directed graphs,
//! disconnected graphs, and randomized instances.

use bc_core::{brandes, cpu_parallel, BcOptions, Method, RootSelection};
use bc_graph::{gen, Csr, DatasetId};
use bc_integration::{assert_scores_eq, small_graphs};
use proptest::prelude::*;

fn run_all(method: &Method, g: &Csr) -> Vec<f64> {
    method
        .run(g, &BcOptions::default())
        .unwrap_or_else(|e| panic!("{} failed: {e}", method.name()))
        .scores
}

#[test]
fn all_methods_match_brandes_on_elementary_shapes() {
    for (name, g) in small_graphs() {
        let expect = brandes::betweenness(&g);
        for method in Method::all() {
            let got = run_all(&method, &g);
            assert_eq!(expect.len(), got.len(), "{name}/{}", method.name());
            assert_scores_eq(&expect, &got);
        }
    }
}

#[test]
fn all_methods_match_brandes_on_dataset_analogues() {
    // Tiny instances of all ten Table II classes.
    for d in DatasetId::ALL {
        let g = d.small_instance(13);
        let expect = cpu_parallel::betweenness(&g).unwrap();
        // GPU-FAN may OOM on larger instances; these are tiny.
        for method in [
            Method::WorkEfficient,
            Method::Hybrid(Default::default()),
            Method::Sampling(Default::default()),
            Method::EdgeParallel,
        ] {
            let got = run_all(&method, &g);
            assert_scores_eq(&expect, &got);
        }
    }
}

#[test]
fn methods_match_on_directed_graphs() {
    let g = Csr::from_directed_edges(
        12,
        [
            (0u32, 1u32),
            (1, 2),
            (2, 3),
            (3, 0),
            (1, 4),
            (4, 5),
            (5, 6),
            (6, 1),
            (4, 7),
            (7, 8),
            (8, 9),
            (9, 10),
            (10, 11),
            (11, 4),
        ],
    );
    let expect = brandes::betweenness(&g);
    for method in Method::all() {
        assert_scores_eq(&expect, &run_all(&method, &g));
    }
}

#[test]
fn partial_root_runs_sum_to_full() {
    let g = gen::watts_strogatz(500, 6, 0.2, 9);
    let expect = brandes::betweenness(&g);
    let first = Method::WorkEfficient
        .run(
            &g,
            &BcOptions {
                roots: RootSelection::Explicit((0..250).collect()),
                ..Default::default()
            },
        )
        .unwrap();
    let second = Method::WorkEfficient
        .run(
            &g,
            &BcOptions {
                roots: RootSelection::Explicit((250..500).collect()),
                ..Default::default()
            },
        )
        .unwrap();
    let sum: Vec<f64> = first
        .scores
        .iter()
        .zip(&second.scores)
        .map(|(a, b)| a + b)
        .collect();
    assert_scores_eq(&expect, &sum);
}

#[test]
fn reference_traversals_match_simulated_methods() {
    use bc_core::methods::reference;
    for seed in 0..3 {
        let g = gen::erdos_renyi(64, 160, seed);
        let expect = brandes::betweenness(&g);
        assert_scores_eq(&expect, &reference::vertex_parallel_bc(&g));
        assert_scores_eq(&expect, &reference::edge_parallel_bc(&g));
        assert_scores_eq(&expect, &run_all(&Method::VertexParallel, &g));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_methods_agree_on_random_graphs(
        n in 2usize..48,
        edge_frac in 0.0f64..1.0,
        seed in 0u64..1000,
        directed in proptest::bool::ANY,
    ) {
        let max_edges = n * (n - 1) / 2;
        let m = ((max_edges as f64) * edge_frac) as usize;
        let g = if directed {
            // Reinterpret the undirected sample as arcs both ways on
            // a random orientation subset: build from ER arcs.
            let und = gen::erdos_renyi(n, m, seed);
            Csr::from_directed_edges(
                n,
                und.arcs().filter(|&(u, v)| (u as u64 + v as u64 + seed) % 3 != 0),
            )
        } else {
            gen::erdos_renyi(n, m, seed)
        };
        let expect = brandes::betweenness(&g);
        for method in Method::all() {
            let got = run_all(&method, &g);
            assert_scores_eq(&expect, &got);
        }
    }

    #[test]
    fn prop_bc_bounds_hold(n in 3usize..40, edge_frac in 0.1f64..1.0, seed in 0u64..500) {
        let max_edges = n * (n - 1) / 2;
        let m = ((max_edges as f64) * edge_frac).max(1.0) as usize;
        let g = gen::erdos_renyi(n, m, seed);
        let bc = brandes::betweenness(&g);
        let max_possible = ((n - 1) * (n - 2)) as f64 / 2.0;
        for (v, &s) in bc.iter().enumerate() {
            prop_assert!(s >= -1e-9, "negative BC at {v}");
            prop_assert!(s <= max_possible + 1e-6, "BC at {v} exceeds (n-1)(n-2)/2");
        }
        // Degree-1 vertices lie on no shortest paths between others.
        for v in g.vertices() {
            if g.degree(v) <= 1 {
                prop_assert!(bc[v as usize].abs() < 1e-9);
            }
        }
    }
}
