//! `--metrics` must be a pure observer: attaching the metrics sinks
//! may never change a score or a priced second, at any layer. Every
//! entry point with a metered twin is run both ways and compared
//! bitwise — the solver (all six methods), the sharded multi-root
//! runner, and the cluster runner with and without injected faults.

use bc_cluster::{
    run_cluster_with_faults, run_cluster_with_faults_metered, ClusterConfig, FaultPlan,
};
use bc_core::methods::models::WorkEfficientModel;
use bc_core::{run_roots, run_roots_metered, BcOptions, Method, RootSelection};
use bc_graph::gen;

#[test]
fn every_method_is_bitwise_identical_with_metrics_attached() {
    // Scale-free so hybrid actually switches and sampling's decision
    // phase has something to measure; 2 threads so the sharded path
    // (not just the sequential fallback) is the one being metered.
    let g = gen::barabasi_albert(1200, 6, 3);
    let opts = BcOptions {
        roots: RootSelection::Strided(12),
        threads: 2,
        ..BcOptions::default()
    };
    for method in Method::all() {
        let plain = method.run(&g, &opts).expect("plain run");
        let (metered, metrics) = method.run_metered(&g, &opts).expect("metered run");
        let name = method.name();
        assert_eq!(plain.scores, metered.scores, "{name}: scores");
        assert_eq!(
            plain.report.full_seconds, metered.report.full_seconds,
            "{name}: clock"
        );
        assert_eq!(
            plain.report.device_seconds, metered.report.device_seconds,
            "{name}: device clock"
        );
        assert_eq!(
            plain.report.per_root_seconds, metered.report.per_root_seconds,
            "{name}: per-root timings"
        );
        assert_eq!(
            plain.report.max_depths, metered.report.max_depths,
            "{name}: depths"
        );
        assert_eq!(
            plain.report.counters, metered.report.counters,
            "{name}: kernel counters"
        );
        assert_eq!(plain.report.teps, metered.report.teps, "{name}: TEPS");
        // The only allowed difference: the metered report carries the
        // summary, the plain one stays None.
        assert!(plain.report.metrics.is_none(), "{name}: plain summary");
        assert_eq!(
            metered.report.metrics.as_ref(),
            Some(&metrics.summary),
            "{name}: embedded summary"
        );
    }
}

#[test]
fn sharded_runner_is_bitwise_identical_with_metrics_attached() {
    let g = gen::watts_strogatz(400, 8, 0.05, 11);
    let device = BcOptions::default().device;
    let roots: Vec<u32> = (0..40).map(|i| i * 10).collect();
    for threads in [1usize, 3, 8] {
        let plain = run_roots(
            &g,
            &device,
            &roots,
            threads,
            &mut WorkEfficientModel::default(),
        )
        .expect("plain run");
        let (metered, per_root) = run_roots_metered(
            &g,
            &device,
            &roots,
            threads,
            &mut WorkEfficientModel::default(),
        )
        .expect("metered run");
        assert_eq!(plain.scores, metered.scores, "threads {threads}: scores");
        assert_eq!(
            plain.per_root_seconds, metered.per_root_seconds,
            "threads {threads}: timings"
        );
        assert_eq!(plain.max_depths, metered.max_depths);
        assert_eq!(plain.counters, metered.counters);
        assert_eq!(per_root.len(), roots.len());
        for (m, &root) in per_root.iter().zip(&roots) {
            assert_eq!(m.root, root, "metrics arrive in global root order");
        }
    }
}

fn assert_cluster_bitwise(g: &bc_graph::Csr, plan: &FaultPlan) {
    let cfg = ClusterConfig::keeneland(2);
    let plain = run_cluster_with_faults(g, &cfg, 12, plan).expect("plain cluster run");
    let (metered, metrics) =
        run_cluster_with_faults_metered(g, &cfg, 12, plan).expect("metered cluster run");
    assert_eq!(plain.scores, metered.scores);
    assert_eq!(plain.report.total_seconds, metered.report.total_seconds);
    assert_eq!(plain.report.compute_seconds, metered.report.compute_seconds);
    assert_eq!(plain.report.reduce_seconds, metered.report.reduce_seconds);
    assert_eq!(plain.report.gpu_seconds, metered.report.gpu_seconds);
    assert_eq!(plain.report.teps, metered.report.teps);
    assert_eq!(plain.report.checksum, metered.report.checksum);
    assert_eq!(plain.report.faults, metered.report.faults);
    assert!(plain.report.metrics.is_none());
    assert_eq!(metered.report.metrics.as_ref(), Some(&metrics.summary));
    assert_eq!(metrics.per_gpu.len(), cfg.total_gpus());
}

#[test]
fn cluster_runs_are_bitwise_identical_with_metrics_attached() {
    let g = gen::watts_strogatz(300, 6, 0.1, 7);
    assert_cluster_bitwise(&g, &FaultPlan::none());
}

#[test]
fn fault_injected_cluster_runs_are_bitwise_identical_with_metrics_attached() {
    let g = gen::watts_strogatz(300, 6, 0.1, 7);
    let plan = FaultPlan {
        transient_rate: 0.2,
        oom_rate: 0.05,
        dead_gpus: vec![2],
        death_fraction: 0.4,
        straggler_gpus: vec![0],
        straggler_slowdown: 2.5,
        ..FaultPlan::none()
    };
    assert_cluster_bitwise(&g, &plan);
}
