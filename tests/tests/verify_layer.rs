//! Acceptance tests for the bc-verify layer: the race detector must
//! separate the paper's successor-based accumulation (atomic-free by
//! design) from the seeded predecessor-style bug (atomic-free by
//! mistake), and every simulated method's scores must survive the
//! invariant suite.

use bc_core::engine::{process_root, FreeModel, SearchWorkspace};
use bc_core::{BcOptions, Method};
use bc_gpusim::DeviceConfig;
use bc_graph::{gen, Csr, DatasetId};
use bc_verify::trace::predecessor_accumulation_trace;
use bc_verify::{check_csr, check_pair_sum, check_scores, check_trace, verify_root};

fn forward_state(g: &Csr, root: u32) -> SearchWorkspace {
    let mut ws = SearchWorkspace::new(g.num_vertices());
    let mut bc = vec![0.0; g.num_vertices()];
    process_root(
        g,
        root,
        &DeviceConfig::gtx_titan(),
        &mut ws,
        &mut FreeModel,
        &mut bc,
    );
    ws
}

/// The headline acceptance criterion: on the same graphs, the seeded
/// atomic-free predecessor accumulation is flagged racy while the
/// engine's successor-based sweep verifies race-free.
#[test]
fn seeded_bug_flagged_while_real_sweep_is_clean() {
    let device = DeviceConfig::gtx_titan();
    for g in [
        gen::grid(10, 10),
        gen::erdos_renyi(250, 900, 21),
        DatasetId::Smallworld.generate(9, 7),
    ] {
        let ws = forward_state(&g, 0);

        let broken = check_trace(&predecessor_accumulation_trace(&g, &ws, false));
        assert!(
            !broken.is_empty(),
            "the atomic-free predecessor accumulation must be flagged racy"
        );
        // Every race is on delta, in the backward phase.
        for r in &broken {
            assert_eq!(r.array.name(), "delta", "unexpected racy array: {r}");
        }

        let fixed = check_trace(&predecessor_accumulation_trace(&g, &ws, true));
        assert!(
            fixed.is_empty(),
            "atomicAdd accumulation wrongly flagged: {:?}",
            fixed
        );

        let real = verify_root(&g, 0, &device);
        assert!(
            real.is_clean(),
            "successor sweep must verify clean: races {:?}, violations {:?}",
            real.races,
            real.violations
        );
    }
}

/// Traced replay verifies clean from many roots on dataset analogues.
#[test]
fn dataset_analogues_verify_from_spread_roots() {
    let device = DeviceConfig::gtx_titan();
    for d in [
        DatasetId::LuxembourgOsm,
        DatasetId::CaidaRouterLevel,
        DatasetId::ComAmazon,
    ] {
        let g = d.generate(10, 42);
        assert!(check_csr(&g).is_empty());
        let n = g.num_vertices();
        for i in 0..3 {
            let root = ((i * n) / 3) as u32;
            let v = verify_root(&g, root, &device);
            assert!(
                v.is_clean(),
                "{} root {root}: races {:?}, violations {:?}",
                d.name(),
                v.races,
                v.violations
            );
        }
    }
}

/// Every simulated method produces scores that pass the sanity and
/// pair-sum checks (all methods share the exact functional engine).
#[test]
fn all_methods_scores_pass_invariants() {
    let g = gen::erdos_renyi(90, 260, 13);
    let opts = BcOptions::default();
    for method in [
        Method::VertexParallel,
        Method::EdgeParallel,
        Method::GpuFan,
        Method::WorkEfficient,
    ] {
        let run = method.run(&g, &opts).expect("method runs");
        assert!(check_scores(&run.scores).is_empty(), "{}", method.name());
        assert!(
            check_pair_sum(&g, &run.scores).is_empty(),
            "{}",
            method.name()
        );
    }
}
