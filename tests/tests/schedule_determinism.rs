//! Determinism contract of the dynamic root scheduler: every
//! schedule (static, guided, work-stealing) at every thread count and
//! under every traversal mode produces scores — and metered per-root
//! streams — bitwise identical to the static single-threaded run.
//! Only the *assignment* of shards to workers is dynamic; the
//! root-ordered merge pins the floating-point association.

use bc_core::{parallel, BcOptions, Method, RootSelection, Schedule, TraversalMode};
use bc_graph::{gen, Csr};

/// A skewed two-component graph: a long path (deep, expensive roots)
/// next to a small-world blob (shallow, cheap ones). Shard costs
/// differ wildly, so a scheduler that let assignment leak into merge
/// order would show it here.
fn skewed_graph() -> Csr {
    let mut edges: Vec<(u32, u32)> = (0..199u32).map(|i| (i, i + 1)).collect();
    let blob = gen::watts_strogatz(200, 6, 0.1, 11);
    for v in blob.vertices() {
        for &w in blob.neighbors(v) {
            if v < w {
                edges.push((v + 200, w + 200));
            }
        }
    }
    Csr::from_undirected_edges(400, edges)
}

#[test]
fn all_schedules_threads_and_traversals_are_bitwise_identical() {
    let g = skewed_graph();
    let opts = |schedule, threads, traversal| BcOptions {
        roots: RootSelection::Strided(128),
        threads,
        traversal,
        schedule,
        ..Default::default()
    };
    let push_baseline = Method::WorkEfficient
        .run(&g, &opts(Schedule::Static, 1, TraversalMode::Push))
        .unwrap();
    for traversal in [
        TraversalMode::Push,
        TraversalMode::Pull,
        TraversalMode::Auto,
    ] {
        // Scores are bitwise identical across traversal modes too;
        // simulated timings are only comparable within one mode (pull
        // levels price differently), so each mode carries its own
        // static single-threaded timing baseline.
        let baseline = Method::WorkEfficient
            .run(&g, &opts(Schedule::Static, 1, traversal))
            .unwrap();
        assert_eq!(baseline.scores, push_baseline.scores, "{traversal:?}");
        for schedule in Schedule::ALL {
            for threads in [1usize, 3, 8] {
                let run = Method::WorkEfficient
                    .run(&g, &opts(schedule, threads, traversal))
                    .unwrap();
                let tag = format!("{schedule} threads={threads} {traversal:?}");
                assert_eq!(run.scores, push_baseline.scores, "{tag}");
                assert_eq!(
                    run.report.per_root_seconds, baseline.report.per_root_seconds,
                    "{tag}"
                );
                assert_eq!(run.report.max_depths, baseline.report.max_depths, "{tag}");
            }
        }
    }
}

#[test]
fn metered_streams_and_summaries_match_static_under_every_schedule() {
    // The metrics stream is emitted in global root order regardless
    // of which worker ran which shard, so the full per-root stream —
    // and the aggregated summary embedded in the report — must be
    // identical to the static run's, not merely equivalent.
    let g = skewed_graph();
    let opts = |schedule, threads| BcOptions {
        roots: RootSelection::Strided(96),
        threads,
        traversal: TraversalMode::Auto,
        schedule,
        ..Default::default()
    };
    let (base_run, base_metrics) = Method::Sampling(Default::default())
        .run_metered(&g, &opts(Schedule::Static, 1))
        .unwrap();
    for schedule in Schedule::ALL {
        for threads in [1usize, 3, 8] {
            let (run, metrics) = Method::Sampling(Default::default())
                .run_metered(&g, &opts(schedule, threads))
                .unwrap();
            let tag = format!("{schedule} threads={threads}");
            assert_eq!(run.scores, base_run.scores, "{tag}");
            assert_eq!(metrics.per_root, base_metrics.per_root, "{tag}");
            assert_eq!(metrics.summary, base_metrics.summary, "{tag}");
            assert_eq!(run.report.metrics, base_run.report.metrics, "{tag}");
            // The worker records are the only part allowed to differ
            // (they describe the dynamic assignment), and they must
            // replay cleanly against shard geometry.
            let violations = bc_verify::check_worker_metrics(&metrics.per_worker);
            assert!(violations.is_empty(), "{tag}: {violations:?}");
            assert!(!metrics.per_worker.is_empty(), "{tag}");
            for phase in [0u64, 1] {
                let count = metrics
                    .per_worker
                    .iter()
                    .filter(|w| w.phase == phase)
                    .count();
                assert!(
                    count <= threads,
                    "{tag}: phase {phase} has {count} worker records for {threads} threads"
                );
            }
            assert!(
                metrics.per_worker.iter().all(|w| w.phase <= 1),
                "{tag}: sampling runs at most two phases"
            );
        }
    }
}

#[test]
fn cpu_runner_is_bitwise_identical_under_every_schedule() {
    let g = skewed_graph();
    let roots: Vec<u32> = (0..400).collect();
    let baseline = parallel::cpu_betweenness_from_roots(&g, &roots, 1).unwrap();
    for schedule in Schedule::ALL {
        for threads in [1usize, 3, 8] {
            let scores =
                parallel::cpu_betweenness_from_roots_scheduled(&g, &roots, threads, schedule)
                    .unwrap();
            assert_eq!(scores, baseline, "{schedule} threads={threads}");
        }
    }
}

#[test]
fn schedule_parse_round_trips_the_cli_names() {
    for schedule in Schedule::ALL {
        assert_eq!(Schedule::parse(schedule.name()), Some(schedule));
    }
    assert_eq!(Schedule::parse("nonsense"), None);
}
