//! Loader hardening battery: malformed, truncated, bit-flipped, and
//! oversized-header inputs across every parser must come back as
//! structured [`io::IoError`] values — never a panic, never an
//! allocation driven by an unbacked header claim.

use bc_graph::{gen, io};
use proptest::prelude::*;

/// Every parser, uniformly, for the fuzz loops below.
fn all_parsers(bytes: &[u8]) -> [Result<bc_graph::Csr, io::IoError>; 4] {
    [
        io::read_metis(bytes),
        io::read_matrix_market(bytes),
        io::read_edge_list(bytes),
        io::read_binary(bytes),
    ]
}

#[test]
fn empty_and_garbage_inputs_error_structurally() {
    for input in [
        &b""[..],
        b"\n\n\n",
        b"not a graph at all",
        b"%%MatrixMarket matrix coordinate real general",
        b"\xff\xfe\x00\x01binary junk\x00\x00\x00\x00\x00",
        b"1 2 3 4 5 6 7 8 9 10",
        b"-1 -2\n-3 -4\n",
    ] {
        for r in all_parsers(input) {
            // Each parser either rejects with a structured error or
            // (for permissive formats) yields a graph; never panics.
            if let Err(e) = r {
                assert!(!e.to_string().is_empty());
            }
        }
    }
}

#[test]
fn truncated_files_error_in_every_format() {
    let g = gen::watts_strogatz(60, 4, 0.1, 5);
    let mut writers: Vec<(&str, Vec<u8>)> = Vec::new();
    let mut buf = Vec::new();
    io::write_metis(&g, &mut buf).unwrap();
    writers.push(("metis", buf.clone()));
    buf.clear();
    io::write_binary(&g, &mut buf).unwrap();
    writers.push(("binary", buf.clone()));
    for (fmt, full) in &writers {
        // Cut at several interior points; the parse must not panic and
        // binary cuts must be detected (text formats detect all cuts
        // that break the adjacency-line count).
        for frac in [1, 3, 5, 7] {
            let cut = full.len() * frac / 8;
            let r = match *fmt {
                "metis" => io::read_metis(&full[..cut]).map(|_| ()),
                _ => io::read_binary(&full[..cut]).map(|_| ()),
            };
            if *fmt == "binary" {
                assert!(r.is_err(), "{fmt} cut at {cut} must be rejected");
            }
        }
    }
}

#[test]
fn oversized_headers_fail_without_allocating() {
    // Each header claims sizes far beyond physical memory; the loaders
    // must fail structurally (or parse the small real body) instead of
    // reserving header-proportional buffers.
    let huge = u64::MAX;
    let metis = format!("{huge} {huge}\n");
    assert!(io::read_metis(metis.as_bytes()).is_err());
    let mtx = format!("%%MatrixMarket matrix coordinate pattern general\n{huge} {huge} {huge}\n");
    assert!(io::read_matrix_market(mtx.as_bytes()).is_err());
    let mut bin = Vec::new();
    bin.extend_from_slice(b"HBCCSR02");
    bin.extend_from_slice(&huge.to_le_bytes());
    bin.extend_from_slice(&huge.to_le_bytes());
    bin.extend_from_slice(&[0u8; 8]);
    assert!(io::read_binary(bin.as_slice()).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_truncated_binary_never_panics(seed in 0u64..500, frac in 0.0f64..1.0) {
        let g = gen::erdos_renyi(40, 120, seed);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let cut = ((buf.len() as f64) * frac) as usize;
        // Anything short of the full file is rejected; the full file
        // round-trips.
        if cut < buf.len() {
            prop_assert!(io::read_binary(&buf[..cut]).is_err());
        } else {
            prop_assert!(io::read_binary(&buf[..cut]).is_ok());
        }
    }

    #[test]
    fn prop_bitflipped_binary_never_panics(seed in 0u64..500, pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let g = gen::erdos_renyi(40, 120, seed);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let pos = (((buf.len() - 1) as f64) * pos_frac) as usize;
        buf[pos] ^= 1 << bit;
        // A single bit flip either still parses (flips inside adjacency
        // values can stay in range) or errors structurally; it must
        // never panic or hang.
        let _ = io::read_binary(buf.as_slice());
    }

    #[test]
    fn prop_random_text_never_panics(
        lines in proptest::collection::vec(proptest::collection::vec(32u8..127, 0..30), 0..20)
    ) {
        let text = lines
            .iter()
            .map(|l| String::from_utf8_lossy(l).into_owned())
            .collect::<Vec<_>>()
            .join("\n");
        for r in all_parsers(text.as_bytes()) {
            if let Err(e) = r {
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}
