//! Paper-claims regression driven by the metrics stream: the switch
//! points the hybrid (Algorithm 4, α = 768 / β = 512) and sampling
//! (Algorithm 5, median depth vs γ·log₂ n) methods report must be
//! re-derivable from the recorded per-level frontier counters alone.
//!
//! Replaying the published predicates over `q_curr`/`q_next` (hybrid)
//! and the sampled roots' max depths (sampling) must reproduce the
//! solver's own decisions exactly — edge-parallel fires early on
//! scale-free inputs and never on road-like meshes.

use bc_core::{BcOptions, HybridParams, Method, RootSelection, SamplingParams, Strategy};
use bc_graph::{gen, Csr};
use bc_metrics::{MetricPhase, MetricTraversal, RootMetrics};

/// Replay Algorithm 4 over one root's recorded levels: returns the
/// (work-efficient, edge-parallel) iteration counts the hybrid model
/// must have charged, plus every `(depth, strategy)` switch decision
/// the α/β predicate fires.
fn replay_hybrid(params: &HybridParams, m: &RootMetrics) -> (u64, u64, Vec<(u32, Strategy)>) {
    let mut strategy = Strategy::WorkEfficient;
    let mut forward_choices: Vec<Strategy> = Vec::new();
    let mut switches = Vec::new();
    let (mut we, mut ep) = (0u64, 0u64);
    for level in &m.levels {
        match level.phase {
            MetricPhase::Forward => {
                let chosen = if level.traversal == MetricTraversal::Pull {
                    Strategy::BottomUp
                } else {
                    strategy
                };
                forward_choices.push(chosen);
                match chosen {
                    Strategy::WorkEfficient => we += 1,
                    Strategy::EdgeParallel => ep += 1,
                    Strategy::BottomUp => {}
                }
                // Algorithm 4 reconsiders after each level using the
                // very numbers the metrics layer records.
                let q_change = level.q_next.abs_diff(level.q_curr);
                if let Some(next) = params.switch_decision(q_change, level.q_next) {
                    switches.push((level.depth, next));
                    strategy = next;
                }
            }
            MetricPhase::Backward => {
                // The backward sweep replays the forward depth's
                // choice; a bottom-up forward level still runs the
                // work-efficient successor sweep backward.
                match forward_choices
                    .get(level.depth as usize)
                    .copied()
                    .unwrap_or(Strategy::WorkEfficient)
                {
                    Strategy::EdgeParallel => ep += 1,
                    _ => we += 1,
                }
            }
        }
    }
    (we, ep, switches)
}

fn run_hybrid(g: &Csr, k: usize) -> (bc_core::BcRun, Vec<RootMetrics>) {
    let opts = BcOptions {
        roots: RootSelection::Strided(k),
        ..BcOptions::default()
    };
    let (run, metrics) = Method::Hybrid(HybridParams::default())
        .run_metered(g, &opts)
        .expect("fits in device memory");
    (run, metrics.per_root)
}

#[test]
fn hybrid_switch_fires_early_on_scale_free_graphs() {
    let g = gen::barabasi_albert(4096, 8, 5);
    let params = HybridParams::default();
    let (run, per_root) = run_hybrid(&g, 8);

    let (mut we, mut ep) = (0u64, 0u64);
    let mut first_ep_depth = u32::MAX;
    for m in &per_root {
        let (w, e, switches) = replay_hybrid(&params, m);
        we += w;
        ep += e;
        for (depth, strategy) in switches {
            if strategy == Strategy::EdgeParallel {
                first_ep_depth = first_ep_depth.min(depth);
            }
            // β gate: edge-parallel is only ever chosen with more
            // than β vertices entering the next frontier.
            if strategy == Strategy::EdgeParallel {
                let level = m
                    .levels
                    .iter()
                    .find(|l| l.phase == MetricPhase::Forward && l.depth == depth)
                    .unwrap();
                assert!(level.q_next > params.beta, "β violated at depth {depth}");
            }
        }
    }
    // The replayed counts must equal what the model itself charged.
    assert_eq!(run.report.strategy_iterations, Some((we, ep)));
    assert!(ep > 0, "scale-free input must trigger edge-parallel");
    assert!(
        first_ep_depth <= 2,
        "the frontier explosion fires the switch within the first levels, \
         not at depth {first_ep_depth}"
    );
}

#[test]
fn hybrid_never_switches_on_road_like_meshes() {
    // A triangulated grid's frontier grows by a perimeter's worth of
    // vertices per level — far below α = 768.
    let g = gen::triangulated_grid(48, 48, 1);
    let params = HybridParams::default();
    let (run, per_root) = run_hybrid(&g, 8);

    let (mut we, mut ep) = (0u64, 0u64);
    for m in &per_root {
        let (w, e, switches) = replay_hybrid(&params, m);
        we += w;
        ep += e;
        assert!(
            switches.is_empty(),
            "root {}: no frontier delta may cross α on a mesh",
            m.root
        );
        for level in &m.levels {
            assert!(level.q_next.abs_diff(level.q_curr) <= params.alpha);
        }
    }
    assert_eq!(run.report.strategy_iterations, Some((we, ep)));
    assert_eq!(ep, 0, "road-like input must stay work-efficient");
}

/// Run the sampling method metered and re-derive Algorithm 5's
/// decision from the first `n_samps` recorded roots (the sample phase
/// runs first, so its metrics lead the stream).
fn replayed_sampling_decision(g: &Csr, params: SamplingParams, k: usize) -> (bool, bool) {
    let opts = BcOptions {
        roots: RootSelection::Strided(k),
        ..BcOptions::default()
    };
    let (run, metrics) = Method::Sampling(params)
        .run_metered(g, &opts)
        .expect("fits in device memory");
    let reported = run
        .report
        .sampling_chose_edge_parallel
        .expect("sampling reports its decision");
    let mut depths: Vec<u32> = metrics.per_root[..params.n_samps.min(k)]
        .iter()
        .map(RootMetrics::max_depth)
        .collect();
    let replayed = params.choose_edge_parallel(g.num_vertices(), &mut depths);
    (reported, replayed)
}

#[test]
fn sampling_median_depth_decision_replays_from_metrics() {
    let params = SamplingParams {
        n_samps: 4,
        gamma: 4.0,
        min_frontier: 512,
    };
    // Scale-free: the median sampled depth sits far below
    // 4·log₂(4096) = 48, so the remaining roots go edge-parallel.
    let sf = gen::barabasi_albert(4096, 8, 9);
    let (reported, replayed) = replayed_sampling_decision(&sf, params, 16);
    assert_eq!(reported, replayed, "scale-free decision must replay");
    assert!(reported, "shallow BFS depths must choose edge-parallel");

    // Road-like: eccentricities on a 90×90 triangulated grid exceed
    // 4·log₂(8100) ≈ 52, so sampling keeps the work-efficient kernel.
    let road = gen::triangulated_grid(90, 90, 2);
    let (reported, replayed) = replayed_sampling_decision(&road, params, 16);
    assert_eq!(reported, replayed, "road decision must replay");
    assert!(!reported, "deep BFS depths must keep work-efficient");
}
