//! Property tests for the weighted-BC extension and the shared
//! engine's internal invariants.

use bc_core::engine::{process_root, FreeModel, SearchWorkspace};
use bc_core::{brandes, weighted};
use bc_gpusim::DeviceConfig;
use bc_graph::{gen, traversal, WeightedCsr};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn prop_unit_weighted_matches_unweighted(
        n in 3usize..40,
        frac in 0.05f64..0.9,
        seed in 0u64..200,
    ) {
        let m = ((n * (n - 1) / 2) as f64 * frac).max(1.0) as usize;
        let g = gen::erdos_renyi(n, m, seed);
        let expect = brandes::betweenness(&g);
        let wg = WeightedCsr::with_unit_weights(g);
        let got = weighted::weighted_betweenness(&wg);
        for (e, a) in expect.iter().zip(&got) {
            prop_assert!((e - a).abs() < 1e-6, "{e} vs {a}");
        }
    }

    #[test]
    fn prop_weighted_scale_invariance(
        n in 4usize..30,
        frac in 0.2f64..0.9,
        seed in 0u64..100,
        factor in 0.25f32..8.0,
    ) {
        let m = ((n * (n - 1) / 2) as f64 * frac) as usize;
        let g = gen::erdos_renyi(n, m, seed);
        let mut wg = WeightedCsr::with_random_weights(g, 1.0, 4.0, seed);
        let before = weighted::weighted_betweenness(&wg);
        wg.scale_weights(factor);
        let after = weighted::weighted_betweenness(&wg);
        for (b, a) in before.iter().zip(&after) {
            prop_assert!((b - a).abs() < 1e-5, "scaling weights must not move BC: {b} vs {a}");
        }
    }

    #[test]
    fn prop_weighted_sigma_positive_on_reached(
        n in 3usize..40,
        frac in 0.1f64..0.9,
        seed in 0u64..100,
    ) {
        let m = ((n * (n - 1) / 2) as f64 * frac).max(1.0) as usize;
        let g = gen::erdos_renyi(n, m, seed);
        let wg = WeightedCsr::with_random_weights(g, 0.5, 3.0, seed ^ 7);
        let ss = weighted::weighted_single_source(&wg, 0);
        for v in 0..n {
            if ss.dist[v].is_finite() {
                prop_assert!(ss.sigma[v] >= 1.0, "reached vertex {v} needs paths");
            } else {
                prop_assert_eq!(ss.sigma[v], 0.0);
            }
        }
        // Weighted distances dominate hop counts times the minimum
        // weight.
        let hops = traversal::bfs_distances(wg.graph(), 0);
        let min_w = wg.weights().iter().cloned().fold(f32::INFINITY, f32::min) as f64;
        for (v, &h) in hops.iter().enumerate().take(n) {
            if ss.dist[v].is_finite() {
                prop_assert!(
                    ss.dist[v] + 1e-9 >= h as f64 * min_w,
                    "weighted distance below hop bound at {v}"
                );
            }
        }
    }

    #[test]
    fn prop_engine_level_structure(
        n in 2usize..60,
        frac in 0.0f64..0.8,
        seed in 0u64..200,
    ) {
        let m = ((n * (n - 1) / 2) as f64 * frac) as usize;
        let g = gen::erdos_renyi(n, m, seed);
        let device = DeviceConfig::gtx_titan();
        let mut ws = SearchWorkspace::new(n);
        let mut bc = vec![0.0; n];
        let out = process_root(&g, 0, &device, &mut ws, &mut FreeModel, &mut bc);
        // Frontier sizes partition the reached set.
        prop_assert_eq!(out.frontier_sizes.iter().sum::<usize>(), out.reached);
        // They match the reference BFS level sizes.
        let reference = traversal::frontier_sizes(&g, 0);
        prop_assert_eq!(&out.frontier_sizes, &reference);
        // Edge frontiers match too.
        prop_assert_eq!(&out.edge_frontier_sizes, &traversal::edge_frontier_sizes(&g, 0));
        // max_depth equals the eccentricity.
        prop_assert_eq!(out.max_depth, traversal::eccentricity(&g, 0));
        // dist/sigma agree with the Brandes reference.
        let ss = brandes::single_source(&g, 0);
        for v in 0..n {
            let ed = ws.dist()[v];
            let bd = ss.dist[v];
            prop_assert_eq!(ed, bd, "distance mismatch at {}", v);
            prop_assert!((ws.sigma()[v] - ss.sigma[v]).abs() < 1e-9);
        }
    }

    #[test]
    fn prop_edge_betweenness_nonnegative_and_bounded(
        n in 3usize..30,
        frac in 0.2f64..0.9,
        seed in 0u64..100,
    ) {
        let m = ((n * (n - 1) / 2) as f64 * frac).max(1.0) as usize;
        let g = gen::erdos_renyi(n, m, seed);
        let ebc = brandes::edge_betweenness(&g);
        let max_pairs = (n * (n - 1) / 2) as f64;
        for (e, &s) in ebc.iter().enumerate() {
            prop_assert!(s >= -1e-9, "negative edge BC at arc {e}");
            prop_assert!(s <= max_pairs + 1e-6, "edge BC exceeds pair count at arc {e}");
        }
        // Bridge edges carry at least the pair they connect.
        // (Total check: sum equals Σ pairwise distances — covered in
        // unit tests.)
    }
}

#[test]
fn weighted_bc_on_dataset_analogue() {
    // End-to-end: weighted BC on a road analogue runs and produces
    // finite, nonnegative scores with the hubs on junctions.
    let g = gen::road_network(1500, 3);
    let wg = WeightedCsr::with_random_weights(g, 0.5, 2.0, 9);
    let bc = weighted::weighted_betweenness(&wg);
    assert!(bc.iter().all(|s| s.is_finite() && *s >= -1e-9));
    assert!(bc.iter().any(|&s| s > 0.0));
}
