//! The paper's headline qualitative claims, asserted at test scale.
//! EXPERIMENTS.md records the full-scale quantitative versions.

use bc_core::{BcOptions, Method, RootSelection, SamplingParams};
use bc_gpusim::SimError;
use bc_graph::{DatasetId, GraphStats};

fn opts(k: usize) -> BcOptions {
    BcOptions {
        roots: RootSelection::Strided(k),
        ..Default::default()
    }
}

/// §IV-A / Table III: the work-efficient method dominates on every
/// high-diameter class.
#[test]
fn work_efficient_dominates_high_diameter_classes() {
    // Mid-size instances so frontier work dwarfs per-level overhead;
    // luxembourg needs a larger slice (its edge list is tiny, so at
    // small n both methods are sync-bound — a real effect Figure 5
    // also shows).
    for (d, reduction) in [
        (DatasetId::LuxembourgOsm, 2),
        (DatasetId::DelaunayN20, 4),
        (DatasetId::AfShell9, 4),
    ] {
        let g = d.generate(reduction, 1);
        let we = Method::WorkEfficient
            .run(&g, &opts(24))
            .unwrap()
            .report
            .full_seconds;
        let ep = Method::EdgeParallel
            .run(&g, &opts(24))
            .unwrap()
            .report
            .full_seconds;
        assert!(
            ep > 2.0 * we,
            "{}: EP {ep} should lose to WE {we} clearly",
            d.name()
        );
    }
}

/// §IV-B: the hybrid and sampling methods are never much worse than
/// the best single strategy on *any* class (the generality claim).
#[test]
fn adaptive_methods_are_performance_portable() {
    for d in DatasetId::ALL {
        let g = d.generate(5, 2);
        let k = 48;
        let we = Method::WorkEfficient
            .run(&g, &opts(k))
            .unwrap()
            .report
            .full_seconds;
        let ep = Method::EdgeParallel
            .run(&g, &opts(k))
            .unwrap()
            .report
            .full_seconds;
        let best = we.min(ep);
        let n = g.num_vertices();
        for m in [
            Method::Hybrid(Default::default()),
            Method::Sampling(SamplingParams {
                n_samps: (512 * k / n.max(1)).max(3),
                ..Default::default()
            }),
        ] {
            let t = m.run(&g, &opts(k)).unwrap().report.full_seconds;
            assert!(
                t < 1.8 * best,
                "{} on {}: {t} vs best single strategy {best}",
                m.name(),
                d.name()
            );
        }
    }
}

/// §IV-C: Algorithm 5's decision matches the structural class for
/// all ten datasets.
#[test]
fn sampling_decision_matches_class_on_all_datasets() {
    // Algorithm 5 compares a √n-scaling depth against a log n
    // threshold, so the classifier needs non-toy instances to be in
    // its operating regime (at full scale the margin is enormous);
    // reduction 4 = 1/16 of the published sizes.
    for d in DatasetId::ALL {
        let g = d.generate(4, 7);
        let n = g.num_vertices();
        let k = 48.min(n);
        let run = Method::Sampling(SamplingParams {
            n_samps: 24.min(k / 2).max(3),
            ..Default::default()
        })
        .run(&g, &opts(k))
        .unwrap();
        let chose_ep = run.report.sampling_chose_edge_parallel.unwrap();
        assert_eq!(
            chose_ep,
            !d.prefers_work_efficient(),
            "{}: Algorithm 5 chose edge-parallel = {chose_ep} (n = {n})",
            d.name()
        );
    }
}

/// §III-B / Figure 5: GPU-FAN's O(n²) predecessor matrix exhausts the
/// 6 GB Titan between 2^15 and 2^16 vertices; the paper's methods
/// survive every Table II scale.
#[test]
fn gpu_fan_memory_wall() {
    let small = DatasetId::DelaunayN20.generate(6, 3); // ~16k vertices
    assert!(Method::GpuFan.run(&small, &opts(4)).is_ok());
    let big = DatasetId::DelaunayN20.generate(4, 3); // ~65k vertices
    assert!(matches!(
        Method::GpuFan.run(&big, &opts(4)),
        Err(SimError::OutOfMemory { .. })
    ));
    assert!(Method::WorkEfficient.run(&big, &opts(4)).is_ok());
    assert!(Method::Sampling(Default::default())
        .run(&big, &opts(4))
        .is_ok());
}

/// Figure 3: peak vertex-frontier fraction separates the classes —
/// over half of all vertices for small-world/scale-free graphs, a
/// sliver for meshes and roads.
#[test]
fn frontier_peaks_separate_classes() {
    use bc_core::frontier::trace_root;
    let device = bc_gpusim::DeviceConfig::gtx_titan();
    for d in [DatasetId::Smallworld, DatasetId::KronG500Logn20] {
        let g = d.small_instance(5);
        let t = trace_root(&g, 0, &device);
        // Kron roots can be isolated; probe a few roots for the max.
        let peak = (0..4u32)
            .map(|r| {
                trace_root(&g, r * (g.num_vertices() as u32 / 4), &device)
                    .peak_fraction(g.num_vertices())
            })
            .fold(t.peak_fraction(g.num_vertices()), f64::max);
        assert!(
            peak > 0.35,
            "{}: explosive frontier expected, peak {peak}",
            d.name()
        );
    }
    for d in [
        DatasetId::LuxembourgOsm,
        DatasetId::RggN2_20,
        DatasetId::AfShell9,
    ] {
        let g = d.generate(4, 5);
        let t = trace_root(&g, 0, &device);
        let peak = t.peak_fraction(g.num_vertices());
        assert!(
            peak < 0.12,
            "{}: gradual frontier expected, peak {peak}",
            d.name()
        );
    }
}

/// §IV-B: choosing edge-parallel where work-efficient is right is
/// far more costly than the reverse mistake.
#[test]
fn wrong_choice_asymmetry() {
    let road = DatasetId::LuxembourgOsm.generate(3, 1);
    let sw = DatasetId::Smallworld.generate(3, 1);
    let k = 24;
    let ep_penalty = Method::EdgeParallel
        .run(&road, &opts(k))
        .unwrap()
        .report
        .full_seconds
        / Method::WorkEfficient
            .run(&road, &opts(k))
            .unwrap()
            .report
            .full_seconds;
    let we_penalty = Method::WorkEfficient
        .run(&sw, &opts(k))
        .unwrap()
        .report
        .full_seconds
        / Method::EdgeParallel
            .run(&sw, &opts(k))
            .unwrap()
            .report
            .full_seconds;
    assert!(
        ep_penalty > 2.0 * we_penalty,
        "EP-on-road penalty ({ep_penalty:.1}x) must dwarf WE-on-smallworld ({we_penalty:.1}x)"
    );
}

/// Table II sanity: the analogue statistics land in the published
/// structural classes at full-ish scale for the small graphs.
#[test]
fn smallworld_analogue_matches_table2_row() {
    // smallworld is cheap enough to generate at the paper's full
    // scale (n = 100,000, m ≈ 500,000, diameter 9).
    let g = DatasetId::Smallworld.generate(0, 4);
    let s = GraphStats::compute_with_limit(&g, 0);
    assert_eq!(s.vertices, 100_000);
    assert!(
        (s.edges as f64 - 499_998.0).abs() / 499_998.0 < 0.02,
        "m = {}",
        s.edges
    );
    assert!(s.diameter <= 12, "diameter {} (paper: 9)", s.diameter);
    assert!(
        s.max_degree <= 25,
        "max degree {} (paper: 17)",
        s.max_degree
    );
}
