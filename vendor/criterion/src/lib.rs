//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's bench targets use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId::new`], [`Bencher::iter`], and
//! the `criterion_group!`/`criterion_main!` macros — with a plain
//! `Instant`-based timer: one warm-up call, then `sample_size` timed
//! samples, reporting min/mean per benchmark on stdout. No statistics
//! engine, no HTML reports.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Opaque-to-the-optimizer value barrier.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Parse CLI configuration (no-op in this stub).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time a routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.0, &mut f);
        self
    }

    /// Time a routine parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.0, &mut |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            seconds: Vec::new(),
        };
        // Warm-up sample, discarded.
        f(&mut bencher);
        bencher.seconds.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let min = bencher
            .seconds
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let mean = bencher.seconds.iter().sum::<f64>() / bencher.seconds.len().max(1) as f64;
        println!(
            "bench {}/{}: min {:.3e} s, mean {:.3e} s ({} samples)",
            self.name, id, min, mean, self.sample_size
        );
    }

    /// Finish the group (report separator).
    pub fn finish(self) {
        println!("bench group {} done", self.name);
    }
}

/// Times closures handed to it by a benchmark routine.
pub struct Bencher {
    seconds: Vec<f64>,
}

impl Bencher {
    /// Run and time one sample of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.seconds.push(start.elapsed().as_secs_f64());
        drop(black_box(out));
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Function name plus parameter, rendered `func/param`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..1000u64 * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_runs() {
        benches();
    }
}
