//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache,
//! so the workspace vendors the small API subset it actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer/float ranges, `gen::<f64>()`,
//! `gen::<bool>()`, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! high quality, and fully deterministic. Streams are *not*
//! bit-compatible with upstream `rand`; every consumer in this
//! workspace asserts structural properties of generated graphs, not
//! exact samples, so only determinism per seed matters.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a raw word stream ("Standard"
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

/// A range samplable on a generator (`Range` / `RangeInclusive`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics when empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw uniformly from a range. Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast xoshiro256++ generator (the role upstream's
    /// `SmallRng` plays).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            // All-zero state would be a fixed point; seed 0 avoids it
            // via SplitMix64, but guard anyway.
            let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f32..8.0);
            assert!((0.25..8.0).contains(&f));
            let d = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }
}
