//! Offline stand-in for `serde_json`: renders the `serde` stub's
//! [`Value`] tree as JSON text. Only serialization is provided —
//! nothing in this workspace deserializes JSON.

#![warn(missing_docs)]

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The stub's renderer is total, so this is
/// never constructed; it exists so call sites handling
/// `serde_json::Error` compile unchanged.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Render `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Render `value` as pretty-printed JSON (two-space indent, matching
/// upstream `serde_json::to_string_pretty`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // `{}` prints 3.0 as "3"; keep it a JSON float like
                // upstream does.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            render_seq(items.len(), indent, depth, out, '[', ']', |k, out| {
                render(&items[k], indent, depth + 1, out)
            });
        }
        Value::Object(entries) => {
            render_seq(entries.len(), indent, depth, out, '{', '}', |k, out| {
                let (key, val) = &entries[k];
                escape_into(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out)
            });
        }
    }
}

fn render_seq(
    len: usize,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut item: impl FnMut(usize, &mut String),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for k in 0..len {
        if k > 0 {
            out.push(',');
        }
        newline_indent(indent, depth + 1, out);
        item(k, out);
    }
    newline_indent(indent, depth, out);
    out.push(close);
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Object(vec![
            ("n".to_string(), Value::UInt(3)),
            (
                "scores".to_string(),
                Value::Array(vec![Value::Float(1.0), Value::Float(0.5)]),
            ),
            ("label".to_string(), Value::Str("a\"b".to_string())),
        ]);
        assert_eq!(
            to_string(&Wrapper(v.clone())).unwrap(),
            r#"{"n":3,"scores":[1.0,0.5],"label":"a\"b"}"#
        );
        let pretty = to_string_pretty(&Wrapper(v)).unwrap();
        assert!(pretty.contains("\n  \"n\": 3"));
        assert!(pretty.contains("\n    1.0"));
    }

    struct Wrapper(Value);
    impl Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn empty_containers_stay_inline() {
        assert_eq!(
            to_string_pretty(&Vec::<u32>::new()).unwrap(),
            "[]".to_string()
        );
    }
}
