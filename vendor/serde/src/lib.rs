//! Offline stand-in for `serde`.
//!
//! The workspace only ever *serializes* (reports and experiment
//! records to JSON); nothing is deserialized. This stub therefore
//! models serialization as conversion to a [`Value`] tree (rendered
//! by the sibling `serde_json` stub) and keeps [`Deserialize`] as a
//! derive-able marker so existing `#[derive(Serialize, Deserialize)]`
//! lines compile unchanged.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point (non-finite renders as `null`).
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Ordered key/value map (declaration order preserved).
    Object(Vec<(String, Value)>),
}

/// Conversion into a [`Value`] tree (this stub's serialization
/// contract; upstream's visitor API is collapsed into one method).
pub trait Serialize {
    /// Build the value tree describing `self`.
    fn to_value(&self) -> Value;
}

/// Marker trait kept so `#[derive(Deserialize)]` compiles; no
/// deserialization is performed anywhere in this workspace.
pub trait Deserialize<'de>: Sized {}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(5u32.to_value(), Value::UInt(5));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            (1u64, 2u64).to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }
}
