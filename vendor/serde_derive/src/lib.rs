//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for
//! the shapes this workspace actually declares — non-generic structs
//! with named fields, and enums with unit or tuple variants — by
//! hand-parsing the item's `TokenStream` (no `syn`/`quote`, which are
//! unavailable offline) and emitting the impl as a parsed string.
//!
//! `Serialize` lowers to `serde::Value` (see the sibling `serde`
//! stub): structs become objects keyed by field name; unit variants
//! become their name as a string; tuple variants become a one-entry
//! object `{name: value}` (or `{name: [values...]}` for arity > 1).
//! `Deserialize` emits only the marker impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the item the derive is attached to.
struct Item {
    is_enum: bool,
    name: String,
    body: Vec<TokenTree>,
}

/// Walk the item tokens: skip outer attributes and visibility, find
/// the `struct`/`enum` keyword, the type name, and the brace-delimited
/// body. Generic parameters never appear on derived types in this
/// workspace; the parser rejects them loudly rather than mis-emitting.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut is_enum = false;
    let mut name = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // `#` plus the bracketed attribute group
                continue;
            }
            TokenTree::Ident(id) => {
                let id = id.to_string();
                match id.as_str() {
                    "pub" => {
                        i += 1;
                        // `pub(crate)` and friends carry a paren group.
                        if matches!(
                            tokens.get(i),
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                        ) {
                            i += 1;
                        }
                        continue;
                    }
                    "struct" | "enum" => {
                        is_enum = id == "enum";
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            _ => i += 1,
        }
    }
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        name = Some(id.to_string());
        i += 1;
    }
    let name = name.expect("derive target must have a name");
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("this serde stub does not support generic derive targets ({name})");
    }
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Some(g.stream().into_iter().collect())
            }
            _ => None,
        })
        .unwrap_or_default(); // unit struct: no body group
    Item {
        is_enum,
        name,
        body,
    }
}

/// Split a field/variant list at top-level commas. Only angle brackets
/// need depth tracking: parens/brackets/braces arrive as nested
/// `Group`s, so their commas never surface here.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// First identifier in a chunk after skipping attributes and
/// visibility — the field or variant name.
fn leading_ident(chunk: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    chunk.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => return Some(id.to_string()),
            _ => i += 1,
        }
    }
    None
}

/// For an enum variant chunk, the payload group right after the name
/// (`(...)` tuple variant), if any.
fn variant_payload(chunk: &[TokenTree]) -> Option<proc_macro::Group> {
    let mut seen_name = false;
    for t in chunk {
        match t {
            TokenTree::Punct(p) if p.as_char() == '#' => continue,
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket && !seen_name => continue,
            TokenTree::Ident(_) if !seen_name => seen_name = true,
            TokenTree::Group(g) if seen_name => return Some(g.clone()),
            _ => {}
        }
    }
    None
}

fn serialize_struct(name: &str, body: &[TokenTree]) -> String {
    let mut entries = String::new();
    for chunk in split_top_level(body) {
        let field = leading_ident(&chunk).expect("struct field must have a name");
        entries.push_str(&format!(
            "(\"{field}\".to_string(), ::serde::Serialize::to_value(&self.{field})),"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, body: &[TokenTree]) -> String {
    let mut arms = String::new();
    for chunk in split_top_level(body) {
        let variant = leading_ident(&chunk).expect("enum variant must have a name");
        match variant_payload(&chunk) {
            None => {
                arms.push_str(&format!(
                    "{name}::{variant} => ::serde::Value::Str(\"{variant}\".to_string()),"
                ));
            }
            Some(g) if g.delimiter() == Delimiter::Parenthesis => {
                let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
                let arity = split_top_level(&tokens).len();
                let binds: Vec<String> = (0..arity).map(|k| format!("f{k}")).collect();
                let bind_list = binds.join(", ");
                let payload = if arity == 1 {
                    "::serde::Serialize::to_value(f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{variant}({bind_list}) => ::serde::Value::Object(vec![(\"{variant}\".to_string(), {payload})]),"
                ));
            }
            Some(g) => {
                let fields: Vec<String> =
                    split_top_level(&g.stream().into_iter().collect::<Vec<_>>())
                        .iter()
                        .filter_map(|c| leading_ident(c))
                        .collect();
                let bind_list = fields.join(", ");
                let items: Vec<String> = fields
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{variant} {{ {bind_list} }} => ::serde::Value::Object(vec![(\"{variant}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                    items.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

/// Derive `serde::Serialize` (lowering to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = if item.is_enum {
        serialize_enum(&item.name, &item.body)
    } else {
        serialize_struct(&item.name, &item.body)
    };
    code.parse().expect("generated Serialize impl must parse")
}

/// Derive the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = item.name;
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl must parse")
}
