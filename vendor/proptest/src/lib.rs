//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's tests use: the `proptest!`
//! macro with an optional `#![proptest_config(...)]` header, argument
//! strategies that are integer/float ranges, `proptest::bool::ANY`,
//! `proptest::collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike upstream there is no shrinking: cases are drawn from a
//! generator seeded deterministically from the test's name, so a
//! failure reproduces exactly on re-run; the panic message reports the
//! failing case index.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of test values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                use rand::Rng;
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut test_runner::TestRng) -> $t {
                use rand::Rng;
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::Strategy;

    /// Uniform boolean strategy type.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform over `true` / `false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn sample(&self, rng: &mut super::test_runner::TestRng) -> Self::Value {
            use rand::Rng;
            rng.0.gen::<Self::Value>()
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::Strategy;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: each case draws a length from `size`, then that
    /// many elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut super::test_runner::TestRng) -> Self::Value {
            use rand::Rng;
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.0.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner plumbing used by the macros.
pub mod test_runner {
    use rand::SeedableRng;
    use std::fmt;

    /// Per-run configuration (`cases` only in this stub).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of random cases to execute per test.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic generator driving a test's cases.
    pub struct TestRng(pub rand::rngs::SmallRng);

    /// Seed a generator from the test name (FNV-1a), so every run of a
    /// given test replays the identical case sequence.
    pub fn new_rng(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(rand::rngs::SmallRng::seed_from_u64(h))
    }

    /// A failed `prop_assert!` within one case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure carrying `msg`.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declare property tests: an optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header, then
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expand one test item, then
/// recurse on the remainder.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::new_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body; failure aborts the
/// current case with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "prop_assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        #![proptest_config(crate::test_runner::Config::with_cases(16))]

        #[test]
        fn ranges_and_vecs(
            n in 1usize..50,
            x in 0.0f64..1.0,
            flag in crate::bool::ANY,
            v in crate::collection::vec(0u32..10, 0..20),
        ) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(v.len() < 20);
            for e in &v {
                prop_assert!(*e < 10, "element {e} out of range");
            }
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        use crate::Strategy;
        let mut a = crate::test_runner::new_rng("some_test");
        let mut b = crate::test_runner::new_rng("some_test");
        for _ in 0..50 {
            assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
        }
    }
}
