//! The batched query server.
//!
//! [`BcServer`] holds resident graphs and answers
//! [`Query::TopK`]/[`Query::PerVertex`]/[`Query::SubgraphBc`] requests
//! against them on a **simulated clock**: requests carry arrival
//! times, concurrent arrivals coalesce into one batch per graph
//! (closed by a configurable batching window or by the next edge
//! edit, whichever comes first), and a batch's device cost is priced
//! by the same [`coarse_grained_makespan`] model the offline solver
//! uses, so latency percentiles are deterministic and replayable.
//!
//! **Determinism contract.** A served response is *bitwise identical*
//! to a cold single-query recompute through
//! [`bc_core::run_roots_scheduled`] followed by the standard epilogue
//! — regardless of how its roots were split between cache hits and
//! misses, how requests were batched, or which schedule/thread-count
//! executed the misses. This holds because the cache unit is the
//! per-root δ contribution extracted by
//! [`bc_core::run_roots_contributions`], and
//! [`bc_core::merge_contribution_entries`] folds contributions with
//! exactly the shard partition and ordering of the multi-root runner.
//! [`cold_answer`] is the reference implementation the verification
//! battery compares against.
//!
//! **Dynamic graphs.** [`Event::Edit`] rebuilds the resident CSR
//! through [`Csr::with_edge_inserted`]/[`Csr::with_edge_removed`],
//! bumps the graph's epoch (retiring stale cache keys), and replays
//! the delta-invalidation test ([`crate::delta::edit_touches_root`])
//! over the cached roots' checkpointed BFS level maps: provably
//! untouched roots are carried forward to the new epoch, touched
//! roots are dropped, and when the touched fraction exceeds
//! [`ServeConfig::invalidate_threshold`] the server degrades to full
//! invalidation (dropping everything) rather than re-keying a
//! mostly-dead population.

use std::collections::{BTreeMap, BTreeSet};

use bc_core::{
    brandes, graph_digest, merge_contribution_entries, options_fingerprint,
    run_roots_contributions, run_roots_scheduled, DirectionOptimizingModel, RootSelection,
    Schedule, TraversalMode,
};
use bc_gpusim::{coarse_grained_makespan, DeviceConfig, SimError};
use bc_graph::{Csr, VertexId};
use bc_metrics::{RequestLatency, ServeRow};

use crate::cache::{CacheKey, CacheStats, ContributionCache};
use crate::delta::{edit_touches_root, EdgeEdit};

/// Seeded serving-layer bugs for the verification battery's mutation
/// tests (production configurations leave this unset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeMutation {
    /// Apply edge edits to the resident graph **without** bumping the
    /// epoch or invalidating the cache — the classic stale-cache bug.
    /// Served scores silently diverge from the edited graph; the
    /// stage-8 battery must flag this.
    SkipEpochBump,
}

/// Serving configuration. Everything that can change a served score
/// is folded into [`ServeConfig::fingerprint`], so two configs whose
/// fingerprints match may share cache entries.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Simulated device executing the batches.
    pub device: DeviceConfig,
    /// Host threads driving the multi-root runner (scores are bitwise
    /// identical at any setting).
    pub threads: usize,
    /// Root-to-worker schedule (bitwise irrelevant, timing relevant).
    pub schedule: Schedule,
    /// Forward-sweep traversal mode for the direction-optimizing
    /// serve model. Scores are bitwise identical in every mode, but
    /// the mode is fingerprinted because it changes priced timings.
    pub traversal: TraversalMode,
    /// Normalize served scores by `(n-1)(n-2)` (halved when
    /// undirected).
    pub normalize: bool,
    /// Batching window in simulated seconds: a batch flushes
    /// `window` after its first request arrives (or earlier, at the
    /// next edge edit). `0.0` disables batching — every request runs
    /// alone.
    pub window: f64,
    /// Contribution-cache budget in bytes. `0` disables caching.
    pub cache_budget_bytes: u64,
    /// Fraction of cached roots that must survive an edit's delta
    /// test for selective carry; past it the server degrades to full
    /// invalidation.
    pub invalidate_threshold: f64,
    /// Seeded serving bug (verification only).
    pub mutation: Option<ServeMutation>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let device = DeviceConfig::gtx_titan();
        // A quarter of simulated device memory: the graph itself and
        // the per-root working set own the rest.
        let cache_budget_bytes = device.global_mem_bytes / 4;
        ServeConfig {
            device,
            threads: 1,
            schedule: Schedule::Static,
            traversal: TraversalMode::Auto,
            normalize: false,
            window: 1e-3,
            cache_budget_bytes,
            invalidate_threshold: 0.5,
            mutation: None,
        }
    }
}

impl ServeConfig {
    /// FNV-1a fingerprint of every option that names a served score
    /// for `graph` (registered as `name`): the graph's structural
    /// digest, the device, the traversal mode, and normalization.
    /// Threads, schedule, window, and cache budget are deliberately
    /// excluded — they are bitwise-neutral, so runs under different
    /// settings share cache entries (and the stage-8 battery checks
    /// they agree).
    pub fn fingerprint(&self, name: &str, graph: &Csr) -> u64 {
        let desc = format!(
            "serve;graph={name};digest={:016x};device={};traversal={};normalize={}",
            graph_digest(graph),
            self.device.name,
            self.traversal.name(),
            self.normalize,
        );
        options_fingerprint(&desc)
    }
}

/// What a request asks of its root set's score vector.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// The `k` highest-scoring vertices, sorted by score descending
    /// with vertex id ascending as the tiebreak.
    TopK {
        /// How many vertices to return.
        k: usize,
    },
    /// One vertex's score.
    PerVertex {
        /// The vertex.
        vertex: VertexId,
    },
    /// Scores of an explicit vertex subset, in the listed order.
    SubgraphBc {
        /// The vertices to report.
        vertices: Vec<VertexId>,
    },
}

/// A query's answer.
#[derive(Clone, Debug, PartialEq)]
pub enum Answer {
    /// `(vertex, score)` pairs, score-descending.
    TopK(Vec<(VertexId, f64)>),
    /// The requested vertex's score.
    PerVertex(f64),
    /// `(vertex, score)` pairs in the requested order.
    SubgraphBc(Vec<(VertexId, f64)>),
}

/// One client request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Caller-assigned id, echoed in the response.
    pub id: u64,
    /// Simulated arrival time (seconds).
    pub arrival: f64,
    /// Resident graph to query.
    pub graph: String,
    /// Source vertices whose contributions the answer aggregates.
    pub roots: RootSelection,
    /// What to report.
    pub query: Query,
}

/// One timeline event fed to [`BcServer::run`].
#[derive(Clone, Debug)]
pub enum Event {
    /// A client request.
    Query(Request),
    /// An edge edit against a resident graph.
    Edit {
        /// Simulated time the edit lands.
        at: f64,
        /// Resident graph to edit.
        graph: String,
        /// The edit.
        edit: EdgeEdit,
    },
}

impl Event {
    /// The event's simulated timestamp.
    pub fn at(&self) -> f64 {
        match self {
            Event::Query(req) => req.arrival,
            Event::Edit { at, .. } => *at,
        }
    }
}

/// A completed request.
#[derive(Clone, Debug)]
pub struct Response {
    /// The request's id.
    pub id: u64,
    /// Simulated arrival time.
    pub arrival: f64,
    /// Simulated completion time (batch start + priced batch cost).
    pub completed: f64,
    /// `completed - arrival`.
    pub latency: f64,
    /// Graph epoch the answer was computed against.
    pub epoch: u64,
    /// The answer.
    pub answer: Answer,
}

/// Everything one [`BcServer::run`] call produced.
#[derive(Clone, Debug, Default)]
pub struct ServeOutcome {
    /// Responses in completion order (ties in request-id order).
    pub responses: Vec<Response>,
    /// Serve rows emitted during this call (batches and edits).
    pub rows: Vec<ServeRow>,
}

struct GraphState {
    csr: Csr,
    epoch: u64,
    fingerprint: u64,
}

/// The long-running batched query server. State (resident graphs,
/// epochs, the contribution cache, the device-busy horizon) persists
/// across [`BcServer::run`] calls, so closed-loop drivers can feed
/// the timeline incrementally.
pub struct BcServer {
    config: ServeConfig,
    graphs: BTreeMap<String, GraphState>,
    cache: ContributionCache,
    pending: Vec<Request>,
    /// Simulated time the open batch window closes. Meaningful only
    /// while `pending` is non-empty.
    deadline: f64,
    /// Simulated time the device finishes its current batch.
    device_free_at: f64,
    seq: u64,
    rows: Vec<ServeRow>,
}

impl BcServer {
    /// An empty server.
    pub fn new(config: ServeConfig) -> Self {
        let cache = ContributionCache::new(config.cache_budget_bytes);
        BcServer {
            config,
            graphs: BTreeMap::new(),
            cache,
            pending: Vec::new(),
            deadline: 0.0,
            device_free_at: 0.0,
            seq: 0,
            rows: Vec::new(),
        }
    }

    /// A server with one resident graph registered as `"default"`.
    pub fn single(csr: Csr, config: ServeConfig) -> Self {
        let mut server = BcServer::new(config);
        server.add_graph("default", csr);
        server
    }

    /// Register (or replace) a resident graph. Replacement starts a
    /// fresh epoch history; stale cache entries die by key mismatch.
    pub fn add_graph(&mut self, name: &str, csr: Csr) {
        let fingerprint = self.config.fingerprint(name, &csr);
        self.graphs.insert(
            name.to_owned(),
            GraphState {
                csr,
                epoch: 0,
                fingerprint,
            },
        );
    }

    /// A resident graph's current CSR.
    pub fn graph(&self, name: &str) -> Option<&Csr> {
        self.graphs.get(name).map(|s| &s.csr)
    }

    /// A resident graph's current epoch.
    pub fn epoch(&self, name: &str) -> Option<u64> {
        self.graphs.get(name).map(|s| s.epoch)
    }

    /// Lifetime cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats
    }

    /// Live cache entry count.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Every serve row emitted over the server's lifetime.
    pub fn rows(&self) -> &[ServeRow] {
        &self.rows
    }

    /// Simulated time the device goes idle.
    pub fn device_free_at(&self) -> f64 {
        self.device_free_at
    }

    /// Feed a slice of the timeline through the server. Events are
    /// processed in timestamp order (stable on ties); every pending
    /// request is flushed before returning, so the outcome is
    /// complete for the events given. Calling `run` again continues
    /// the same simulated clock — later calls must not carry events
    /// earlier than an already-applied edit.
    pub fn run(&mut self, mut events: Vec<Event>) -> Result<ServeOutcome, SimError> {
        events.sort_by(|a, b| a.at().total_cmp(&b.at()));
        let row_start = self.rows.len();
        let mut responses = Vec::new();
        for event in events {
            if !self.pending.is_empty() && event.at() > self.deadline {
                let deadline = self.deadline;
                self.flush(deadline, &mut responses)?;
            }
            match event {
                Event::Query(req) => {
                    if self.pending.is_empty() {
                        self.deadline = req.arrival + self.config.window;
                    }
                    self.pending.push(req);
                }
                Event::Edit { at, graph, edit } => {
                    if !self.pending.is_empty() {
                        // The edit pre-empts the window: everything
                        // already queued must be answered against the
                        // pre-edit graph.
                        let flush_at = self.deadline.min(at);
                        self.flush(flush_at, &mut responses)?;
                    }
                    self.apply_edit(at, &graph, edit);
                }
            }
        }
        if !self.pending.is_empty() {
            let deadline = self.deadline;
            self.flush(deadline, &mut responses)?;
        }
        Ok(ServeOutcome {
            responses,
            rows: self.rows[row_start..].to_vec(),
        })
    }

    /// Close the open window at simulated time `at`: group pending
    /// requests by graph and execute one batch per graph, serialized
    /// on the single simulated device.
    fn flush(&mut self, at: f64, responses: &mut Vec<Response>) -> Result<(), SimError> {
        let queue_depth = self.pending.len() as u64;
        let batch = std::mem::take(&mut self.pending);
        let mut groups: BTreeMap<String, Vec<Request>> = BTreeMap::new();
        for req in batch {
            groups.entry(req.graph.clone()).or_default().push(req);
        }
        let mut start = at.max(self.device_free_at);
        for (name, reqs) in groups {
            start = self.execute_batch(&name, &reqs, start, queue_depth, responses)?;
        }
        self.device_free_at = start;
        Ok(())
    }

    /// Execute one graph's batch starting at simulated time `start`;
    /// returns the batch's completion time.
    fn execute_batch(
        &mut self,
        name: &str,
        reqs: &[Request],
        start: f64,
        queue_depth: u64,
        responses: &mut Vec<Response>,
    ) -> Result<f64, SimError> {
        let state = self
            .graphs
            .get(name)
            .unwrap_or_else(|| panic!("request against unregistered graph {name:?}"));
        let (epoch, fingerprint) = (state.epoch, state.fingerprint);
        let n = state.csr.num_vertices();

        // Coalesce: the union of every request's resolved roots runs
        // (or is served) once.
        let resolved: Vec<Vec<VertexId>> = reqs.iter().map(|r| r.roots.resolve(n)).collect();
        let needed: BTreeSet<VertexId> = resolved.iter().flatten().copied().collect();

        let mut local: BTreeMap<VertexId, bc_core::RootContribution> = BTreeMap::new();
        let mut pinned: Vec<CacheKey> = Vec::new();
        let mut missing: Vec<VertexId> = Vec::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        for &root in &needed {
            let key = CacheKey {
                epoch,
                root,
                fingerprint,
            };
            if let Some(hit) = self.cache.get(&key) {
                local.insert(root, hit.clone());
                self.cache.pin(&key);
                pinned.push(key);
                hits += 1;
            } else {
                missing.push(root);
                misses += 1;
            }
        }

        let evictions_before = self.cache.stats.evictions;
        let mut priced_seconds = 0.0;
        if !missing.is_empty() {
            let mut model = DirectionOptimizingModel::new(self.config.traversal);
            let contribs = run_roots_contributions(
                &state.csr,
                &self.config.device,
                &missing,
                self.config.threads,
                self.config.schedule,
                &mut model,
            )?;
            let seconds: Vec<f64> = contribs.iter().map(|c| c.seconds).collect();
            priced_seconds = coarse_grained_makespan(&seconds, self.config.device.num_sms);
            for contrib in contribs {
                let key = CacheKey {
                    epoch,
                    root: contrib.root,
                    fingerprint,
                };
                if self.cache.insert(key, contrib.clone(), true) {
                    pinned.push(key);
                }
                local.insert(contrib.root, contrib);
            }
        }
        let cache_evictions = self.cache.stats.evictions - evictions_before;

        let completed = start + priced_seconds;
        let state = &self.graphs[name];
        let mut latencies = Vec::with_capacity(reqs.len());
        for (req, roots) in reqs.iter().zip(&resolved) {
            let parts: Vec<&[(VertexId, f64)]> =
                roots.iter().map(|r| local[r].entries.as_slice()).collect();
            let mut scores = merge_contribution_entries(n, &parts);
            brandes::halve_if_symmetric(&state.csr, &mut scores);
            if self.config.normalize {
                brandes::normalize(&mut scores, state.csr.is_symmetric());
            }
            responses.push(Response {
                id: req.id,
                arrival: req.arrival,
                completed,
                latency: completed - req.arrival,
                epoch,
                answer: answer_query(&req.query, &scores),
            });
            latencies.push(RequestLatency {
                id: req.id,
                arrival: req.arrival,
                completed,
                latency: completed - req.arrival,
            });
        }
        latencies.sort_by_key(|l| l.id);
        for key in pinned {
            self.cache.unpin(&key);
        }

        self.push_row(ServeRow {
            event: "batch".to_owned(),
            seq: 0, // assigned by push_row
            graph: name.to_owned(),
            epoch,
            at: start,
            batch_size: reqs.len() as u64,
            queue_depth,
            requested_roots: needed.len() as u64,
            cache_hits: hits,
            cache_misses: misses,
            cache_evictions,
            invalidated_roots: 0,
            carried_roots: 0,
            full_invalidation: false,
            priced_seconds,
            latencies,
        });
        Ok(completed)
    }

    /// Apply one edge edit: rebuild the CSR, bump the epoch, and
    /// carry/drop cached roots by the delta-invalidation test. Under
    /// [`ServeMutation::SkipEpochBump`] the graph still changes but
    /// the epoch and cache are (incorrectly) left alone.
    fn apply_edit(&mut self, at: f64, name: &str, edit: EdgeEdit) {
        let state = self
            .graphs
            .get_mut(name)
            .unwrap_or_else(|| panic!("edit against unregistered graph {name:?}"));
        let (u, v) = edit.endpoints();
        state.csr = match edit {
            EdgeEdit::Insert(..) => state.csr.with_edge_inserted(u, v),
            EdgeEdit::Delete(..) => state.csr.with_edge_removed(u, v),
        };
        if self.config.mutation == Some(ServeMutation::SkipEpochBump) {
            let epoch = state.epoch;
            self.push_row(edit_row(name, epoch, at, 0, 0, false));
            return;
        }
        let old_epoch = state.epoch;
        state.epoch += 1;
        let (carried, dropped, full) = self.cache.carry_epoch(
            state.fingerprint,
            old_epoch,
            state.epoch,
            self.config.invalidate_threshold,
            |contrib| !edit_touches_root(&contrib.levels, edit),
        );
        let epoch = state.epoch;
        self.push_row(edit_row(name, epoch, at, dropped, carried, full));
    }

    fn push_row(&mut self, mut row: ServeRow) {
        row.seq = self.seq;
        self.seq += 1;
        self.rows.push(row);
    }
}

fn edit_row(
    graph: &str,
    epoch: u64,
    at: f64,
    invalidated: u64,
    carried: u64,
    full: bool,
) -> ServeRow {
    ServeRow {
        event: "edit".to_owned(),
        graph: graph.to_owned(),
        epoch,
        at,
        invalidated_roots: invalidated,
        carried_roots: carried,
        full_invalidation: full,
        ..Default::default()
    }
}

/// Reduce a full score vector to a query's answer.
fn answer_query(query: &Query, scores: &[f64]) -> Answer {
    match query {
        Query::TopK { k } => {
            let mut order: Vec<VertexId> = (0..scores.len() as u32).collect();
            order.sort_by(|&a, &b| {
                scores[b as usize]
                    .total_cmp(&scores[a as usize])
                    .then(a.cmp(&b))
            });
            Answer::TopK(
                order
                    .into_iter()
                    .take(*k)
                    .map(|v| (v, scores[v as usize]))
                    .collect(),
            )
        }
        Query::PerVertex { vertex } => Answer::PerVertex(scores[*vertex as usize]),
        Query::SubgraphBc { vertices } => {
            Answer::SubgraphBc(vertices.iter().map(|&v| (v, scores[v as usize])).collect())
        }
    }
}

/// The cold, cache-free reference for one query: run its resolved
/// roots through the plain multi-root path and apply the same
/// epilogue. Every served response must equal this bitwise; the
/// stage-8 battery and the serve proptests enforce it.
pub fn cold_answer(
    g: &Csr,
    config: &ServeConfig,
    roots: &RootSelection,
    query: &Query,
) -> Result<Answer, SimError> {
    let resolved = roots.resolve(g.num_vertices());
    let mut model = DirectionOptimizingModel::new(config.traversal);
    let run = run_roots_scheduled(
        g,
        &config.device,
        &resolved,
        config.threads,
        config.schedule,
        &mut model,
    )?;
    let mut scores = run.scores;
    brandes::halve_if_symmetric(g, &mut scores);
    if config.normalize {
        brandes::normalize(&mut scores, g.is_symmetric());
    }
    Ok(answer_query(query, &scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::gen;

    fn test_graph(seed: u64) -> Csr {
        gen::erdos_renyi(80, 320, seed)
    }

    fn config() -> ServeConfig {
        ServeConfig {
            window: 0.5,
            ..ServeConfig::default()
        }
    }

    fn topk_request(id: u64, arrival: f64, k: usize, roots: RootSelection) -> Event {
        Event::Query(Request {
            id,
            arrival,
            graph: "default".to_owned(),
            roots,
            query: Query::TopK { k },
        })
    }

    #[test]
    fn batched_cached_responses_match_cold_recompute_bitwise() {
        let g = test_graph(11);
        let cfg = config();
        let mut server = BcServer::single(g.clone(), cfg.clone());
        // Two overlapping requests in one window, then a repeat that
        // must be served entirely from cache.
        let events = vec![
            topk_request(0, 0.0, 5, RootSelection::FirstK(12)),
            topk_request(1, 0.1, 8, RootSelection::Strided(9)),
            topk_request(2, 10.0, 5, RootSelection::FirstK(12)),
        ];
        let out = server.run(events).expect("serve");
        assert_eq!(out.responses.len(), 3);
        for resp in &out.responses {
            let req_roots = match resp.id {
                0 | 2 => RootSelection::FirstK(12),
                _ => RootSelection::Strided(9),
            };
            let k = if resp.id == 1 { 8 } else { 5 };
            let cold = cold_answer(&g, &cfg, &req_roots, &Query::TopK { k }).expect("cold");
            assert_eq!(resp.answer, cold, "request {} diverged from cold", resp.id);
        }
        // First window: one batch of 2; repeat: a batch of 1 fully
        // from cache.
        let batches: Vec<&ServeRow> = out.rows.iter().filter(|r| r.event == "batch").collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].batch_size, 2);
        assert_eq!(batches[0].cache_hits, 0);
        assert_eq!(batches[1].cache_misses, 0, "repeat must be all hits");
        assert!(batches[1].cache_hits > 0);
        assert_eq!(batches[1].priced_seconds, 0.0);
        assert!(server.cache_stats().hits > 0);
    }

    #[test]
    fn window_batches_and_prices_latency() {
        let g = test_graph(13);
        let mut server = BcServer::single(
            g,
            ServeConfig {
                window: 1.0,
                ..ServeConfig::default()
            },
        );
        let events = vec![
            topk_request(0, 0.0, 3, RootSelection::FirstK(4)),
            topk_request(1, 0.9, 3, RootSelection::FirstK(4)),
            topk_request(2, 5.0, 3, RootSelection::FirstK(4)),
        ];
        let out = server.run(events).expect("serve");
        let batches: Vec<&ServeRow> = out.rows.iter().filter(|r| r.event == "batch").collect();
        assert_eq!(
            batches.len(),
            2,
            "0.9 joins the first window, 5.0 opens a new one"
        );
        assert_eq!(batches[0].at, 1.0, "first batch flushes at window close");
        assert!(batches[0].priced_seconds > 0.0);
        for resp in &out.responses {
            assert!(resp.latency > 0.0);
            assert_eq!(resp.latency, resp.completed - resp.arrival);
        }
        // Request 0 waits out the full window; request 1 only 0.1s.
        let lat = |id: u64| {
            out.responses
                .iter()
                .find(|r| r.id == id)
                .map(|r| r.latency)
                .unwrap()
        };
        assert!(lat(0) > lat(1));
    }

    #[test]
    fn edits_bump_epoch_and_delta_served_scores_match_cold() {
        let g = test_graph(17);
        let cfg = config();
        let mut server = BcServer::single(g.clone(), cfg.clone());
        let roots = RootSelection::All;
        let query = Query::SubgraphBc {
            vertices: (0..g.num_vertices() as u32).collect(),
        };
        // Warm the cache on epoch 0.
        let warm = Event::Query(Request {
            id: 0,
            arrival: 0.0,
            graph: "default".to_owned(),
            roots: roots.clone(),
            query: query.clone(),
        });
        // Edit, then re-query: the answer must match a cold recompute
        // on the *edited* graph even though untouched roots were
        // carried across the epoch.
        let (u, v) = (0u32, 40u32);
        let edited = if g.neighbors(u).contains(&v) {
            g.with_edge_removed(u, v)
        } else {
            g.with_edge_inserted(u, v)
        };
        let edit = if g.neighbors(u).contains(&v) {
            EdgeEdit::Delete(u, v)
        } else {
            EdgeEdit::Insert(u, v)
        };
        let requery = Event::Query(Request {
            id: 1,
            arrival: 20.0,
            graph: "default".to_owned(),
            roots: roots.clone(),
            query: query.clone(),
        });
        let events = vec![
            warm,
            Event::Edit {
                at: 10.0,
                graph: "default".to_owned(),
                edit,
            },
            requery,
        ];
        let out = server.run(events).expect("serve");
        assert_eq!(server.epoch("default"), Some(1));
        let edit_rows: Vec<&ServeRow> = out.rows.iter().filter(|r| r.event == "edit").collect();
        assert_eq!(edit_rows.len(), 1);
        assert_eq!(
            edit_rows[0].carried_roots + edit_rows[0].invalidated_roots,
            g.num_vertices() as u64,
            "every cached root is classified"
        );
        let cold = cold_answer(&edited, &cfg, &roots, &query).expect("cold");
        let served = &out.responses.iter().find(|r| r.id == 1).unwrap().answer;
        assert_eq!(
            *served, cold,
            "delta-served scores diverge from cold recompute"
        );
        // The carried roots show up as epoch-1 cache hits.
        let batch2 = out
            .rows
            .iter()
            .filter(|r| r.event == "batch")
            .nth(1)
            .unwrap();
        assert_eq!(batch2.cache_hits, edit_rows[0].carried_roots);
    }

    #[test]
    fn skip_epoch_bump_mutation_serves_stale_scores() {
        let g = test_graph(19);
        let mut cfg = config();
        cfg.mutation = Some(ServeMutation::SkipEpochBump);
        let mut server = BcServer::single(g.clone(), cfg.clone());
        let roots = RootSelection::All;
        let query = Query::SubgraphBc {
            vertices: (0..g.num_vertices() as u32).collect(),
        };
        // Pick an edit that provably changes scores: delete a DAG
        // edge on a shortest path (an edge with |du - dv| == 1 from
        // root 0 whose removal changes the answer).
        let (u, v) = first_edge(&g);
        let events = vec![
            Event::Query(Request {
                id: 0,
                arrival: 0.0,
                graph: "default".to_owned(),
                roots: roots.clone(),
                query: query.clone(),
            }),
            Event::Edit {
                at: 10.0,
                graph: "default".to_owned(),
                edit: EdgeEdit::Delete(u, v),
            },
            Event::Query(Request {
                id: 1,
                arrival: 20.0,
                graph: "default".to_owned(),
                roots: roots.clone(),
                query: query.clone(),
            }),
        ];
        let out = server.run(events).expect("serve");
        assert_eq!(
            server.epoch("default"),
            Some(0),
            "mutation skipped the bump"
        );
        let edited = g.with_edge_removed(u, v);
        let cold = cold_answer(&edited, &cfg, &roots, &query).expect("cold");
        let served = &out.responses.iter().find(|r| r.id == 1).unwrap().answer;
        assert_ne!(
            *served, cold,
            "stale-cache mutant served fresh scores; the seeded bug is inert"
        );
    }

    /// First adjacency arc of the graph (guaranteed present for the
    /// test seeds, which generate non-empty graphs).
    fn first_edge(g: &Csr) -> (VertexId, VertexId) {
        for u in 0..g.num_vertices() as u32 {
            if let Some(&v) = g.neighbors(u).first() {
                return (u, v);
            }
        }
        panic!("empty test graph");
    }

    #[test]
    fn per_vertex_and_subgraph_answers() {
        let g = test_graph(23);
        let cfg = config();
        let mut server = BcServer::single(g.clone(), cfg.clone());
        let out = server
            .run(vec![
                Event::Query(Request {
                    id: 0,
                    arrival: 0.0,
                    graph: "default".to_owned(),
                    roots: RootSelection::All,
                    query: Query::PerVertex { vertex: 7 },
                }),
                Event::Query(Request {
                    id: 1,
                    arrival: 0.0,
                    graph: "default".to_owned(),
                    roots: RootSelection::All,
                    query: Query::SubgraphBc {
                        vertices: vec![3, 1, 7],
                    },
                }),
            ])
            .expect("serve");
        let cold_pv = cold_answer(
            &g,
            &cfg,
            &RootSelection::All,
            &Query::PerVertex { vertex: 7 },
        )
        .expect("cold");
        assert_eq!(out.responses[0].answer, cold_pv);
        match (&out.responses[1].answer, &cold_pv) {
            (Answer::SubgraphBc(pairs), Answer::PerVertex(score)) => {
                assert_eq!(pairs.len(), 3);
                assert_eq!(pairs[0].0, 3, "requested order preserved");
                assert_eq!(pairs[2], (7, *score));
            }
            _ => panic!("answer shape mismatch"),
        }
    }
}
