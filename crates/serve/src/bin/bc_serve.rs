//! `bc-serve` — run the batched BC query server against a seeded
//! workload and report latency percentiles and cache behavior.
//!
//! ```text
//! cargo run -p bc-serve --release --bin bc-serve -- \
//!     [--dataset NAME] [--reduction R] [--requests N] [--rate RPS] \
//!     [--clients C] [--think-rate T] [--edits E] [--window W] \
//!     [--cache-mb MB] [--threads T] [--schedule S] [--traversal D] \
//!     [--normalize] [--seed S] [--metrics FILE]
//! ```
//!
//! With `--clients 0` (the default) the workload is an open-loop
//! Poisson stream of `--requests` arrivals at `--rate` per simulated
//! second; with `--clients C` it is a closed loop of `C` clients
//! issuing `--requests` total with exponential think times.
//! `--edits E` interleaves `E` random edge edits (alternating
//! insert/delete) across the workload span. `--metrics FILE` writes
//! the serve rows as `{"kind":"serve"}` JSONL.

use bc_core::{Schedule, TraversalMode};
use bc_graph::datasets::DatasetId;
use bc_metrics::serve_to_jsonl;
use bc_serve::{percentile, random_edits, BcServer, ClosedLoop, Event, QueryMix, ServeConfig};

/// Minimal `--flag value` / bare `--switch` parser (mirrors the
/// bench harness's idiom; this crate keeps its dependency set to the
/// serving stack).
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn from_env() -> Flags {
        let mut pairs = Vec::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(k) = it.next() {
            let Some(name) = k.strip_prefix("--") else {
                eprintln!("unexpected argument: {k}");
                std::process::exit(2);
            };
            let bare = it.peek().is_none_or(|next| next.starts_with("--"));
            let v = if bare {
                "true".to_string()
            } else {
                it.next().expect("peeked value exists")
            };
            pairs.push((name.to_string(), v));
        }
        Flags { pairs }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    fn get_str(&self, name: &str, default: &str) -> String {
        self.get(name, default.to_string())
    }

    fn flag(&self, name: &str) -> bool {
        self.get(name, false)
    }
}

fn dataset_by_name(name: &str) -> Option<DatasetId> {
    DatasetId::ALL.into_iter().find(|d| d.name() == name)
}

fn main() {
    let flags = Flags::from_env();
    let seed: u64 = flags.get("seed", 42u64);
    let dataset = flags.get_str("dataset", "caidaRouterLevel");
    let reduction: u32 = flags.get("reduction", 7);
    let requests: usize = flags.get("requests", 64);
    let rate: f64 = flags.get("rate", 50.0);
    let clients: usize = flags.get("clients", 0);
    let think_rate: f64 = flags.get("think-rate", 10.0);
    let edits: usize = flags.get("edits", 0);

    let Some(id) = dataset_by_name(&dataset) else {
        eprintln!("unknown dataset {dataset:?}; one of:");
        for d in DatasetId::ALL {
            eprintln!("  {}", d.name());
        }
        std::process::exit(2);
    };
    let g = id.generate(reduction, seed);

    let mut config = ServeConfig {
        threads: flags.get("threads", 1),
        window: flags.get("window", 1e-3),
        normalize: flags.flag("normalize"),
        ..ServeConfig::default()
    };
    config.schedule = match Schedule::parse(&flags.get_str("schedule", "static")) {
        Some(s) => s,
        None => {
            eprintln!("unknown schedule (static | guided | work-stealing)");
            std::process::exit(2);
        }
    };
    config.traversal = match flags.get_str("traversal", "auto").as_str() {
        "push" => TraversalMode::Push,
        "pull" => TraversalMode::Pull,
        "auto" => TraversalMode::Auto,
        other => {
            eprintln!("unknown traversal {other:?} (push | pull | auto)");
            std::process::exit(2);
        }
    };
    let cache_mb: u64 = flags.get("cache-mb", config.cache_budget_bytes >> 20);
    config.cache_budget_bytes = cache_mb << 20;

    println!(
        "serving {} (reduction {reduction}): n={} m={} | window={}s cache={}MiB \
         threads={} schedule={} traversal={}",
        id.name(),
        g.num_vertices(),
        g.num_undirected_edges(),
        config.window,
        cache_mb,
        config.threads,
        config.schedule.name(),
        config.traversal.name(),
    );

    let mix = QueryMix::for_graph(g.num_vertices());
    let mut server = BcServer::single(g.clone(), config);
    let mut latencies: Vec<f64> = Vec::new();

    if clients == 0 {
        // Open loop: one timeline, edits interleaved by timestamp.
        let mut events = bc_serve::open_loop_events("default", &mix, requests, rate, 0, seed);
        let span = events.last().map(|e| e.at()).unwrap_or(0.0);
        events.extend(random_edits(&g, "default", edits, span, seed));
        let out = server.run(events).expect("serve open-loop workload");
        latencies.extend(out.responses.iter().map(|r| r.latency));
    } else {
        // Closed loop: waves of one request per ready client; edits
        // land between waves, spread over an estimated span.
        let per_client = requests.div_ceil(clients);
        let mut driver = ClosedLoop::new("default", mix, clients, per_client, think_rate, seed);
        let mut edit_queue =
            random_edits(&g, "default", edits, per_client as f64 / think_rate, seed);
        edit_queue.reverse(); // pop from the back in time order
        while !driver.done() {
            let mut wave = driver.next_wave();
            let horizon = wave.iter().map(Event::at).fold(f64::MIN, f64::max);
            while edit_queue
                .last()
                .is_some_and(|e| e.at() <= horizon || wave.is_empty())
            {
                wave.push(edit_queue.pop().expect("checked non-empty"));
            }
            let out = server.run(wave).expect("serve closed-loop wave");
            let completions: Vec<(u64, f64)> =
                out.responses.iter().map(|r| (r.id, r.completed)).collect();
            latencies.extend(out.responses.iter().map(|r| r.latency));
            driver.record_completions(&completions);
        }
        let leftover: Vec<Event> = edit_queue.into_iter().rev().collect();
        if !leftover.is_empty() {
            server.run(leftover).expect("apply trailing edits");
        }
    }

    let stats = server.cache_stats();
    let batches = server.rows().iter().filter(|r| r.event == "batch").count();
    println!(
        "answered {} requests in {batches} batches | p50={:.6}s p95={:.6}s p99={:.6}s",
        latencies.len(),
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
    );
    println!(
        "cache: {} hits, {} misses, {} evictions ({} entries resident) | edits applied: {}",
        stats.hits,
        stats.misses,
        stats.evictions,
        server.cache_len(),
        server.rows().iter().filter(|r| r.event == "edit").count(),
    );

    let metrics = flags.get_str("metrics", "");
    if !metrics.is_empty() {
        std::fs::write(&metrics, serve_to_jsonl(server.rows())).expect("write serve metrics");
        println!("wrote {metrics}");
    }

    // Smoke-check: a warm cache must have produced hits whenever the
    // workload repeated a root set (the default mix always does).
    if requests >= 8 && stats.hits == 0 {
        eprintln!("warning: no cache hits over {requests} requests");
    }
}
