//! Seeded load generators for the serving layer.
//!
//! Two classic traffic shapes, both fully deterministic from a seed:
//!
//! * **Open loop** ([`open_loop_events`]) — requests arrive on a
//!   Poisson process at a fixed offered rate, indifferent to how fast
//!   the server drains them. Queue depth (and hence tail latency) is
//!   an *output*; this is the shape that exposes batching wins.
//! * **Closed loop** ([`ClosedLoop`]) — a fixed population of
//!   clients, each issuing its next request only after the previous
//!   one completes plus a think time. Offered load self-throttles to
//!   the server's speed; drive it incrementally against
//!   [`crate::BcServer::run`].
//!
//! Randomness is a hand-rolled splitmix64 ([`SplitMix64`]) so the
//! crate needs no RNG dependency and streams replay bit-for-bit.

use bc_core::RootSelection;
use bc_graph::{Csr, VertexId};

use crate::delta::EdgeEdit;
use crate::server::{Event, Query, Request};

/// Minimal splitmix64 PRNG — deterministic, seedable, dependency-free.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator at the given seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, bound)` (`0` when `bound == 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    pub fn next_exp(&mut self, rate: f64) -> f64 {
        // 1 - u is in (0, 1], so the log is finite.
        -(1.0 - self.next_f64()).ln() / rate
    }
}

/// Shape of the randomized queries a workload draws from.
#[derive(Clone, Debug)]
pub struct QueryMix {
    /// Vertex count of the target graph (bounds drawn vertices).
    pub num_vertices: usize,
    /// Distinct root sets to rotate through (drawn uniformly). A
    /// small pool makes cache hits likely; a large one stresses
    /// eviction.
    pub root_pool: Vec<RootSelection>,
    /// `k` for drawn top-k queries.
    pub top_k: usize,
}

impl QueryMix {
    /// A default mix for an `n`-vertex graph: a handful of
    /// overlapping strided/prefix root sets and top-8 queries.
    pub fn for_graph(num_vertices: usize) -> Self {
        let n = num_vertices;
        QueryMix {
            num_vertices: n,
            root_pool: vec![
                RootSelection::FirstK(n.div_ceil(4).max(1)),
                RootSelection::FirstK(n.div_ceil(2).max(1)),
                RootSelection::Strided(n.div_ceil(4).max(1)),
                RootSelection::Strided(n.div_ceil(8).max(1)),
            ],
            top_k: 8,
        }
    }

    /// Draw one query + root set.
    pub fn draw(&self, rng: &mut SplitMix64) -> (RootSelection, Query) {
        let roots = self.root_pool[rng.next_below(self.root_pool.len() as u64) as usize].clone();
        let query = match rng.next_below(3) {
            0 => Query::TopK { k: self.top_k },
            1 => Query::PerVertex {
                vertex: rng.next_below(self.num_vertices as u64) as VertexId,
            },
            _ => {
                let len = 1 + rng.next_below(4.min(self.num_vertices as u64)) as usize;
                let vertices = (0..len)
                    .map(|_| rng.next_below(self.num_vertices as u64) as VertexId)
                    .collect();
                Query::SubgraphBc { vertices }
            }
        };
        (roots, query)
    }
}

/// An open-loop Poisson arrival stream: `count` requests against
/// `graph` at `rate` requests per simulated second, queries drawn
/// from `mix`. Request ids start at `first_id`.
pub fn open_loop_events(
    graph: &str,
    mix: &QueryMix,
    count: usize,
    rate: f64,
    first_id: u64,
    seed: u64,
) -> Vec<Event> {
    assert!(rate > 0.0, "open-loop rate must be positive");
    let mut rng = SplitMix64::new(seed);
    let mut at = 0.0;
    (0..count)
        .map(|i| {
            at += rng.next_exp(rate);
            let (roots, query) = mix.draw(&mut rng);
            Event::Query(Request {
                id: first_id + i as u64,
                arrival: at,
                graph: graph.to_owned(),
                roots,
                query,
            })
        })
        .collect()
}

/// A closed-loop driver: `clients` clients issue one request each,
/// wait for completion plus an exponential think time (mean
/// `1/think_rate`), and repeat until each has issued
/// `requests_per_client`. Feed [`ClosedLoop::next_wave`] output to
/// [`crate::BcServer::run`] and hand the completions back to
/// [`ClosedLoop::record_completions`].
#[derive(Clone, Debug)]
pub struct ClosedLoop {
    graph: String,
    mix: QueryMix,
    think_rate: f64,
    rng: SplitMix64,
    /// Per-client next issue time; `None` once the quota is spent.
    next_issue: Vec<Option<f64>>,
    remaining: Vec<usize>,
    /// request id -> client index, for completion routing.
    owner: Vec<usize>,
    next_id: u64,
}

impl ClosedLoop {
    /// A driver with `clients` clients, each issuing
    /// `requests_per_client` requests.
    pub fn new(
        graph: &str,
        mix: QueryMix,
        clients: usize,
        requests_per_client: usize,
        think_rate: f64,
        seed: u64,
    ) -> Self {
        assert!(think_rate > 0.0, "think rate must be positive");
        let mut rng = SplitMix64::new(seed);
        // Stagger the initial issues so the first wave is not one
        // synchronized burst.
        let next_issue = (0..clients)
            .map(|_| Some(rng.next_exp(think_rate)))
            .collect();
        ClosedLoop {
            graph: graph.to_owned(),
            mix,
            think_rate,
            rng,
            next_issue,
            remaining: vec![requests_per_client; clients],
            owner: Vec::new(),
            next_id: 0,
        }
    }

    /// True once every client has exhausted its quota.
    pub fn done(&self) -> bool {
        self.next_issue.iter().all(|t| t.is_none())
    }

    /// Emit every request currently ready to issue (one per client
    /// with a scheduled issue time). Returns an empty vec when the
    /// loop is done.
    pub fn next_wave(&mut self) -> Vec<Event> {
        let mut events = Vec::new();
        for client in 0..self.next_issue.len() {
            let Some(at) = self.next_issue[client] else {
                continue;
            };
            self.next_issue[client] = None;
            let (roots, query) = self.mix.draw(&mut self.rng);
            let id = self.next_id;
            self.next_id += 1;
            self.owner.push(client);
            events.push(Event::Query(Request {
                id,
                arrival: at,
                graph: self.graph.clone(),
                roots,
                query,
            }));
        }
        events
    }

    /// Record a wave's completions: each owning client schedules its
    /// next issue at `completed + think` (or retires at quota).
    pub fn record_completions(&mut self, completions: &[(u64, f64)]) {
        for &(id, completed) in completions {
            let client = self.owner[id as usize];
            self.remaining[client] -= 1;
            if self.remaining[client] > 0 {
                self.next_issue[client] = Some(completed + self.rng.next_exp(self.think_rate));
            }
        }
    }
}

/// Generate `count` random *valid* edge edits against `graph`
/// (registered under `graph_name`), alternating deletes of live
/// edges with inserts of missing ones. Edits are validated against a
/// shadow copy updated as they are generated, so the sequence stays
/// applicable in order. Timestamps are evenly spaced across `span`.
pub fn random_edits(g: &Csr, graph_name: &str, count: usize, span: f64, seed: u64) -> Vec<Event> {
    let mut shadow = g.clone();
    let mut rng = SplitMix64::new(seed ^ 0xED17);
    let n = g.num_vertices() as u64;
    let mut events = Vec::with_capacity(count);
    for i in 0..count {
        let at = span * (i + 1) as f64 / (count + 1) as f64;
        let edit = loop {
            let u = rng.next_below(n) as VertexId;
            let neighbors = shadow.neighbors(u);
            if i % 2 == 0 && !neighbors.is_empty() {
                let v = neighbors[rng.next_below(neighbors.len() as u64) as usize];
                break EdgeEdit::Delete(u, v);
            }
            let v = rng.next_below(n) as VertexId;
            if v != u && !neighbors.contains(&v) {
                break EdgeEdit::Insert(u, v);
            }
        };
        let (u, v) = edit.endpoints();
        shadow = match edit {
            EdgeEdit::Insert(..) => shadow.with_edge_inserted(u, v),
            EdgeEdit::Delete(..) => shadow.with_edge_removed(u, v),
        };
        events.push(Event::Edit {
            at,
            graph: graph_name.to_owned(),
            edit,
        });
    }
    events
}

/// The `p`-th percentile (0–100) of `values` by nearest-rank on a
/// sorted copy. Returns `0.0` for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            assert!(rng.next_exp(2.0) >= 0.0);
        }
    }

    #[test]
    fn open_loop_arrivals_are_sorted_and_replayable() {
        let mix = QueryMix::for_graph(64);
        let a = open_loop_events("g", &mix, 50, 10.0, 0, 99);
        let b = open_loop_events("g", &mix, 50, 10.0, 0, 99);
        assert_eq!(a.len(), 50);
        let times: Vec<f64> = a.iter().map(|e| e.at()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at(), y.at(), "same seed, same stream");
        }
    }

    #[test]
    fn closed_loop_respects_quota_and_completion_order() {
        let mix = QueryMix::for_graph(32);
        let mut driver = ClosedLoop::new("g", mix, 3, 2, 1.0, 5);
        let wave1 = driver.next_wave();
        assert_eq!(wave1.len(), 3, "every client issues once");
        assert!(
            driver.next_wave().is_empty(),
            "nothing ready until completions"
        );
        let completions: Vec<(u64, f64)> = wave1
            .iter()
            .map(|e| match e {
                Event::Query(r) => (r.id, r.arrival + 1.0),
                _ => unreachable!(),
            })
            .collect();
        driver.record_completions(&completions);
        let wave2 = driver.next_wave();
        assert_eq!(wave2.len(), 3);
        for (before, after) in completions.iter().zip(&wave2) {
            assert!(after.at() > before.1, "think time after completion");
        }
        driver.record_completions(
            &wave2
                .iter()
                .map(|e| {
                    (
                        match e {
                            Event::Query(r) => r.id,
                            _ => unreachable!(),
                        },
                        10.0,
                    )
                })
                .collect::<Vec<_>>(),
        );
        assert!(driver.done(), "2 requests per client exhausted");
        assert!(driver.next_wave().is_empty());
    }

    #[test]
    fn percentile_nearest_rank() {
        let vals: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&vals, 50.0), 50.0);
        assert_eq!(percentile(&vals, 95.0), 95.0);
        assert_eq!(percentile(&vals, 99.0), 99.0);
        assert_eq!(percentile(&vals, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[3.0], 99.0), 3.0);
    }
}
