//! # bc-serve — BC-as-a-service on the simulated GPU
//!
//! A long-running query layer over the offline solver: resident
//! graphs answer [`Query::TopK`] / [`Query::PerVertex`] /
//! [`Query::SubgraphBc`] requests on a deterministic simulated
//! clock, coalescing concurrent requests into shared multi-root runs
//! and caching per-root δ contributions keyed by `(graph_epoch,
//! root, options_fingerprint)`. Edge edits against a resident graph
//! bump its epoch and invalidate only the cached roots whose
//! recorded BFS DAG the edit can touch — with a full-invalidation
//! fallback past a configurable threshold — so delta-served scores
//! stay **bitwise identical** to a cold recompute on the edited
//! graph.
//!
//! The module map mirrors the serving pipeline:
//!
//! * [`server`] — [`BcServer`]: the batching loop, the simulated
//!   clock, epochs/edits, and [`cold_answer`], the reference the
//!   verification battery holds every response to.
//! * [`cache`] — [`ContributionCache`]: LRU over per-root
//!   contributions, priced in bytes against a device-memory-derived
//!   budget, with in-flight pinning.
//! * [`delta`] — [`edit_touches_root`]: the level/reachability test
//!   deciding which cached roots survive an edit.
//! * [`traffic`] — seeded open-loop (Poisson) and closed-loop
//!   (think-time) load generators and the percentile helper behind
//!   `bench_serve`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod delta;
pub mod server;
pub mod traffic;

pub use cache::{CacheKey, CacheStats, ContributionCache, EvictError, ENTRY_OVERHEAD_BYTES};
pub use delta::{edit_touches_root, EdgeEdit, UNREACHED};
pub use server::{
    cold_answer, Answer, BcServer, Event, Query, Request, Response, ServeConfig, ServeMutation,
    ServeOutcome,
};
pub use traffic::{open_loop_events, percentile, random_edits, ClosedLoop, QueryMix, SplitMix64};
