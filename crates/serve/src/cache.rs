//! Epoch-keyed per-root contribution cache.
//!
//! Per-root dependency contributions are the natural cache unit of
//! the multi-source formulation: a query's score vector is a
//! deterministic fold of its roots' δ vectors
//! ([`bc_core::merge_contribution_entries`]), so every root computed
//! for one query is reusable by any later query against the same
//! graph epoch under the same options fingerprint.
//!
//! Entries are priced in heap bytes against a budget derived from
//! the simulated device's memory, evicted in strict LRU order, and
//! **pinned** while a batch is in flight — an in-flight root can
//! never be evicted out from under the batch that is about to read
//! it. Keys are `(graph_epoch, root, options_fingerprint)`: bumping
//! the epoch retires every stale entry without touching it, and a
//! changed option set (device, traversal, normalization) changes the
//! fingerprint, so it can never collide into a hit.

use bc_core::RootContribution;
use bc_graph::VertexId;
use std::collections::BTreeMap;

/// Cache key: one root's contribution under one graph epoch and one
/// options fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Graph epoch the contribution was computed against.
    pub epoch: u64,
    /// The root.
    pub root: VertexId,
    /// FNV-1a fingerprint of every option that names the serving
    /// configuration (see [`crate::server::ServeConfig::fingerprint`]).
    pub fingerprint: u64,
}

/// Why an explicit eviction request was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictError {
    /// The entry is pinned by an in-flight batch.
    Pinned,
    /// No such entry.
    Missing,
}

struct Slot {
    value: RootContribution,
    bytes: u64,
    last_use: u64,
    pinned: bool,
}

/// Running hit/miss/evict counters (monotone over the cache's life).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Inserts refused because the entry cannot fit (over-budget even
    /// after evicting every unpinned entry).
    pub rejected_inserts: u64,
}

/// LRU contribution cache with byte-budget accounting and in-flight
/// pinning. All internal structures are ordered (`BTreeMap`), so the
/// eviction sequence is a deterministic function of the operation
/// history.
pub struct ContributionCache {
    budget: u64,
    used: u64,
    tick: u64,
    map: BTreeMap<CacheKey, Slot>,
    /// Recency index: `last_use` tick -> key. Ticks are unique.
    lru: BTreeMap<u64, CacheKey>,
    /// Running counters.
    pub stats: CacheStats,
}

/// Fixed per-entry bookkeeping bytes charged on top of the
/// contribution's own heap bytes (key + slot + index overhead).
pub const ENTRY_OVERHEAD_BYTES: u64 = 64;

impl ContributionCache {
    /// An empty cache with the given byte budget. A zero budget
    /// disables caching (every insert is rejected).
    pub fn new(budget_bytes: u64) -> Self {
        ContributionCache {
            budget: budget_bytes,
            used: 0,
            tick: 0,
            map: BTreeMap::new(),
            lru: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Priced bytes of one entry.
    pub fn entry_bytes(value: &RootContribution) -> u64 {
        value.heap_bytes() + ENTRY_OVERHEAD_BYTES
    }

    /// Configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Bytes currently accounted. Never exceeds the budget.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up a contribution, bumping its recency and counting a hit
    /// or miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<&RootContribution> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(slot) => {
                self.lru.remove(&slot.last_use);
                slot.last_use = tick;
                self.lru.insert(tick, *key);
                self.stats.hits += 1;
                Some(&slot.value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Non-counting, non-bumping presence probe.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.map.contains_key(key)
    }

    /// Insert an entry, evicting unpinned LRU entries until it fits.
    /// Returns `false` (and counts a rejected insert) when the entry
    /// cannot fit even after evicting everything unpinned — the
    /// caller then serves without caching. When `pinned` is set the
    /// entry starts pinned (in flight for the current batch).
    pub fn insert(&mut self, key: CacheKey, value: RootContribution, pinned: bool) -> bool {
        let bytes = Self::entry_bytes(&value);
        // Replacing an existing entry releases its bytes first.
        if let Some(old) = self.map.remove(&key) {
            self.lru.remove(&old.last_use);
            self.used -= old.bytes;
        }
        while self.used + bytes > self.budget {
            if !self.evict_lru() {
                self.stats.rejected_inserts += 1;
                return false;
            }
        }
        self.tick += 1;
        self.used += bytes;
        self.lru.insert(self.tick, key);
        self.map.insert(
            key,
            Slot {
                value,
                bytes,
                last_use: self.tick,
                pinned,
            },
        );
        true
    }

    /// Evict the least-recently-used *unpinned* entry. Returns `false`
    /// when every resident entry is pinned (or the cache is empty).
    fn evict_lru(&mut self) -> bool {
        let victim = self.lru.values().copied().find(|k| !self.map[k].pinned);
        match victim {
            Some(key) => {
                let slot = self.map.remove(&key).expect("lru index out of sync");
                self.lru.remove(&slot.last_use);
                self.used -= slot.bytes;
                self.stats.evictions += 1;
                true
            }
            None => false,
        }
    }

    /// Explicitly evict one entry. Pinned (in-flight) entries are
    /// rejected — the serving loop relies on this to keep a batch's
    /// working set resident until its responses are assembled.
    pub fn try_evict(&mut self, key: &CacheKey) -> Result<(), EvictError> {
        match self.map.get(key) {
            None => Err(EvictError::Missing),
            Some(slot) if slot.pinned => Err(EvictError::Pinned),
            Some(_) => {
                let slot = self.map.remove(key).expect("checked above");
                self.lru.remove(&slot.last_use);
                self.used -= slot.bytes;
                self.stats.evictions += 1;
                Ok(())
            }
        }
    }

    /// Pin an entry for the duration of a batch. No-op on a miss.
    pub fn pin(&mut self, key: &CacheKey) {
        if let Some(slot) = self.map.get_mut(key) {
            slot.pinned = true;
        }
    }

    /// Release a pin.
    pub fn unpin(&mut self, key: &CacheKey) {
        if let Some(slot) = self.map.get_mut(key) {
            slot.pinned = false;
        }
    }

    /// Apply an edge edit's delta invalidation for one fingerprint:
    /// every entry at `old_epoch` is either **carried** to `new_epoch`
    /// (its recorded BFS level map proves the edit cannot touch its
    /// DAG — `keep` returns `true`) or dropped. When the touched
    /// fraction exceeds `full_threshold`, falls back to dropping all
    /// of them (cheaper than re-keying a mostly-dead population).
    /// Returns `(carried, dropped, full_invalidation)`.
    pub fn carry_epoch(
        &mut self,
        fingerprint: u64,
        old_epoch: u64,
        new_epoch: u64,
        full_threshold: f64,
        mut keep: impl FnMut(&RootContribution) -> bool,
    ) -> (u64, u64, bool) {
        let candidates: Vec<CacheKey> = self
            .map
            .keys()
            .filter(|k| k.fingerprint == fingerprint && k.epoch == old_epoch)
            .copied()
            .collect();
        if candidates.is_empty() {
            return (0, 0, false);
        }
        let verdicts: Vec<(CacheKey, bool)> = candidates
            .iter()
            .map(|k| (*k, keep(&self.map[k].value)))
            .collect();
        let touched = verdicts.iter().filter(|&&(_, keep)| !keep).count();
        let full = touched as f64 > full_threshold * candidates.len() as f64;
        let mut carried = 0u64;
        let mut dropped = 0u64;
        for (key, keep) in verdicts {
            let slot = self.map.remove(&key).expect("candidate vanished");
            self.lru.remove(&slot.last_use);
            self.used -= slot.bytes;
            if keep && !full {
                let new_key = CacheKey {
                    epoch: new_epoch,
                    ..key
                };
                self.used += slot.bytes;
                self.lru.insert(slot.last_use, new_key);
                self.map.insert(new_key, slot);
                carried += 1;
            } else {
                dropped += 1;
            }
        }
        (carried, dropped, full)
    }

    /// Debug invariant: accounted bytes equal the sum over slots and
    /// the recency index covers the map exactly.
    #[doc(hidden)]
    pub fn check_accounting(&self) {
        let sum: u64 = self.map.values().map(|s| s.bytes).sum();
        assert_eq!(sum, self.used, "byte accounting out of sync");
        assert_eq!(self.lru.len(), self.map.len(), "recency index out of sync");
        assert!(self.used <= self.budget, "budget exceeded");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contrib(root: VertexId, entries: usize, n: usize) -> RootContribution {
        RootContribution {
            root,
            seconds: 0.0,
            max_depth: 1,
            entries: (0..entries as u32).map(|v| (v, 1.0)).collect(),
            levels: vec![0; n],
        }
    }

    fn key(epoch: u64, root: VertexId, fp: u64) -> CacheKey {
        CacheKey {
            epoch,
            root,
            fingerprint: fp,
        }
    }

    /// Budget that fits exactly `k` of the test contributions.
    fn budget_for(k: u64, entries: usize, n: usize) -> u64 {
        k * ContributionCache::entry_bytes(&contrib(0, entries, n))
    }

    #[test]
    fn lru_order_under_interleaved_hits_and_misses() {
        let mut c = ContributionCache::new(budget_for(3, 4, 8));
        for r in 0..3 {
            assert!(c.insert(key(0, r, 1), contrib(r, 4, 8), false));
        }
        // Touch 0 and 2; 1 is now the LRU victim.
        assert!(c.get(&key(0, 0, 1)).is_some());
        assert!(c.get(&key(0, 2, 1)).is_some());
        assert!(c.get(&key(0, 9, 1)).is_none(), "miss counted");
        assert!(c.insert(key(0, 3, 1), contrib(3, 4, 8), false));
        assert!(!c.contains(&key(0, 1, 1)), "LRU entry 1 evicted");
        assert!(c.contains(&key(0, 0, 1)) && c.contains(&key(0, 2, 1)));
        // Next victim is 0 (touched before 2).
        assert!(c.insert(key(0, 4, 1), contrib(4, 4, 8), false));
        assert!(!c.contains(&key(0, 0, 1)));
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.evictions, 2);
        c.check_accounting();
    }

    #[test]
    fn budget_is_never_exceeded() {
        let budget = budget_for(2, 4, 8) + 7; // deliberately unaligned
        let mut c = ContributionCache::new(budget);
        for r in 0..20 {
            c.insert(key(0, r, 1), contrib(r, 4, 8), false);
            assert!(c.used_bytes() <= budget, "insert {r} blew the budget");
            c.check_accounting();
        }
        assert_eq!(c.len(), 2, "only two entries fit");
        // An entry larger than the whole budget is rejected outright.
        let mut tiny = ContributionCache::new(8);
        assert!(!tiny.insert(key(0, 0, 1), contrib(0, 4, 8), false));
        assert_eq!(tiny.stats.rejected_inserts, 1);
        assert_eq!(tiny.used_bytes(), 0);
        // Zero budget = caching disabled.
        let mut off = ContributionCache::new(0);
        assert!(!off.insert(key(0, 0, 1), contrib(0, 0, 0), false));
    }

    #[test]
    fn in_flight_eviction_is_rejected() {
        let mut c = ContributionCache::new(budget_for(2, 4, 8));
        assert!(c.insert(key(0, 0, 1), contrib(0, 4, 8), true)); // pinned
        assert!(c.insert(key(0, 1, 1), contrib(1, 4, 8), false));
        // Explicit eviction of the pinned entry is refused.
        assert_eq!(c.try_evict(&key(0, 0, 1)), Err(EvictError::Pinned));
        assert_eq!(c.try_evict(&key(9, 9, 9)), Err(EvictError::Missing));
        // LRU pressure skips the pinned entry even though it is the
        // least recently used.
        assert!(c.insert(key(0, 2, 1), contrib(2, 4, 8), false));
        assert!(c.contains(&key(0, 0, 1)), "pinned entry survived");
        assert!(!c.contains(&key(0, 1, 1)), "unpinned LRU evicted instead");
        // With everything pinned, inserts are rejected rather than
        // evicting in-flight roots.
        c.pin(&key(0, 2, 1));
        assert!(!c.insert(key(0, 3, 1), contrib(3, 4, 8), false));
        // Unpinning makes it evictable again.
        c.unpin(&key(0, 0, 1));
        assert_eq!(c.try_evict(&key(0, 0, 1)), Ok(()));
        c.check_accounting();
    }

    #[test]
    fn option_and_epoch_changes_miss() {
        let mut c = ContributionCache::new(budget_for(4, 4, 8));
        assert!(c.insert(key(3, 5, 0xAAAA), contrib(5, 4, 8), false));
        // Same root, different fingerprint (changed options): miss.
        assert!(c.get(&key(3, 5, 0xBBBB)).is_none());
        // Same root + fingerprint, bumped epoch: miss.
        assert!(c.get(&key(4, 5, 0xAAAA)).is_none());
        // Exact key: hit.
        assert!(c.get(&key(3, 5, 0xAAAA)).is_some());
        assert_eq!(c.stats.misses, 2);
        assert_eq!(c.stats.hits, 1);
    }

    #[test]
    fn carry_epoch_rekeys_untouched_and_falls_back_when_mostly_dead() {
        let mut c = ContributionCache::new(budget_for(8, 4, 8));
        for r in 0..4 {
            assert!(c.insert(key(0, r, 1), contrib(r, 4, 8), false));
        }
        // One touched root out of four: selective carry.
        let (carried, dropped, full) = c.carry_epoch(1, 0, 1, 0.5, |v| v.root != 2);
        assert_eq!((carried, dropped, full), (3, 1, false));
        assert!(c.contains(&key(1, 0, 1)) && !c.contains(&key(0, 0, 1)));
        assert!(!c.contains(&key(1, 2, 1)));
        // Three touched out of three: exceeds threshold, full drop.
        let (carried, dropped, full) = c.carry_epoch(1, 1, 2, 0.5, |_| false);
        assert_eq!(carried, 0);
        assert_eq!(dropped, 3);
        assert!(full);
        assert!(c.is_empty());
        c.check_accounting();
    }
}
