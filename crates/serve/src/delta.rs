//! Dynamic-graph delta invalidation.
//!
//! An edge edit only perturbs the scores contributed by root `r` if
//! it can alter `r`'s shortest-path DAG. Each cached contribution
//! carries its BFS level map ([`bc_core::RootContribution::levels`]),
//! so the test is a constant-time level/reachability lookup:
//!
//! * **Insert `{u, v}`** — untouched when both endpoints are
//!   unreachable from `r` (the edit lives in another component), or
//!   when both are reachable at the *same* level (a same-level edge
//!   is never on a shortest path, and cannot shorten one: `d(v) <=
//!   d(u) + 1` already holds). Any level gap or reachability
//!   asymmetry may create new shortest paths → touched.
//! * **Delete `{u, v}`** — untouched when either endpoint is
//!   unreachable (the arc cannot lie on any shortest path from `r`)
//!   or when the endpoints sit on the same level (a non-DAG edge
//!   carries no σ and no δ). A one-level gap means the arc is a DAG
//!   edge → touched.
//!
//! The predicate is a sound over-approximation: a root it calls
//! untouched provably has a bitwise-identical contribution on the
//! edited graph, while a touched root's scores *may* change (the
//! proptest battery in `tests/tests/serve_delta.rs` checks the
//! superset direction against brute-force recomputation).

use bc_graph::VertexId;

/// Level value marking an unreachable vertex in a BFS level map.
pub const UNREACHED: u32 = u32::MAX;

/// One edge edit against a resident graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeEdit {
    /// Insert the undirected edge `{u, v}`.
    Insert(VertexId, VertexId),
    /// Delete the undirected edge `{u, v}`.
    Delete(VertexId, VertexId),
}

impl EdgeEdit {
    /// The edited endpoints.
    pub fn endpoints(self) -> (VertexId, VertexId) {
        match self {
            EdgeEdit::Insert(u, v) | EdgeEdit::Delete(u, v) => (u, v),
        }
    }

    /// Short name for reports.
    pub fn kind(self) -> &'static str {
        match self {
            EdgeEdit::Insert(..) => "insert",
            EdgeEdit::Delete(..) => "delete",
        }
    }
}

/// Does this edit potentially touch the BFS DAG recorded by `levels`?
/// `levels` is the frontier summary checkpointed with a cached root:
/// the BFS depth of every vertex from that root, [`UNREACHED`] where
/// no path exists. Returns `false` only when the cached contribution
/// is provably still exact on the edited graph.
pub fn edit_touches_root(levels: &[u32], edit: EdgeEdit) -> bool {
    let (u, v) = edit.endpoints();
    let du = levels[u as usize];
    let dv = levels[v as usize];
    match edit {
        EdgeEdit::Insert(..) => {
            if du == UNREACHED && dv == UNREACHED {
                // Both endpoints outside r's component: r's searches
                // never see the new edge.
                false
            } else if du == UNREACHED || dv == UNREACHED {
                // New reachability: distances from r change.
                true
            } else {
                // Same-level edges are never DAG edges and cannot
                // shorten any distance; any gap creates or shortens
                // shortest paths.
                du != dv
            }
        }
        EdgeEdit::Delete(..) => {
            if du == UNREACHED || dv == UNREACHED {
                // An arc with an unreachable endpoint lies on no
                // shortest path from r. (On an undirected graph both
                // endpoints of an existing edge share reachability,
                // but the test stays per-endpoint for safety.)
                false
            } else {
                // |du - dv| == 1 ⇔ the arc is a DAG edge carrying σ.
                // An existing undirected edge never has a gap > 1.
                du.abs_diff(dv) == 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_rules() {
        // Path 0-1-2-3: levels from root 0.
        let levels = vec![0, 1, 2, 3];
        // Same-level pairs do not exist on a path; a 2-gap insert
        // shortens distances.
        assert!(edit_touches_root(&levels, EdgeEdit::Insert(0, 2)));
        assert!(edit_touches_root(&levels, EdgeEdit::Insert(0, 3)));
        // One-level gap: new shortest path multiplicity.
        assert!(edit_touches_root(&levels, EdgeEdit::Insert(2, 3)));
        // Same level: untouched.
        let diamond = vec![0, 1, 1, 2];
        assert!(!edit_touches_root(&diamond, EdgeEdit::Insert(1, 2)));
        // Unreachable pair: untouched; mixed: touched.
        let split = vec![0, 1, UNREACHED, UNREACHED];
        assert!(!edit_touches_root(&split, EdgeEdit::Insert(2, 3)));
        assert!(edit_touches_root(&split, EdgeEdit::Insert(1, 2)));
    }

    #[test]
    fn delete_rules() {
        let diamond = vec![0, 1, 1, 2];
        // DAG edges carry σ: touched.
        assert!(edit_touches_root(&diamond, EdgeEdit::Delete(0, 1)));
        assert!(edit_touches_root(&diamond, EdgeEdit::Delete(1, 3)));
        // Same-level edge carries nothing: untouched.
        assert!(!edit_touches_root(&diamond, EdgeEdit::Delete(1, 2)));
        // Unreachable endpoint: untouched.
        let split = vec![0, 1, UNREACHED, UNREACHED];
        assert!(!edit_touches_root(&split, EdgeEdit::Delete(2, 3)));
    }
}
