//! Simulator errors.

use std::fmt;

/// Failures a simulated kernel launch can hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A device allocation exceeded capacity (the GPU-FAN failure
    /// mode in Figure 5).
    OutOfMemory {
        /// Bytes the failing allocation asked for.
        requested: u64,
        /// Bytes already allocated.
        in_use: u64,
        /// Device capacity.
        capacity: u64,
        /// What the allocation was for.
        what: String,
    },
    /// A free would drive the allocation accounting below zero — a
    /// double free, or an allocation returned to the wrong tracker.
    /// The tracker's accounting is left untouched when this is
    /// reported.
    AccountingUnderflow {
        /// Bytes the failing free tried to release.
        freed: u64,
        /// Bytes the tracker had accounted as allocated.
        in_use: u64,
    },
    /// A transient device fault (an ECC hiccup, a spurious launch
    /// failure, allocator fragmentation). Retryable: re-issuing the
    /// same work is expected to succeed.
    TransientFault {
        /// What the fault hit.
        what: String,
        /// Which attempt of the work unit faulted (1-based).
        attempt: u32,
    },
    /// A device disappeared permanently (XID error, node reboot,
    /// falling off the bus). Work assigned to it must move elsewhere.
    DeviceLost {
        /// Index of the lost device within its worker pool.
        device: usize,
        /// What the device was doing when it was lost.
        what: String,
    },
    /// A host worker thread driving a simulated device panicked; the
    /// panic was contained instead of propagating.
    WorkerPanic {
        /// Index of the panicking worker (GPU index in the cluster
        /// runner, shard index in the multi-root runner).
        worker: usize,
        /// The panic payload, stringified.
        what: String,
    },
}

impl SimError {
    /// Is retrying the same work expected to succeed?
    ///
    /// Only [`SimError::TransientFault`] qualifies: genuine
    /// out-of-memory is a capacity fact, accounting underflow is a
    /// bug, a lost device stays lost, and a contained panic needs a
    /// structural decision by the caller.
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::TransientFault { .. })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                requested,
                in_use,
                capacity,
                what,
            } => write!(
                f,
                "simulated device out of memory allocating {requested} B for {what} \
                 ({in_use} B of {capacity} B already in use)"
            ),
            SimError::AccountingUnderflow { freed, in_use } => write!(
                f,
                "simulated device-memory accounting underflow: freeing {freed} B with only \
                 {in_use} B allocated (double free, or an allocation from another tracker)"
            ),
            SimError::TransientFault { what, attempt } => write!(
                f,
                "transient simulated device fault on {what} (attempt {attempt}); retryable"
            ),
            SimError::DeviceLost { device, what } => {
                write!(f, "simulated device {device} lost while {what}")
            }
            SimError::WorkerPanic { worker, what } => {
                write!(f, "worker {worker} panicked: {what}")
            }
        }
    }
}

impl std::error::Error for SimError {}
