//! Simulator errors.

use std::fmt;

/// Failures a simulated kernel launch can hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A device allocation exceeded capacity (the GPU-FAN failure
    /// mode in Figure 5).
    OutOfMemory {
        /// Bytes the failing allocation asked for.
        requested: u64,
        /// Bytes already allocated.
        in_use: u64,
        /// Device capacity.
        capacity: u64,
        /// What the allocation was for.
        what: String,
    },
    /// A free would drive the allocation accounting below zero — a
    /// double free, or an allocation returned to the wrong tracker.
    /// The tracker's accounting is left untouched when this is
    /// reported.
    AccountingUnderflow {
        /// Bytes the failing free tried to release.
        freed: u64,
        /// Bytes the tracker had accounted as allocated.
        in_use: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfMemory {
                requested,
                in_use,
                capacity,
                what,
            } => write!(
                f,
                "simulated device out of memory allocating {requested} B for {what} \
                 ({in_use} B of {capacity} B already in use)"
            ),
            SimError::AccountingUnderflow { freed, in_use } => write!(
                f,
                "simulated device-memory accounting underflow: freeing {freed} B with only \
                 {in_use} B allocated (double free, or an allocation from another tracker)"
            ),
        }
    }
}

impl std::error::Error for SimError {}
