//! SIMT lockstep arithmetic.
//!
//! A warp executes its 32 lanes in lockstep: a loop runs for as many
//! *steps* as its longest lane needs, idle lanes masked off. The
//! divergence penalty of the paper's Figure 2 (threads with unequal
//! edge counts) is exactly the gap between `sum(trips)/32` and the
//! warp-step counts computed here.

/// Warp steps for work items assigned **round-robin** to `threads`
/// lanes (item `i` goes to lane `i % threads`), where item `i` costs
/// `trips[i]` steps. Returns the sum over warps of the maximum lane
/// total — the number of serialized lockstep steps the block issues.
///
/// This is the work-efficient kernel's distribution: queue entries
/// dealt to threads in order, each thread walking its vertices'
/// adjacency lists.
pub fn round_robin_warp_steps(trips: &[u32], threads: u32, warp_size: u32) -> u64 {
    assert!(threads > 0 && warp_size > 0 && threads % warp_size == 0);
    if trips.is_empty() {
        return 0;
    }
    let active_lanes = (trips.len() as u32).min(threads) as usize;
    let mut lane_totals = vec![0u64; active_lanes];
    for (i, &t) in trips.iter().enumerate() {
        lane_totals[i % threads as usize % active_lanes.max(1)] += t as u64;
    }
    lane_totals
        .chunks(warp_size as usize)
        .map(|w| w.iter().copied().max().unwrap_or(0))
        .sum()
}

/// Warp steps for `total` *uniform* work items spread as evenly as
/// possible over `threads` lanes (the edge-parallel distribution:
/// every item costs one step).
///
/// Closed form of [`round_robin_warp_steps`] with `trips = [1; total]`.
pub fn balanced_warp_steps(total: u64, threads: u32, warp_size: u32) -> u64 {
    assert!(threads > 0 && warp_size > 0 && threads % warp_size == 0);
    if total == 0 {
        return 0;
    }
    let t = threads as u64;
    let w = warp_size as u64;
    let q = total / t;
    let r = total % t;
    let warps = t / w;
    let heavy_warps = r.div_ceil(w).min(warps);
    if q == 0 {
        heavy_warps
    } else {
        heavy_warps * (q + 1) + (warps - heavy_warps) * q
    }
}

/// The idealized lower bound: perfectly balanced lanes with no
/// divergence (`ceil(total / warp_size)` steps spread over all warps
/// in parallel — reported per-block as serialized warp rounds).
pub fn ideal_warp_steps(total: u64, warp_size: u32) -> u64 {
    total.div_ceil(warp_size as u64)
}

/// Divergence efficiency: ratio of useful lane-steps to issued
/// lane-steps (1.0 = perfectly converged).
pub fn divergence_efficiency(trips: &[u32], threads: u32, warp_size: u32) -> f64 {
    let useful: u64 = trips.iter().map(|&t| t as u64).sum();
    if useful == 0 {
        return 1.0;
    }
    let steps = round_robin_warp_steps(trips, threads, warp_size);
    useful as f64 / (steps * warp_size as u64) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_work_is_free() {
        assert_eq!(round_robin_warp_steps(&[], 256, 32), 0);
        assert_eq!(balanced_warp_steps(0, 256, 32), 0);
    }

    #[test]
    fn single_item_costs_its_trips() {
        assert_eq!(round_robin_warp_steps(&[7], 256, 32), 7);
    }

    #[test]
    fn uniform_items_match_closed_form() {
        for total in [1u64, 31, 32, 33, 255, 256, 257, 1000, 4096] {
            let trips = vec![1u32; total as usize];
            assert_eq!(
                round_robin_warp_steps(&trips, 256, 32),
                balanced_warp_steps(total, 256, 32),
                "total = {total}"
            );
        }
    }

    #[test]
    fn divergence_costs_max_lane() {
        // One heavy lane in a warp of otherwise light lanes: the warp
        // pays for the heavy lane.
        let mut trips = vec![1u32; 32];
        trips[5] = 100;
        assert_eq!(round_robin_warp_steps(&trips, 32, 32), 100);
    }

    #[test]
    fn round_robin_accumulates_across_rounds() {
        // 64 items on 32 threads: lane i gets items i and i+32.
        let mut trips = vec![1u32; 64];
        trips[0] = 10; // lane 0 total 11
        assert_eq!(round_robin_warp_steps(&trips, 32, 32), 11);
    }

    #[test]
    fn balanced_steps_examples() {
        // 256 threads = 8 warps. 512 items -> 2 per lane -> each warp
        // max 2 -> 16 steps.
        assert_eq!(balanced_warp_steps(512, 256, 32), 16);
        // 40 items -> lanes 0..40 get 1; warps 0 and 1 active.
        assert_eq!(balanced_warp_steps(40, 256, 32), 2);
        // 257 items -> lane 0 has 2, others 1: warp0 max 2, warps 1..8 max 1.
        assert_eq!(balanced_warp_steps(257, 256, 32), 2 + 7);
    }

    #[test]
    fn ideal_is_lower_bound() {
        for total in [1u64, 100, 1000] {
            assert!(ideal_warp_steps(total, 32) <= balanced_warp_steps(total, 256, 32) * 8);
        }
        assert_eq!(ideal_warp_steps(64, 32), 2);
    }

    #[test]
    fn efficiency_bounds() {
        let uniform = vec![4u32; 256];
        let eff = divergence_efficiency(&uniform, 256, 32);
        assert!((eff - 1.0).abs() < 1e-12);
        let mut skewed = vec![1u32; 256];
        skewed[0] = 1000;
        let eff = divergence_efficiency(&skewed, 256, 32);
        assert!(eff < 0.2, "skewed work should be inefficient, got {eff}");
        assert!(eff > 0.0);
    }

    #[test]
    fn more_items_than_threads() {
        let trips = vec![2u32; 1000];
        // 1000 items round-robin on 256 lanes: lanes 0..232 get 4
        // items (8 steps), lanes 232..256 get 3 (6 steps).
        // Warps 0..7: warp 7 spans lanes 224..256 -> max 8.
        assert_eq!(round_robin_warp_steps(&trips, 256, 32), 8 * 8);
    }
}
