//! Device-memory accounting.
//!
//! The paper's scalability argument against GPU-FAN is a *memory*
//! argument: its O(n²) predecessor matrix exhausts a 6 GB card near
//! n = 2¹⁵⁻¹⁶ while the work-efficient method's O(n) local state
//! scales to the largest graphs. [`DeviceMemory`] tracks allocations
//! against the configured capacity and fails them exactly the way
//! `cudaMalloc` would.

use crate::error::SimError;

/// Tracks simulated device-memory allocations.
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    capacity: u64,
    allocated: u64,
    peak: u64,
}

impl DeviceMemory {
    /// A tracker for a device with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory {
            capacity,
            allocated: 0,
            peak: 0,
        }
    }

    /// Allocate `bytes`, failing with [`SimError::OutOfMemory`] when
    /// the device cannot hold them.
    pub fn alloc(&mut self, bytes: u64, what: &str) -> Result<Allocation, SimError> {
        let new_total = self.allocated.saturating_add(bytes);
        if new_total > self.capacity {
            return Err(SimError::OutOfMemory {
                requested: bytes,
                in_use: self.allocated,
                capacity: self.capacity,
                what: what.to_owned(),
            });
        }
        self.allocated = new_total;
        self.peak = self.peak.max(self.allocated);
        Ok(Allocation { bytes })
    }

    /// Release an allocation previously obtained from [`Self::alloc`].
    ///
    /// Fails with [`SimError::AccountingUnderflow`] when the receipt
    /// releases more bytes than this tracker has allocated — a double
    /// free, or a receipt from a different tracker. The accounting is
    /// left untouched on failure (silently saturating here would
    /// corrupt `in_use` for the rest of the run and mask the bug in
    /// release builds).
    pub fn free(&mut self, a: Allocation) -> Result<(), SimError> {
        if a.bytes > self.allocated {
            return Err(SimError::AccountingUnderflow {
                freed: a.bytes,
                in_use: self.allocated,
            });
        }
        self.allocated -= a.bytes;
        Ok(())
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.allocated
    }

    /// High-water mark of allocations.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

/// Count the distinct `line_bytes`-sized DRAM lines covered by a set
/// of contiguous byte ranges `[start, end)` — the transaction count a
/// perfectly scheduled memory controller issues for streaming those
/// ranges. Overlapping or duplicated ranges coalesce: a line shared
/// by two adjacency rows is fetched once per launch.
///
/// This is the layout-sensitive counterpart to
/// [`KernelCounters::memory_transactions`]: the counter formula
/// prices *volume*, while this helper prices *placement*, which is
/// what vertex relabeling changes.
///
/// [`KernelCounters::memory_transactions`]: crate::kernel::KernelCounters::memory_transactions
pub fn distinct_line_transactions(
    ranges: impl IntoIterator<Item = (u64, u64)>,
    line_bytes: u64,
) -> u64 {
    assert!(line_bytes > 0, "transaction width must be positive");
    // Convert to inclusive line-id intervals, then merge.
    let mut spans: Vec<(u64, u64)> = ranges
        .into_iter()
        .filter(|&(start, end)| end > start)
        .map(|(start, end)| (start / line_bytes, (end - 1) / line_bytes))
        .collect();
    spans.sort_unstable();
    let mut lines = 0u64;
    let mut current: Option<(u64, u64)> = None;
    for (lo, hi) in spans {
        match current {
            Some((clo, chi)) if lo <= chi => current = Some((clo, chi.max(hi))),
            Some((clo, chi)) => {
                lines += chi - clo + 1;
                current = Some((lo, hi));
            }
            None => current = Some((lo, hi)),
        }
    }
    if let Some((clo, chi)) = current {
        lines += chi - clo + 1;
    }
    lines
}

/// Receipt for a simulated allocation; return it to
/// [`DeviceMemory::free`] to release the bytes.
#[derive(Debug)]
#[must_use = "allocations should be freed (or intentionally leaked for the run's lifetime)"]
pub struct Allocation {
    bytes: u64,
}

impl Allocation {
    /// Size of this allocation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free() {
        let mut mem = DeviceMemory::new(1000);
        let a = mem.alloc(600, "arrays").unwrap();
        assert_eq!(mem.in_use(), 600);
        mem.free(a).unwrap();
        assert_eq!(mem.in_use(), 0);
        assert_eq!(mem.peak(), 600);
    }

    #[test]
    fn oom_reported_with_context() {
        let mut mem = DeviceMemory::new(1000);
        let _keep = mem.alloc(800, "graph").unwrap();
        let err = mem.alloc(300, "predecessors").unwrap_err();
        match err {
            SimError::OutOfMemory {
                requested,
                in_use,
                capacity,
                what,
            } => {
                assert_eq!(requested, 300);
                assert_eq!(in_use, 800);
                assert_eq!(capacity, 1000);
                assert_eq!(what, "predecessors");
            }
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut mem = DeviceMemory::new(100);
        assert!(mem.alloc(100, "x").is_ok());
        assert!(mem.alloc(1, "y").is_err());
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut mem = DeviceMemory::new(1000);
        let a = mem.alloc(400, "a").unwrap();
        let b = mem.alloc(500, "b").unwrap();
        mem.free(a).unwrap();
        mem.free(b).unwrap();
        let _c = mem.alloc(100, "c").unwrap();
        assert_eq!(mem.peak(), 900);
    }

    #[test]
    fn distinct_line_transactions_merges_overlaps() {
        // Two rows sharing a 128-byte line cost one transaction.
        assert_eq!(distinct_line_transactions([(0, 64), (64, 128)], 128), 1);
        // Disjoint lines are counted once each; duplicates coalesce.
        assert_eq!(
            distinct_line_transactions([(0, 128), (256, 384), (0, 128)], 128),
            2
        );
        // A long range spans ceil(len / line) lines.
        assert_eq!(distinct_line_transactions([(0, 1000)], 128), 8);
        // Unsorted input and straddling ranges.
        assert_eq!(distinct_line_transactions([(300, 400), (100, 200)], 128), 4);
        // Empty ranges contribute nothing.
        assert_eq!(distinct_line_transactions([(5, 5)], 32), 0);
        assert_eq!(distinct_line_transactions(std::iter::empty(), 32), 0);
    }

    #[test]
    fn foreign_free_is_an_error_not_a_saturation() {
        let mut big = DeviceMemory::new(1000);
        let mut small = DeviceMemory::new(1000);
        let from_big = big.alloc(700, "arrays").unwrap();
        let _keep = small.alloc(100, "arrays").unwrap();
        // Returning `big`'s receipt to `small` must not silently
        // saturate `small`'s accounting to zero.
        let err = small.free(from_big).unwrap_err();
        match err {
            SimError::AccountingUnderflow { freed, in_use } => {
                assert_eq!(freed, 700);
                assert_eq!(in_use, 100);
            }
            other => panic!("expected AccountingUnderflow, got {other:?}"),
        }
        // Accounting untouched by the failed free.
        assert_eq!(small.in_use(), 100);
        assert_eq!(big.in_use(), 700);
    }
}
