//! Logical kernel memory-access tracing.
//!
//! The cost models (`bc_core::methods::cost`) *price* the atomics the
//! paper's kernels issue; this module lets the engine *emit* the
//! accesses those atomics protect, so a checker (`bc-verify`) can
//! replay them and prove the pricing assumptions — most importantly
//! that the successor-checking dependency accumulation of Algorithm 3
//! is race-free **without** atomics while a predecessor-style
//! (edge-parallel) accumulation is not.
//!
//! Events are *logical*: one per access a GPU thread would perform on
//! the named per-root kernel arrays, attributed to the lane (thread)
//! that the work-efficient kernel would assign the access to. The
//! engine stays single-threaded; the trace reconstructs the
//! concurrency structure of one simulated kernel launch per level.
//!
//! Tracing is zero-cost when disabled: the engine is generic over
//! [`TraceSink`] and every emission site is guarded by the associated
//! constant [`TraceSink::ENABLED`], which is `false` for [`NullSink`],
//! so the event construction compiles out of untraced builds.

/// The named per-root arrays of the paper's Algorithms 1–3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelArray {
    /// `d` — BFS distances.
    Dist,
    /// `σ` — shortest-path counts.
    Sigma,
    /// `δ` — dependency accumulators.
    Delta,
    /// `Q_curr` — the current frontier queue.
    QCurr,
    /// `Q_next` — the next frontier queue.
    QNext,
    /// `S` — the level-segmented discovery stack.
    Stack,
    /// `ends` — the stack's level boundaries (its tail doubles as the
    /// `Q_next` length counter the forward kernel bumps atomically).
    Ends,
    /// `visited` — the bottom-up sweep's visited bitmap; indexed by
    /// 32-bit **word**, not by vertex.
    VisitedBits,
    /// `F_curr` — the bottom-up sweep's current-frontier bitmap;
    /// indexed by 32-bit word.
    FrontierBits,
    /// `F_next` — the bottom-up sweep's next-frontier bitmap; indexed
    /// by 32-bit word. Discoveries set bits with `atomicOr`.
    NextBits,
    /// `F_sum` — the compressed frontier's summary level: one bit per
    /// 32 leaf words (1024 vertices), letting empty pull regions skip
    /// in a single probe. Indexed by summary word; set with
    /// `atomicOr` by the frontier-compaction kernel.
    SummaryBits,
}

impl KernelArray {
    /// Every kernel array, in declaration order — spec-coverage
    /// checks (`bc-analyze`) iterate this to prove no array escapes
    /// the static access specifications.
    pub const ALL: [KernelArray; 11] = [
        KernelArray::Dist,
        KernelArray::Sigma,
        KernelArray::Delta,
        KernelArray::QCurr,
        KernelArray::QNext,
        KernelArray::Stack,
        KernelArray::Ends,
        KernelArray::VisitedBits,
        KernelArray::FrontierBits,
        KernelArray::NextBits,
        KernelArray::SummaryBits,
    ];

    /// The paper's name for the array.
    pub fn name(self) -> &'static str {
        match self {
            KernelArray::Dist => "d",
            KernelArray::Sigma => "sigma",
            KernelArray::Delta => "delta",
            KernelArray::QCurr => "Q_curr",
            KernelArray::QNext => "Q_next",
            KernelArray::Stack => "S",
            KernelArray::Ends => "ends",
            KernelArray::VisitedBits => "visited",
            KernelArray::FrontierBits => "F_curr",
            KernelArray::NextBits => "F_next",
            KernelArray::SummaryBits => "F_sum",
        }
    }
}

/// How a logical thread touched one array cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// Plain (non-atomic) load.
    Read,
    /// Plain (non-atomic) store.
    Write,
    /// `atomicCAS` — the deduplicating distance update of Algorithm 2.
    AtomicCas,
    /// `atomicAdd` — σ accumulation and queue-tail bumps.
    AtomicAdd,
    /// `atomicOr` — word-granular bitmap sets in the bottom-up sweep.
    AtomicOr,
}

impl AccessKind {
    /// Every access flavor, in declaration order.
    pub const ALL: [AccessKind; 5] = [
        AccessKind::Read,
        AccessKind::Write,
        AccessKind::AtomicCas,
        AccessKind::AtomicAdd,
        AccessKind::AtomicOr,
    ];

    /// Does this access modify the cell?
    pub fn is_write(self) -> bool {
        !matches!(self, AccessKind::Read)
    }

    /// Is this access hardware-synchronized (word-coherent RMW)?
    pub fn is_atomic(self) -> bool {
        matches!(
            self,
            AccessKind::AtomicCas | AccessKind::AtomicAdd | AccessKind::AtomicOr
        )
    }
}

/// Which half of Brandes' algorithm a traced level belongs to
/// (mirrors `bc_core::engine::Phase` without the reverse dependency).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TracePhase {
    /// Shortest-path calculation (Algorithm 2).
    Forward,
    /// Dependency accumulation (Algorithm 3).
    Backward,
}

/// One logical access by one logical thread.
///
/// `thread` is the lane the work-efficient kernel assigns the access
/// to — the position of the owning vertex (or edge, for synthesized
/// edge-parallel traces) within the level's frontier. Accesses by the
/// same logical thread are ordered by program order; accesses by
/// different threads within one level are concurrent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Logical lane id within the level.
    pub thread: u32,
    /// Which kernel array was touched.
    pub array: KernelArray,
    /// Cell index within the array.
    pub index: u32,
    /// Access flavor.
    pub kind: AccessKind,
}

/// Receiver for the engine's access events.
///
/// A level corresponds to one simulated kernel launch: every event
/// recorded between two [`begin_level`] calls executes concurrently
/// across its logical threads, with a device-wide barrier between
/// levels.
///
/// [`begin_level`]: TraceSink::begin_level
pub trait TraceSink {
    /// Statically `true` when this sink observes events. Emission
    /// sites are guarded by this constant so a disabled sink costs
    /// nothing — not even event construction.
    const ENABLED: bool = true;

    /// A new level (kernel launch) begins; subsequent events belong
    /// to it.
    fn begin_level(&mut self, phase: TracePhase, depth: u32);

    /// One logical access within the current level.
    fn record(&mut self, event: TraceEvent);
}

/// The disabled sink: all emission sites compile out.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    fn begin_level(&mut self, _phase: TracePhase, _depth: u32) {}

    fn record(&mut self, _event: TraceEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_classification() {
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(AccessKind::AtomicCas.is_write() && AccessKind::AtomicCas.is_atomic());
        assert!(AccessKind::AtomicAdd.is_atomic());
        assert!(AccessKind::AtomicOr.is_write() && AccessKind::AtomicOr.is_atomic());
        assert!(!AccessKind::Write.is_atomic());
        assert!(!AccessKind::Read.is_atomic());
    }

    #[test]
    fn array_names_match_paper() {
        assert_eq!(KernelArray::Dist.name(), "d");
        assert_eq!(KernelArray::Ends.name(), "ends");
        assert_eq!(KernelArray::QNext.name(), "Q_next");
        assert_eq!(KernelArray::VisitedBits.name(), "visited");
        assert_eq!(KernelArray::FrontierBits.name(), "F_curr");
        assert_eq!(KernelArray::NextBits.name(), "F_next");
    }

    #[test]
    fn null_sink_is_disabled() {
        // Read through a function parameter so the assertion isn't a
        // compile-time constant to the lint.
        fn enabled<S: TraceSink>(_: &S) -> bool {
            S::ENABLED
        }
        assert!(!enabled(&NullSink));
        // And is still callable (the guard, not the sink, removes the
        // call site).
        let mut s = NullSink;
        s.begin_level(TracePhase::Forward, 0);
        s.record(TraceEvent {
            thread: 0,
            array: KernelArray::Dist,
            index: 0,
            kind: AccessKind::Read,
        });
    }
}
