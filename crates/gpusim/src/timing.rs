//! The timing model: converting counted work into simulated seconds.
//!
//! Each search iteration executed by a thread block is summarized as
//! an [`IterationWork`] record; [`DeviceConfig::block_iteration_seconds`]
//! prices it with a roofline-style model distinguishing three memory
//! access patterns (the distinction §III-A of the paper turns on):
//!
//! * **coalesced** streams (edge arrays walked in order) run at the
//!   SM's bandwidth share;
//! * **independent random** words (edge-parallel `d[dst]` probes —
//!   every thread issues them with no dependences) are bandwidth-
//!   bound too, but each word drags a full DRAM sector;
//! * **dependent scattered gathers** (the work-efficient kernel's
//!   offsets → adjacency → per-vertex state chains) are *latency*-
//!   bound: the SM sustains only `scattered_mlp` of them in flight,
//!   and each pays L2 or DRAM latency depending on whether the
//!   per-vertex working set (reported as `working_set_bytes`) fits
//!   in L2. This is what makes small graphs cache-friendly for every
//!   method — reproducing the paper's Figure 5 observation that
//!   edge-parallel is competitive below ~10⁴ vertices — while large
//!   high-diameter graphs devastate the all-edges methods.
//!
//! Compute (SIMT lockstep steps × issue cost, plus warp-amortized
//! atomics) overlaps with memory; an iteration pays the maximum of
//! the two, plus serialized atomic contention and a fixed per-
//! iteration overhead (the per-level kernel relaunch / block-wide
//! synchronization every level-synchronous implementation pays), and
//! optionally a device-wide barrier for fine-grained methods.

use crate::device::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Work performed by one thread block during one search iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationWork {
    /// Serialized SIMT lockstep steps (see [`crate::warp`]).
    pub warp_steps: u64,
    /// Bytes moved by coalesced (streaming) accesses.
    pub coalesced_bytes: u64,
    /// Independent random 4-byte accesses (bandwidth-priced, one
    /// DRAM sector each).
    pub random_accesses: u64,
    /// Dependent scattered 4-byte gathers (latency-priced against
    /// `scattered_mlp`).
    pub scattered_accesses: u64,
    /// Dependent probes into an O(n)-bit frontier/visited bitmap
    /// (bottom-up sweeps). A bitmap is 32× denser than the word
    /// arrays behind `scattered_accesses` — n/8 bytes sit in L2 for
    /// every graph this simulator handles — so these are priced at L2
    /// latency against the same `scattered_mlp` budget, and consume
    /// no DRAM bandwidth.
    pub bitmap_accesses: u64,
    /// Bytes of the randomly-accessed working set backing the
    /// scattered gathers (0 = assume it misses L2).
    pub working_set_bytes: u64,
    /// Un-contended atomic operations.
    pub atomics: u64,
    /// Extra serialization events from atomic contention (each costs
    /// a full atomic round-trip, serialized).
    pub contended_atomics: u64,
    /// Whether this iteration ends with a device-wide barrier
    /// (inter-block sync via kernel relaunch).
    pub global_sync: bool,
}

impl IterationWork {
    /// Merge another record into this one (used when a logical
    /// iteration is split across kernel phases).
    pub fn merge(&mut self, other: &IterationWork) {
        self.warp_steps += other.warp_steps;
        self.coalesced_bytes += other.coalesced_bytes;
        self.random_accesses += other.random_accesses;
        self.scattered_accesses += other.scattered_accesses;
        self.bitmap_accesses += other.bitmap_accesses;
        self.working_set_bytes = self.working_set_bytes.max(other.working_set_bytes);
        self.atomics += other.atomics;
        self.contended_atomics += other.contended_atomics;
        self.global_sync |= other.global_sync;
    }

    /// Effective bytes this iteration moves through DRAM.
    pub fn effective_bytes(&self, device: &DeviceConfig) -> u64 {
        self.coalesced_bytes
            + (self.random_accesses + self.scattered_accesses) * device.scattered_tx_bytes as u64
    }
}

impl DeviceConfig {
    /// Expected latency of one dependent scattered gather, given the
    /// working set it targets: L2 latency on hits, DRAM latency on
    /// misses, with the hit rate set by how much of the working set
    /// the L2 can hold.
    pub fn gather_latency_ns(&self, working_set_bytes: u64) -> f64 {
        let hit = if working_set_bytes == 0 {
            0.0
        } else {
            (self.l2_bytes as f64 / working_set_bytes as f64).min(0.95)
        };
        hit * self.l2_latency_ns + (1.0 - hit) * self.dram_latency_ns
    }

    /// Price one block-iteration in seconds.
    pub fn block_iteration_seconds(&self, w: &IterationWork) -> f64 {
        let compute_cycles = w.warp_steps as f64 * self.warp_step_cycles
            + w.atomics as f64 * self.atomic_cycles / self.warp_size as f64;
        let compute_s = self.cycles_to_seconds(compute_cycles);

        // Random words that hit in L2 consume no DRAM bandwidth;
        // misses drag a full sector each.
        let miss = if w.working_set_bytes == 0 {
            1.0
        } else {
            1.0 - (self.l2_bytes as f64 / w.working_set_bytes as f64).min(0.95)
        };
        let dram_bytes = w.coalesced_bytes as f64
            + (w.random_accesses + w.scattered_accesses) as f64
                * self.scattered_tx_bytes as f64
                * miss;
        let bw_s = dram_bytes / self.sm_bandwidth_bytes_s();
        let gather_s =
            w.scattered_accesses as f64 * self.gather_latency_ns(w.working_set_bytes) * 1e-9
                / self.scattered_mlp;
        // Bitmap probes share the scattered-load MLP budget but
        // always hit L2 (n/8 bytes of bits vs 1.5 MB of cache).
        let bitmap_s = w.bitmap_accesses as f64 * self.l2_latency_ns * 1e-9 / self.scattered_mlp;
        let mem_s = bw_s.max(gather_s + bitmap_s);

        // Contended atomics serialize: each conflict costs a full
        // atomic round trip, not amortized across the warp.
        let contention_s = self.cycles_to_seconds(w.contended_atomics as f64 * self.atomic_cycles);

        let overhead_s = self.iteration_overhead_ns * 1e-9
            + if w.global_sync {
                self.global_sync_ns * 1e-9
            } else {
                0.0
            };

        compute_s.max(mem_s) + contention_s + overhead_s
    }
}

/// Makespan of coarse-grained scheduling: `num_blocks` blocks, block
/// `b` processes work items `b, b + B, b + 2B, …` (the strided root
/// distribution of Jia et al. and this paper). Returns the maximum
/// per-block total.
pub fn coarse_grained_makespan(item_seconds: &[f64], num_blocks: u32) -> f64 {
    assert!(num_blocks > 0);
    let mut block_totals = vec![0.0f64; num_blocks as usize];
    for (i, &t) in item_seconds.iter().enumerate() {
        block_totals[i % num_blocks as usize] += t;
    }
    block_totals.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceConfig {
        DeviceConfig::gtx_titan()
    }

    #[test]
    fn empty_iteration_costs_overhead_only() {
        let d = dev();
        let s = d.block_iteration_seconds(&IterationWork::default());
        assert!((s - d.iteration_overhead_ns * 1e-9).abs() < 1e-15);
    }

    #[test]
    fn global_sync_adds_cost() {
        let d = dev();
        let base = d.block_iteration_seconds(&IterationWork::default());
        let with_sync = d.block_iteration_seconds(&IterationWork {
            global_sync: true,
            ..Default::default()
        });
        assert!((with_sync - base - d.global_sync_ns * 1e-9).abs() < 1e-15);
    }

    #[test]
    fn bandwidth_bound_iteration() {
        let d = dev();
        // 100 MB coalesced: clearly bandwidth bound.
        let w = IterationWork {
            coalesced_bytes: 100_000_000,
            ..Default::default()
        };
        let s = d.block_iteration_seconds(&w);
        let expect = 100e6 / d.sm_bandwidth_bytes_s() + d.iteration_overhead_ns * 1e-9;
        assert!((s - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn dependent_gathers_cost_more_than_anything() {
        let d = dev();
        let words = 1_000_000u64;
        let gathers = d.block_iteration_seconds(&IterationWork {
            scattered_accesses: words,
            ..Default::default()
        });
        let random = d.block_iteration_seconds(&IterationWork {
            random_accesses: words,
            ..Default::default()
        });
        let coalesced = d.block_iteration_seconds(&IterationWork {
            coalesced_bytes: words * 4,
            ..Default::default()
        });
        assert!(
            gathers > 4.0 * random,
            "dependent {gathers} vs random {random}"
        );
        assert!(
            random > 4.0 * coalesced,
            "random {random} vs coalesced {coalesced}"
        );
    }

    #[test]
    fn l2_resident_working_sets_are_cheap() {
        let d = dev();
        let base = IterationWork {
            scattered_accesses: 1_000_000,
            ..Default::default()
        };
        let miss = d.block_iteration_seconds(&base);
        let hit = d.block_iteration_seconds(&IterationWork {
            working_set_bytes: d.l2_bytes / 4, // fully resident
            ..base
        });
        assert!(
            miss > 5.0 * hit,
            "L2-resident gathers should be far cheaper: {miss} vs {hit}"
        );
        // And a huge working set behaves like a miss.
        let big = d.block_iteration_seconds(&IterationWork {
            working_set_bytes: d.l2_bytes * 1000,
            ..base
        });
        assert!((big - miss).abs() / miss < 0.05);
    }

    #[test]
    fn gather_latency_interpolates() {
        let d = dev();
        assert!((d.gather_latency_ns(0) - d.dram_latency_ns).abs() < 1e-12);
        let resident = d.gather_latency_ns(d.l2_bytes / 2);
        // 95% hit cap.
        let expect = 0.95 * d.l2_latency_ns + 0.05 * d.dram_latency_ns;
        assert!((resident - expect).abs() < 1e-9);
        let half = d.gather_latency_ns(d.l2_bytes * 2);
        let expect_half = 0.5 * d.l2_latency_ns + 0.5 * d.dram_latency_ns;
        assert!((half - expect_half).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_iteration() {
        let d = dev();
        let w = IterationWork {
            warp_steps: 10_000_000,
            ..Default::default()
        };
        let s = d.block_iteration_seconds(&w);
        let expect = d.cycles_to_seconds(1e7 * d.warp_step_cycles) + d.iteration_overhead_ns * 1e-9;
        assert!((s - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn contention_serializes() {
        let d = dev();
        let a = d.block_iteration_seconds(&IterationWork {
            atomics: 1000,
            ..Default::default()
        });
        let b = d.block_iteration_seconds(&IterationWork {
            atomics: 1000,
            contended_atomics: 100_000,
            ..Default::default()
        });
        assert!(b > a * 5.0, "contended atomics must hurt: {a} vs {b}");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = IterationWork {
            warp_steps: 1,
            coalesced_bytes: 2,
            ..Default::default()
        };
        let b = IterationWork {
            warp_steps: 10,
            scattered_accesses: 5,
            bitmap_accesses: 7,
            random_accesses: 2,
            working_set_bytes: 100,
            atomics: 3,
            contended_atomics: 1,
            global_sync: true,
            coalesced_bytes: 8,
        };
        a.merge(&b);
        assert_eq!(a.warp_steps, 11);
        assert_eq!(a.coalesced_bytes, 10);
        assert_eq!(a.scattered_accesses, 5);
        assert_eq!(a.bitmap_accesses, 7);
        assert_eq!(a.random_accesses, 2);
        assert_eq!(a.working_set_bytes, 100);
        assert_eq!(a.atomics, 3);
        assert_eq!(a.contended_atomics, 1);
        assert!(a.global_sync);
    }

    #[test]
    fn bitmap_probes_price_at_l2_latency() {
        let d = dev();
        let probes = 1_000_000u64;
        let bitmap = d.block_iteration_seconds(&IterationWork {
            bitmap_accesses: probes,
            ..Default::default()
        });
        let expect = probes as f64 * d.l2_latency_ns * 1e-9 / d.scattered_mlp
            + d.iteration_overhead_ns * 1e-9;
        assert!((bitmap - expect).abs() / expect < 1e-9);
        // Far cheaper than the same count of DRAM-missing gathers,
        // and they stack on top of gather latency (shared MLP).
        let gathers = d.block_iteration_seconds(&IterationWork {
            scattered_accesses: probes,
            ..Default::default()
        });
        assert!(gathers > 5.0 * bitmap, "gathers {gathers} bitmap {bitmap}");
        let both = d.block_iteration_seconds(&IterationWork {
            scattered_accesses: probes,
            bitmap_accesses: probes,
            ..Default::default()
        });
        assert!(both > gathers, "bitmap probes must add latency");
    }

    #[test]
    fn makespan_strided() {
        // 4 items on 2 blocks: block0 gets items 0,2; block1 gets 1,3.
        let times = [3.0, 1.0, 2.0, 1.0];
        assert!((coarse_grained_makespan(&times, 2) - 5.0).abs() < 1e-12);
        // One block: everything serial.
        assert!((coarse_grained_makespan(&times, 1) - 7.0).abs() < 1e-12);
        // More blocks than items.
        assert!((coarse_grained_makespan(&times, 8) - 3.0).abs() < 1e-12);
    }
}
