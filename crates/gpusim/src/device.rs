//! Device descriptions.
//!
//! A [`DeviceConfig`] captures the handful of architectural parameters
//! the timing model needs. Two presets reproduce the paper's
//! hardware: the single-node GeForce GTX Titan (14 SMs, Kepler) and
//! the Keeneland Tesla M2090 (16 SMs, Fermi).

use serde::{Deserialize, Serialize};

/// Architectural parameters of a simulated GPU.
///
/// The calibration constants (`warp_step_cycles`,
/// `iteration_overhead_ns`, …) were fitted so the single-GPU
/// experiments land in the paper's reported MTEPS bands; see
/// EXPERIMENTS.md for the fitted values and their provenance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Aggregate device memory bandwidth in GB/s.
    pub mem_bandwidth_gb_s: f64,
    /// Device memory capacity in bytes.
    pub global_mem_bytes: u64,
    /// Threads per block (the paper's kernels use one block per SM).
    pub threads_per_block: u32,
    /// SIMT width.
    pub warp_size: u32,
    /// Bytes fetched by one coalesced transaction.
    pub coalesced_tx_bytes: u32,
    /// Effective bytes consumed per scattered 4-byte access (DRAM
    /// burst granularity: a random word still moves a 32-byte
    /// sector).
    pub scattered_tx_bytes: u32,
    /// L2 cache capacity in bytes (scattered gathers whose working
    /// set fits here are much cheaper).
    pub l2_bytes: u64,
    /// L2 hit latency in nanoseconds.
    pub l2_latency_ns: f64,
    /// DRAM round-trip latency in nanoseconds.
    pub dram_latency_ns: f64,
    /// Memory-level parallelism of *dependent* scattered gathers per
    /// SM: how many such requests the SM keeps in flight when each
    /// thread chases offsets → adjacency → per-vertex state. Fitted
    /// against the paper's mesh/road MTEPS (EXPERIMENTS.md).
    pub scattered_mlp: f64,
    /// Issue cost of one warp lockstep step (cycles). Covers the
    /// arithmetic + branch instructions of one edge inspection.
    pub warp_step_cycles: f64,
    /// Cost of one un-contended atomic operation (cycles).
    pub atomic_cycles: f64,
    /// Per-search-iteration overhead within a running block
    /// (`__syncthreads` rounds, queue bookkeeping), nanoseconds.
    pub iteration_overhead_ns: f64,
    /// Overhead of a device-wide synchronization (kernel relaunch),
    /// nanoseconds. Paid per iteration by fine-grained methods such
    /// as GPU-FAN that need inter-block barriers.
    pub global_sync_ns: f64,
}

impl DeviceConfig {
    /// GeForce GTX Titan: 14 SMs, 837 MHz, 6 GB GDDR5, 288.4 GB/s
    /// (the paper's single-node card).
    pub fn gtx_titan() -> Self {
        DeviceConfig {
            name: "GeForce GTX Titan".to_owned(),
            num_sms: 14,
            clock_ghz: 0.837,
            mem_bandwidth_gb_s: 288.4,
            global_mem_bytes: 6 * 1024 * 1024 * 1024,
            threads_per_block: 256,
            warp_size: 32,
            coalesced_tx_bytes: 128,
            scattered_tx_bytes: 32,
            l2_bytes: 1_536 * 1024,
            l2_latency_ns: 35.0,
            dram_latency_ns: 350.0,
            scattered_mlp: 32.0,
            warp_step_cycles: 14.0,
            atomic_cycles: 24.0,
            iteration_overhead_ns: 20_000.0,
            global_sync_ns: 5000.0,
        }
    }

    /// Tesla M2090: 16 SMs, 1.3 GHz, 6 GB GDDR5, 177.6 GB/s (the
    /// Keeneland cluster card).
    pub fn tesla_m2090() -> Self {
        DeviceConfig {
            name: "Tesla M2090".to_owned(),
            num_sms: 16,
            clock_ghz: 1.3,
            mem_bandwidth_gb_s: 177.6,
            global_mem_bytes: 6 * 1024 * 1024 * 1024,
            threads_per_block: 256,
            warp_size: 32,
            coalesced_tx_bytes: 128,
            scattered_tx_bytes: 32,
            l2_bytes: 768 * 1024,
            l2_latency_ns: 40.0,
            dram_latency_ns: 400.0,
            scattered_mlp: 28.0,
            warp_step_cycles: 16.0,
            atomic_cycles: 30.0,
            iteration_overhead_ns: 24_000.0,
            global_sync_ns: 6000.0,
        }
    }

    /// Warps per block.
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block.div_ceil(self.warp_size)
    }

    /// Per-SM share of the device bandwidth, bytes/second.
    pub fn sm_bandwidth_bytes_s(&self) -> f64 {
        self.mem_bandwidth_gb_s * 1e9 / self.num_sms as f64
    }

    /// Convert core cycles to seconds.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_preset_matches_paper() {
        let d = DeviceConfig::gtx_titan();
        assert_eq!(d.num_sms, 14);
        assert!((d.clock_ghz - 0.837).abs() < 1e-12);
        assert_eq!(d.global_mem_bytes, 6 * 1024 * 1024 * 1024);
    }

    #[test]
    fn m2090_preset_matches_paper() {
        let d = DeviceConfig::tesla_m2090();
        assert_eq!(d.num_sms, 16);
        assert!((d.clock_ghz - 1.3).abs() < 1e-12);
    }

    #[test]
    fn derived_quantities() {
        let d = DeviceConfig::gtx_titan();
        assert_eq!(d.warps_per_block(), 8);
        let bw = d.sm_bandwidth_bytes_s();
        assert!((bw - 288.4e9 / 14.0).abs() / bw < 1e-12);
        assert!((d.cycles_to_seconds(0.837e9) - 1.0).abs() < 1e-12);
    }
}
