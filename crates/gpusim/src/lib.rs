//! # bc-gpusim — a SIMT GPU execution-model simulator
//!
//! The paper's algorithms run on CUDA GPUs; this workspace has none,
//! so the GPU is *simulated*: algorithms execute functionally on the
//! host (producing exact results) while reporting their work to this
//! crate's timing model, which prices it the way the real hardware
//! would — SIMT lockstep divergence, coalesced vs. scattered DRAM
//! traffic, atomic contention, per-iteration synchronization, and a
//! finite device memory. DESIGN.md §2 and §5 explain why this
//! preserves the paper's comparisons.
//!
//! Components:
//! * [`DeviceConfig`] — architectural parameters; presets for the
//!   paper's GTX Titan and Tesla M2090;
//! * [`warp`] — lockstep step counting for round-robin and balanced
//!   work distributions;
//! * [`IterationWork`] / [`KernelCounters`] — per-iteration work
//!   records and their accumulation;
//! * [`DeviceMemory`] — allocation tracking with faithful
//!   out-of-memory failures;
//! * [`coarse_grained_makespan`] — the strided block-to-root schedule
//!   used by coarse-grained BC kernels;
//! * [`trace`] — logical per-thread memory-access events behind the
//!   zero-cost-when-disabled [`trace::TraceSink`] trait, consumed by
//!   the `bc-verify` race detector;
//! * [`fault`] — deterministic fault-injection hooks ([`FaultHook`])
//!   through which a scheduler receives simulated transient faults,
//!   device losses, OOMs, and worker panics, consumed by the
//!   fault-tolerant cluster runner.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod device;
mod error;
pub mod fault;
mod kernel;
mod memory;
mod timing;
pub mod trace;
pub mod warp;

pub use device::DeviceConfig;
pub use error::SimError;
pub use fault::{FaultHook, NoFaults};
pub use kernel::{counter_add, KernelCounters};
pub use memory::{distinct_line_transactions, Allocation, DeviceMemory};
pub use timing::{coarse_grained_makespan, IterationWork};
