//! Per-kernel accounting: what a simulated BC kernel did and what it
//! cost.

use crate::device::DeviceConfig;
use crate::timing::IterationWork;
use serde::{Deserialize, Serialize};

/// Checked counter accumulation: `acc += delta` that panics on u64
/// overflow instead of wrapping. Work counters feed efficiency
/// ratios, TEPS figures, and trace cross-checks; a silent wrap on the
/// planned 10–100x graphs would corrupt all three while looking like
/// a plausible small number.
pub fn counter_add(acc: &mut u64, delta: u64, what: &str) {
    *acc = acc
        .checked_add(delta)
        .unwrap_or_else(|| panic!("{what} counter overflows u64"));
}

/// Accumulated statistics for a simulated kernel execution (one root,
/// or a whole run — the struct is additive).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelCounters {
    /// Search iterations executed (BFS levels + accumulation levels).
    pub iterations: u64,
    /// Edge inspections that advanced the algorithm (frontier edges).
    pub useful_edge_inspections: u64,
    /// Edge inspections performed on non-frontier edges (the wasted
    /// work of vertex-/edge-parallel traversals, §III-A).
    pub wasted_edge_inspections: u64,
    /// Vertex status checks on non-frontier vertices.
    pub wasted_vertex_checks: u64,
    /// SIMT lockstep steps issued.
    pub warp_steps: u64,
    /// Coalesced bytes moved.
    pub coalesced_bytes: u64,
    /// Independent random accesses performed.
    pub random_accesses: u64,
    /// Dependent scattered gathers performed.
    pub scattered_accesses: u64,
    /// Bitmap probes performed (bottom-up frontier checks).
    pub bitmap_accesses: u64,
    /// Atomic operations (including contended ones).
    pub atomics: u64,
    /// Simulated block-seconds consumed.
    pub seconds: f64,
}

impl KernelCounters {
    /// Record one iteration's work and its price on `device`.
    pub fn charge(&mut self, device: &DeviceConfig, work: &IterationWork) {
        counter_add(&mut self.iterations, 1, "iterations");
        counter_add(&mut self.warp_steps, work.warp_steps, "warp_steps");
        counter_add(
            &mut self.coalesced_bytes,
            work.coalesced_bytes,
            "coalesced_bytes",
        );
        counter_add(
            &mut self.random_accesses,
            work.random_accesses,
            "random_accesses",
        );
        counter_add(
            &mut self.scattered_accesses,
            work.scattered_accesses,
            "scattered_accesses",
        );
        counter_add(
            &mut self.bitmap_accesses,
            work.bitmap_accesses,
            "bitmap_accesses",
        );
        counter_add(
            &mut self.atomics,
            work.atomics
                .checked_add(work.contended_atomics)
                .expect("atomics counter overflows u64"),
            "atomics",
        );
        self.seconds += device.block_iteration_seconds(work);
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &KernelCounters) {
        counter_add(&mut self.iterations, other.iterations, "iterations");
        counter_add(
            &mut self.useful_edge_inspections,
            other.useful_edge_inspections,
            "useful_edge_inspections",
        );
        counter_add(
            &mut self.wasted_edge_inspections,
            other.wasted_edge_inspections,
            "wasted_edge_inspections",
        );
        counter_add(
            &mut self.wasted_vertex_checks,
            other.wasted_vertex_checks,
            "wasted_vertex_checks",
        );
        counter_add(&mut self.warp_steps, other.warp_steps, "warp_steps");
        counter_add(
            &mut self.coalesced_bytes,
            other.coalesced_bytes,
            "coalesced_bytes",
        );
        counter_add(
            &mut self.random_accesses,
            other.random_accesses,
            "random_accesses",
        );
        counter_add(
            &mut self.scattered_accesses,
            other.scattered_accesses,
            "scattered_accesses",
        );
        counter_add(
            &mut self.bitmap_accesses,
            other.bitmap_accesses,
            "bitmap_accesses",
        );
        counter_add(&mut self.atomics, other.atomics, "atomics");
        self.seconds += other.seconds;
    }

    /// Total edge inspections, useful or not.
    pub fn total_edge_inspections(&self) -> u64 {
        self.useful_edge_inspections
            .checked_add(self.wasted_edge_inspections)
            .expect("edge inspection total overflows u64")
    }

    /// Fraction of edge inspections that were useful (1.0 when no
    /// waste). Returns 1.0 for zero work.
    pub fn work_efficiency(&self) -> f64 {
        let total = self.total_edge_inspections();
        if total == 0 {
            1.0
        } else {
            self.useful_edge_inspections as f64 / total as f64
        }
    }

    /// Simulated kernel launches: the engine issues one launch per
    /// processed level, so this is the iteration count.
    pub fn kernel_launches(&self) -> u64 {
        self.iterations
    }

    /// Mean fraction of `device`'s warp lanes doing useful work per
    /// lockstep step: inspections (edges plus wasted vertex checks)
    /// over the lanes the issued steps could have filled. Returns
    /// 0.0 when no steps were issued; capped at 1.0 — inspection
    /// counting is coarser than the warp scheduler, so a fully packed
    /// warp can appear to exceed its lane budget.
    pub fn warp_efficiency(&self, device: &DeviceConfig) -> f64 {
        let lanes = self.warp_steps * device.warp_size as u64;
        if lanes == 0 {
            return 0.0;
        }
        let useful = self.total_edge_inspections() + self.wasted_vertex_checks;
        (useful as f64 / lanes as f64).min(1.0)
    }

    /// Modeled DRAM transactions on `device`: coalesced bytes divided
    /// into full-width transactions, plus one narrow transaction per
    /// random/scattered access and per 32-probe bitmap word burst.
    pub fn memory_transactions(&self, device: &DeviceConfig) -> u64 {
        let coalesced = self
            .coalesced_bytes
            .div_ceil(device.coalesced_tx_bytes.max(1) as u64);
        let bitmap_words = self.bitmap_accesses.div_ceil(32);
        coalesced + self.random_accesses + self.scattered_accesses + bitmap_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_and_prices() {
        let d = DeviceConfig::gtx_titan();
        let mut k = KernelCounters::default();
        let w = IterationWork {
            warp_steps: 100,
            coalesced_bytes: 64,
            ..Default::default()
        };
        k.charge(&d, &w);
        k.charge(&d, &w);
        assert_eq!(k.iterations, 2);
        assert_eq!(k.warp_steps, 200);
        assert_eq!(k.coalesced_bytes, 128);
        assert!(k.seconds > 0.0);
        let per_iter = d.block_iteration_seconds(&w);
        assert!((k.seconds - 2.0 * per_iter).abs() < 1e-15);
    }

    #[test]
    fn efficiency_math() {
        let mut k = KernelCounters::default();
        assert_eq!(k.work_efficiency(), 1.0);
        k.useful_edge_inspections = 25;
        k.wasted_edge_inspections = 75;
        assert_eq!(k.total_edge_inspections(), 100);
        assert!((k.work_efficiency() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hardware_stat_helpers() {
        let d = DeviceConfig::gtx_titan();
        let k = KernelCounters::default();
        assert_eq!(k.warp_efficiency(&d), 0.0);
        assert_eq!(k.memory_transactions(&d), 0);
        assert_eq!(k.kernel_launches(), 0);

        let k = KernelCounters {
            iterations: 3,
            useful_edge_inspections: 40,
            wasted_edge_inspections: 8,
            wasted_vertex_checks: 16,
            warp_steps: 4,
            coalesced_bytes: 300,
            random_accesses: 5,
            scattered_accesses: 7,
            bitmap_accesses: 65,
            ..Default::default()
        };
        assert_eq!(k.kernel_launches(), 3);
        // 64 useful inspections over 4 × 32 = 128 lanes.
        assert!((k.warp_efficiency(&d) - 0.5).abs() < 1e-12);
        // ceil(300/128) + 5 + 7 + ceil(65/32) = 3 + 12 + 3.
        assert_eq!(k.memory_transactions(&d), 18);
        // A packed warp never reports above 1.0.
        let dense = KernelCounters {
            useful_edge_inspections: 1000,
            warp_steps: 1,
            ..Default::default()
        };
        assert_eq!(dense.warp_efficiency(&d), 1.0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = KernelCounters {
            iterations: 1,
            useful_edge_inspections: 2,
            wasted_edge_inspections: 3,
            wasted_vertex_checks: 4,
            warp_steps: 5,
            coalesced_bytes: 6,
            random_accesses: 2,
            scattered_accesses: 7,
            bitmap_accesses: 11,
            atomics: 8,
            seconds: 9.0,
        };
        a.merge(&a.clone());
        assert_eq!(a.iterations, 2);
        assert_eq!(a.atomics, 16);
        assert!((a.seconds - 18.0).abs() < 1e-12);
    }
}
