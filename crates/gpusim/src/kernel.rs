//! Per-kernel accounting: what a simulated BC kernel did and what it
//! cost.

use crate::device::DeviceConfig;
use crate::timing::IterationWork;
use serde::{Deserialize, Serialize};

/// Accumulated statistics for a simulated kernel execution (one root,
/// or a whole run — the struct is additive).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelCounters {
    /// Search iterations executed (BFS levels + accumulation levels).
    pub iterations: u64,
    /// Edge inspections that advanced the algorithm (frontier edges).
    pub useful_edge_inspections: u64,
    /// Edge inspections performed on non-frontier edges (the wasted
    /// work of vertex-/edge-parallel traversals, §III-A).
    pub wasted_edge_inspections: u64,
    /// Vertex status checks on non-frontier vertices.
    pub wasted_vertex_checks: u64,
    /// SIMT lockstep steps issued.
    pub warp_steps: u64,
    /// Coalesced bytes moved.
    pub coalesced_bytes: u64,
    /// Independent random accesses performed.
    pub random_accesses: u64,
    /// Dependent scattered gathers performed.
    pub scattered_accesses: u64,
    /// Bitmap probes performed (bottom-up frontier checks).
    pub bitmap_accesses: u64,
    /// Atomic operations (including contended ones).
    pub atomics: u64,
    /// Simulated block-seconds consumed.
    pub seconds: f64,
}

impl KernelCounters {
    /// Record one iteration's work and its price on `device`.
    pub fn charge(&mut self, device: &DeviceConfig, work: &IterationWork) {
        self.iterations += 1;
        self.warp_steps += work.warp_steps;
        self.coalesced_bytes += work.coalesced_bytes;
        self.random_accesses += work.random_accesses;
        self.scattered_accesses += work.scattered_accesses;
        self.bitmap_accesses += work.bitmap_accesses;
        self.atomics += work.atomics + work.contended_atomics;
        self.seconds += device.block_iteration_seconds(work);
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &KernelCounters) {
        self.iterations += other.iterations;
        self.useful_edge_inspections += other.useful_edge_inspections;
        self.wasted_edge_inspections += other.wasted_edge_inspections;
        self.wasted_vertex_checks += other.wasted_vertex_checks;
        self.warp_steps += other.warp_steps;
        self.coalesced_bytes += other.coalesced_bytes;
        self.random_accesses += other.random_accesses;
        self.scattered_accesses += other.scattered_accesses;
        self.bitmap_accesses += other.bitmap_accesses;
        self.atomics += other.atomics;
        self.seconds += other.seconds;
    }

    /// Total edge inspections, useful or not.
    pub fn total_edge_inspections(&self) -> u64 {
        self.useful_edge_inspections + self.wasted_edge_inspections
    }

    /// Fraction of edge inspections that were useful (1.0 when no
    /// waste). Returns 1.0 for zero work.
    pub fn work_efficiency(&self) -> f64 {
        let total = self.total_edge_inspections();
        if total == 0 {
            1.0
        } else {
            self.useful_edge_inspections as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_and_prices() {
        let d = DeviceConfig::gtx_titan();
        let mut k = KernelCounters::default();
        let w = IterationWork {
            warp_steps: 100,
            coalesced_bytes: 64,
            ..Default::default()
        };
        k.charge(&d, &w);
        k.charge(&d, &w);
        assert_eq!(k.iterations, 2);
        assert_eq!(k.warp_steps, 200);
        assert_eq!(k.coalesced_bytes, 128);
        assert!(k.seconds > 0.0);
        let per_iter = d.block_iteration_seconds(&w);
        assert!((k.seconds - 2.0 * per_iter).abs() < 1e-15);
    }

    #[test]
    fn efficiency_math() {
        let mut k = KernelCounters::default();
        assert_eq!(k.work_efficiency(), 1.0);
        k.useful_edge_inspections = 25;
        k.wasted_edge_inspections = 75;
        assert_eq!(k.total_edge_inspections(), 100);
        assert!((k.work_efficiency() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = KernelCounters {
            iterations: 1,
            useful_edge_inspections: 2,
            wasted_edge_inspections: 3,
            wasted_vertex_checks: 4,
            warp_steps: 5,
            coalesced_bytes: 6,
            random_accesses: 2,
            scattered_accesses: 7,
            bitmap_accesses: 11,
            atomics: 8,
            seconds: 9.0,
        };
        a.merge(&a.clone());
        assert_eq!(a.iterations, 2);
        assert_eq!(a.atomics, 16);
        assert!((a.seconds - 18.0).abs() < 1e-12);
    }
}
