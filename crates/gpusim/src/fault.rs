//! Fault-injection hooks.
//!
//! The simulator executes functionally on a host that does not fail,
//! so device faults — the dominant operational reality of multi-GPU
//! clusters like the paper's 192-GPU Keeneland runs — have to be
//! *injected*. This module defines the hook the per-root execution
//! layers consult before every attempt at a unit of work; a scheduler
//! that wants fault tolerance implements [`FaultHook`] with a seeded,
//! deterministic plan (see `bc_cluster::fault::FaultPlan`) and reacts
//! to the injected [`SimError`]s exactly as it would react to real
//! ones: retry, reassign, or fail structurally.
//!
//! Hooks are allowed to **panic** as a fault mode: a panicking hook
//! models a worker thread dying mid-kernel, and the calling scheduler
//! is expected to contain it with `std::panic::catch_unwind` rather
//! than letting the process die.

use crate::error::SimError;

/// Decides, deterministically, whether a given attempt at a unit of
/// work faults.
///
/// `worker` identifies the executing device/thread, `unit` the work
/// item (a BC root id in this workspace), and `attempt` is 1-based.
/// Implementations must be pure with respect to these keys: the same
/// `(worker, unit, attempt)` triple must always produce the same
/// outcome, so a run's fault schedule is independent of thread
/// timing and can be replayed or precomputed.
pub trait FaultHook: Send + Sync {
    /// Consulted before attempt `attempt` of `unit` on `worker`.
    ///
    /// Returns `Ok(())` to let the attempt proceed, `Err` to inject a
    /// fault, or panics to inject a worker death (which the caller
    /// must contain).
    fn before_attempt(&self, worker: usize, unit: u32, attempt: u32) -> Result<(), SimError>;

    /// Would `worker` blow a per-unit deadline of `factor` × the
    /// unit's expected time? Watchdog schedulers consult this to
    /// cancel-and-migrate work away from hung or pathologically slow
    /// workers instead of awaiting them. Like
    /// [`FaultHook::before_attempt`], implementations must be pure in
    /// their keys. Defaults to "never" so plain hooks need no
    /// watchdog awareness.
    fn deadline_exceeded(&self, worker: usize, factor: f64) -> bool {
        let _ = (worker, factor);
        false
    }
}

/// The no-op hook: nothing ever faults.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    fn before_attempt(&self, _worker: usize, _unit: u32, _attempt: u32) -> Result<(), SimError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_always_ok() {
        for attempt in 1..5 {
            assert!(NoFaults.before_attempt(0, 7, attempt).is_ok());
        }
    }

    #[test]
    fn transient_is_retryable_and_others_are_not() {
        let t = SimError::TransientFault {
            what: "kernel launch".into(),
            attempt: 1,
        };
        assert!(t.is_transient());
        let lost = SimError::DeviceLost {
            device: 3,
            what: "root 17".into(),
        };
        assert!(!lost.is_transient());
        let p = SimError::WorkerPanic {
            worker: 1,
            what: "boom".into(),
        };
        assert!(!p.is_transient());
        assert!(format!("{t}").contains("retryable"));
        assert!(format!("{lost}").contains("device 3"));
        assert!(format!("{p}").contains("worker 1"));
    }
}
