//! `bc-verify` — the full verification suite.
//!
//! Stages:
//! 1. **Seeded-bug self-test** — the race detector must flag the
//!    deliberately broken atomic-free predecessor-style accumulation
//!    *and* the bottom-up pull kernel whose `F_next` announcement
//!    drops its word-granular `atomicOr`, and must pass the atomic
//!    variants plus the engine's real kernels on the same graphs. A
//!    detector that cannot find a planted race proves nothing by
//!    staying silent.
//! 2. **Dataset sweep** — every Table II analogue: CSR
//!    well-formedness, then traced replay of several roots (race
//!    detection, structural invariants, priced-vs-traced atomics)
//!    under both the push model and the direction-optimizing model
//!    (whose saturated levels run the bottom-up kernel).
//! 3. **Exact-score identities** — small all-roots runs checked
//!    against the Brandes pair-sum identity.
//! 4. **Fault-tolerance equivalence** — the cluster runner under a
//!    battery of seeded fault plans (retries, contained panics, GPU
//!    deaths, stragglers, lossy reduces) must return scores bitwise
//!    identical to the fault-free run, and an unrecoverable plan must
//!    fail structurally, never via a process panic.
//! 5. **Metrics ↔ trace cross-check** — every Table II analogue again,
//!    this time with the `bc_metrics` recorder and the trace recorder
//!    attached to the same search: each exported counter (edges
//!    inspected, CAS attempts/wins, σ-updates, priced atomics, frontier
//!    sizes) must equal the corresponding access-event count in the
//!    kernel trace, level by level, under both the push model and the
//!    direction-optimizing automaton.
//! 6. **Relabel equivalence** — degree-ordered relabeling must be
//!    bitwise invisible across directions, threads, schedules, and
//!    methods.
//! 7. **Checkpoint/resume equivalence** — the durable cluster runner
//!    killed at seeded early/mid/late points under every schedule ×
//!    traversal combination (a recoverable fault plan layered on) and
//!    resumed from its checkpoint must reproduce the uninterrupted
//!    scores bitwise; corrupted, mismatched, and stale checkpoints
//!    must be rejected structurally; and the graceful-degradation
//!    ladder must partition (bitwise) and sample (bounded error) as
//!    claimed.
//! 8. **Serving equivalence** — seeded random query streams (with
//!    interleaved edge edits) through the batched, epoch-cached
//!    `bc-serve` layer must answer bitwise identically to per-query
//!    cold recomputes on the shadow-edited graph, across 3 schedules
//!    × push/pull/auto × 1/2/4 threads on every dataset analogue; a
//!    server seeded with the `SkipEpochBump` stale-cache mutation
//!    must serve detectably stale scores. Stage 5 additionally
//!    replays a serving workload twice and holds the emitted serve
//!    rows to bitwise equality and balanced accounting.
//!
//! Exit status is non-zero if any stage fails.

#![forbid(unsafe_code)]

use bc_core::engine::{process_root, FreeModel, SearchWorkspace};
use bc_core::{DirectionOptimizingModel, TraversalMode};
use bc_gpusim::DeviceConfig;
use bc_graph::{gen, Csr, DatasetId};
use bc_verify::trace::{predecessor_accumulation_trace, pull_bitmap_trace};
use bc_verify::{
    check_csr, check_pair_sum, check_scores, check_trace, verify_root, verify_root_with,
};
use std::process::ExitCode;

struct Options {
    reduction: u32,
    roots: usize,
    seed: u64,
}

const USAGE: &str = "bc-verify: race-detect and invariant-check the simulated BC kernels

USAGE:
    bc-verify [--reduction N] [--roots N] [--seed N]

OPTIONS:
    --reduction N   Dataset size reduction in powers of two [default: 8]
    --roots N       Traced roots per dataset [default: 4]
    --seed N        Generator seed [default: 42]
    -h, --help      Print this help
";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        reduction: 8,
        roots: 4,
        seed: 42,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--reduction" => {
                opts.reduction = value("--reduction")?
                    .parse()
                    .map_err(|e| format!("--reduction: {e}"))?;
            }
            "--roots" => {
                opts.roots = value("--roots")?
                    .parse()
                    .map_err(|e| format!("--roots: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.roots == 0 {
        return Err("--roots must be at least 1".into());
    }
    Ok(opts)
}

/// Stage 1: the planted race. Returns the number of failures.
fn seeded_bug_self_test(device: &DeviceConfig) -> usize {
    let mut failures = 0;
    let graphs: Vec<(&str, Csr)> = vec![
        ("grid(8,8)", gen::grid(8, 8)),
        ("erdos_renyi(200,600)", gen::erdos_renyi(200, 600, 9)),
        ("watts_strogatz(150,6)", gen::watts_strogatz(150, 6, 0.1, 4)),
    ];
    for (name, g) in &graphs {
        let mut ws = SearchWorkspace::new(g.num_vertices());
        let mut bc = vec![0.0; g.num_vertices()];
        process_root(g, 0, device, &mut ws, &mut FreeModel, &mut bc);

        let broken = check_trace(&predecessor_accumulation_trace(g, &ws, false));
        if broken.is_empty() {
            println!("FAIL seeded-bug {name}: atomic-free predecessor accumulation NOT flagged");
            failures += 1;
        } else {
            println!(
                "ok   seeded-bug {name}: broken accumulation flagged ({} racy cells, e.g. {})",
                broken.len(),
                broken[0]
            );
        }

        let fixed = check_trace(&predecessor_accumulation_trace(g, &ws, true));
        if !fixed.is_empty() {
            println!(
                "FAIL seeded-bug {name}: atomicAdd accumulation wrongly flagged: {}",
                fixed[0]
            );
            failures += 1;
        }

        let real = verify_root(g, 0, device);
        if !real.is_clean() {
            println!(
                "FAIL seeded-bug {name}: successor-based sweep not clean: {:?} {:?}",
                real.races, real.violations
            );
            failures += 1;
        }

        // The pull kernel's planted bug: dropping the atomicOr on
        // the shared F_next words must be flagged, the real
        // word-granular atomic variant must pass.
        let broken_pull = check_trace(&pull_bitmap_trace(g, &ws, false));
        if broken_pull.is_empty() {
            println!("FAIL seeded-bug {name}: plain F_next bitmap update NOT flagged");
            failures += 1;
        } else {
            println!(
                "ok   seeded-bug {name}: broken pull announcement flagged ({} racy words, e.g. {})",
                broken_pull.len(),
                broken_pull[0]
            );
        }
        let fixed_pull = check_trace(&pull_bitmap_trace(g, &ws, true));
        if !fixed_pull.is_empty() {
            println!(
                "FAIL seeded-bug {name}: atomicOr pull announcement wrongly flagged: {}",
                fixed_pull[0]
            );
            failures += 1;
        }
    }
    failures
}

/// Stage 2: the dataset sweep. Returns the number of failures.
fn dataset_sweep(opts: &Options, device: &DeviceConfig) -> usize {
    let mut failures = 0;
    for d in DatasetId::ALL {
        let g = d.generate(opts.reduction, opts.seed);
        let n = g.num_vertices();
        let csr = check_csr(&g);
        if !csr.is_empty() {
            for v in &csr {
                println!("FAIL {}: {v}", d.name());
            }
            failures += csr.len();
            continue;
        }
        // Deterministic spread of roots across the id space, each
        // replayed under the push model and under the
        // direction-optimizing automaton (which race-checks the
        // bottom-up kernel wherever frontiers saturate).
        let mut races = 0;
        let mut violations = 0;
        let mut events = 0u64;
        for i in 0..opts.roots {
            let root = ((i * n) / opts.roots) as u32;
            let push = verify_root(&g, root, device);
            let auto = verify_root_with(
                &g,
                root,
                device,
                DirectionOptimizingModel::new(TraversalMode::Auto),
            );
            for v in [&push, &auto] {
                races += v.races.len();
                violations += v.violations.len();
                events += v.events;
                for r in &v.races {
                    println!("FAIL {} root {root}: {r}", d.name());
                }
                for viol in &v.violations {
                    println!("FAIL {} root {root}: {viol}", d.name());
                }
            }
        }
        if races + violations == 0 {
            println!(
                "ok   {:<18} n={:<7} 2m={:<8} roots={} events={} (push+auto)",
                d.name(),
                n,
                g.num_directed_edges(),
                opts.roots,
                events
            );
        } else {
            failures += races + violations;
        }
    }
    failures
}

/// Stage 3: exact all-roots runs against the pair-sum identity.
fn exact_identity_checks(device: &DeviceConfig) -> usize {
    let mut failures = 0;
    let graphs: Vec<(&str, Csr)> = vec![
        ("path(32)", gen::path(32)),
        ("grid(8,6)", gen::grid(8, 6)),
        ("erdos_renyi(120,400)", gen::erdos_renyi(120, 400, 17)),
    ];
    for (name, g) in &graphs {
        let mut ws = SearchWorkspace::new(g.num_vertices());
        let mut bc = vec![0.0; g.num_vertices()];
        for r in g.vertices() {
            process_root(g, r, device, &mut ws, &mut FreeModel, &mut bc);
        }
        if g.is_symmetric() {
            for b in bc.iter_mut() {
                *b *= 0.5;
            }
        }
        let mut bad = check_scores(&bc);
        bad.extend(check_pair_sum(g, &bc));
        if bad.is_empty() {
            println!("ok   exact-scores {name}: pair-sum identity holds");
        } else {
            for v in &bad {
                println!("FAIL exact-scores {name}: {v}");
            }
            failures += bad.len();
        }
    }
    failures
}

/// Stage 4: fault/fault-free bitwise equivalence on the cluster
/// runner, plus structured (non-panicking) failure for an
/// unrecoverable plan. Returns the number of failures.
fn fault_tolerance_checks(seed: u64) -> usize {
    use bc_cluster::{run_cluster_with_faults, ClusterConfig, ClusterError, FaultPlan};
    let mut failures = 0;
    let graphs: Vec<(&str, Csr)> = vec![
        ("watts_strogatz(200,6)", gen::watts_strogatz(200, 6, 0.1, 6)),
        ("grid(16,16)", gen::grid(16, 16)),
    ];
    let plans = bc_verify::recoverable_plans(seed);
    for (name, g) in &graphs {
        for nodes in [2usize, 4] {
            let cfg = ClusterConfig::keeneland(nodes);
            let violations = bc_verify::check_fault_equivalence(g, &cfg, 32, &plans);
            if violations.is_empty() {
                println!(
                    "ok   fault-equiv {name} nodes={nodes}: {} plan(s) bitwise identical",
                    plans.len()
                );
            } else {
                for v in &violations {
                    println!("FAIL fault-equiv {name} nodes={nodes}: {v}");
                }
                failures += violations.len();
            }
        }
    }
    // An unrecoverable plan must come back as a structured error
    // carrying the partial result — not a panic, not a clean exit.
    let g = gen::grid(12, 12);
    let plan = FaultPlan {
        dead_gpus: (0..6).collect(),
        death_fraction: 0.5,
        ..FaultPlan::none()
    };
    match run_cluster_with_faults(&g, &ClusterConfig::keeneland(2), 24, &plan) {
        Err(ClusterError::AllGpusLost {
            completed_roots, ..
        }) if completed_roots > 0 => {
            println!(
                "ok   fault-unrecoverable: all-GPUs-dead surfaced structurally \
                 ({completed_roots} roots completed before the losses)"
            );
        }
        other => {
            println!(
                "FAIL fault-unrecoverable: expected AllGpusLost with partial progress, got {:?}",
                other.map(|r| r.report.roots_sampled)
            );
            failures += 1;
        }
    }
    failures
}

/// Stage 5: the metrics counters against the kernel trace, over the
/// full dataset battery. Returns the number of failures.
fn metrics_cross_checks(opts: &Options, device: &DeviceConfig) -> usize {
    use bc_core::methods::models::WorkEfficientModel;
    let mut failures = 0;
    for d in DatasetId::ALL {
        let g = d.generate(opts.reduction, opts.seed);
        let n = g.num_vertices();
        let mut violations = 0;
        let mut levels = 0usize;
        for i in 0..opts.roots {
            let root = ((i * n) / opts.roots) as u32;
            let push =
                bc_verify::check_root_metrics(&g, root, device, WorkEfficientModel::default());
            let auto = bc_verify::check_root_metrics(
                &g,
                root,
                device,
                DirectionOptimizingModel::new(TraversalMode::Auto),
            );
            for c in [&push, &auto] {
                violations += c.violations.len();
                levels += c.levels;
                for v in &c.violations {
                    println!("FAIL {} root {root}: {v}", d.name());
                }
            }
        }
        if violations == 0 {
            println!(
                "ok   {:<18} n={:<7} roots={} levels={} counters == trace (push+auto)",
                d.name(),
                n,
                opts.roots,
                levels
            );
        } else {
            failures += violations;
        }
    }
    failures
}

/// Stage 5 (continued): scheduled-run replay. Each dynamic schedule
/// runs the metered solver at 4 threads and must reproduce the static
/// run's scores and per-root metrics stream bitwise, and its
/// per-worker records must replay cleanly against shard geometry
/// (partition exact, root counts re-derived, steal counters only
/// where stealing is allowed). Returns the number of failures.
fn schedule_replay_checks(device: &DeviceConfig) -> usize {
    use bc_core::{BcOptions, Method, RootSelection, Schedule};
    let mut failures = 0;
    let g = gen::watts_strogatz(512, 6, 0.1, 23);
    let run = |schedule: Schedule| {
        let opts = BcOptions {
            device: device.clone(),
            roots: RootSelection::Strided(256),
            normalize: false,
            threads: 4,
            traversal: TraversalMode::Auto,
            schedule,
            partition: Default::default(),
        };
        Method::Sampling(Default::default()).run_metered(&g, &opts)
    };
    let (base_run, base_metrics) = match run(Schedule::Static) {
        Ok(out) => out,
        Err(e) => {
            println!("FAIL schedule-replay static: {e}");
            return 1;
        }
    };
    for schedule in [Schedule::Guided, Schedule::WorkStealing] {
        let (r, m) = match run(schedule) {
            Ok(out) => out,
            Err(e) => {
                println!("FAIL schedule-replay {schedule}: {e}");
                failures += 1;
                continue;
            }
        };
        let mut bad = 0;
        if r.scores != base_run.scores {
            println!("FAIL schedule-replay {schedule}: scores differ from the static run");
            bad += 1;
        }
        if m.per_root != base_metrics.per_root {
            println!(
                "FAIL schedule-replay {schedule}: per-root metrics stream differs from static"
            );
            bad += 1;
        }
        let violations = bc_verify::check_worker_metrics(&m.per_worker);
        for v in &violations {
            println!("FAIL schedule-replay {schedule}: {v}");
        }
        bad += violations.len();
        failures += bad;
        if bad == 0 {
            let steals: u64 = m.per_worker.iter().map(|w| w.steals).sum();
            println!(
                "ok   schedule-replay {schedule}: scores + per-root stream bitwise identical \
                 to static; {} worker record(s) replay cleanly ({steals} steal(s))",
                m.per_worker.len()
            );
        }
    }
    failures
}

/// Stage-5 extension: serve rows are replayable observations. Runs
/// an identical serving workload twice and holds the emitted rows to
/// bitwise equality plus the per-row accounting invariants
/// (`hits + misses == requested_roots`, stored latency is exactly
/// `completed - arrival`, dense sequence numbers, monotone batch
/// starts).
fn serve_row_replay_checks(seed: u64) -> usize {
    use bc_serve::{BcServer, ServeConfig};
    let g = gen::watts_strogatz(256, 6, 0.1, seed);
    let events = bc_verify::serve_stream(&g, 12, 3, seed);
    let run = |events: Vec<bc_serve::Event>| {
        let mut server = BcServer::single(g.clone(), ServeConfig::default());
        server.run(events).map(|out| out.rows)
    };
    let (rows, replay) = match (run(events.clone()), run(events)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            println!("FAIL serve-rows: workload run failed: {e}");
            return 1;
        }
    };
    let violations = bc_verify::check_serve_rows(&rows, &replay);
    for v in &violations {
        println!("FAIL serve-rows: {v}");
    }
    if violations.is_empty() {
        println!(
            "ok   serve-rows: {} rows replay bitwise with balanced cache/latency accounting",
            rows.len()
        );
    }
    violations.len()
}

/// Stage 6: degree-ordered relabeling must be invisible bitwise. Runs
/// the full direction × thread × schedule battery on a scale-free
/// analogue (where DegreeDesc genuinely permutes) plus a single-config
/// sweep over every method.
fn relabel_equivalence_checks(seed: u64) -> usize {
    use bc_core::{BcOptions, Method, RootSelection};
    let mut failures = 0;

    let scale_free = gen::barabasi_albert(2000, 5, seed);
    let bad = bc_verify::relabel_battery(
        &scale_free,
        &Method::WorkEfficient,
        RootSelection::Strided(32),
    );
    for v in bad.iter().take(8) {
        println!("FAIL relabel battery: {v}");
    }
    failures += bad.len();
    if bad.is_empty() {
        println!(
            "ok   relabel battery: work-efficient bitwise identical under DegreeDesc \
             across push/pull/auto x 1/2/4 threads x 3 schedules"
        );
    }

    for method in Method::all() {
        let opts = BcOptions {
            roots: RootSelection::Strided(16),
            ..Default::default()
        };
        let bad = bc_verify::check_relabel_equivalence(&scale_free, &method, &opts);
        for v in bad.iter().take(4) {
            println!("FAIL relabel {}: {v}", method.name());
        }
        failures += bad.len();
        if bad.is_empty() {
            println!("ok   relabel {}: scores bitwise identical", method.name());
        }
    }
    failures
}

/// Stage 7: checkpoint/resume equivalence, checkpoint tamper
/// rejection, and the graceful-degradation ladder. Returns the number
/// of failures.
fn durability_checks(seed: u64) -> usize {
    use bc_cluster::ClusterConfig;
    use bc_core::Method;
    let mut failures = 0;

    let g = gen::watts_strogatz(180, 6, 0.1, 19);
    let cfg = ClusterConfig {
        method: Method::WorkEfficient,
        ..ClusterConfig::keeneland(2)
    };
    let violations = bc_verify::check_checkpoint_equivalence(&g, &cfg, 24, seed);
    if violations.is_empty() {
        println!(
            "ok   ckpt-equiv: {} kill point(s) x 3 schedules x 3 traversals resumed bitwise",
            bc_verify::kill_points().len()
        );
    } else {
        for v in &violations {
            println!("FAIL ckpt-equiv: {v}");
        }
        failures += violations.len();
    }

    let violations = bc_verify::check_checkpoint_rejection(&g, &cfg, 12);
    if violations.is_empty() {
        println!("ok   ckpt-reject: corrupted, mismatched, and stale checkpoints all rejected");
    } else {
        for v in &violations {
            println!("FAIL ckpt-reject: {v}");
        }
        failures += violations.len();
    }

    let ladder_g = gen::kronecker(11, 8, 4);
    let ladder_cfg = ClusterConfig {
        method: Method::WorkEfficient,
        ..ClusterConfig::keeneland(1)
    };
    let violations = bc_verify::check_degradation_ladder(&ladder_g, &ladder_cfg, 16);
    if violations.is_empty() {
        println!("ok   ckpt-ladder: partition rung bitwise, sampled rung bounded and reported");
    } else {
        for v in &violations {
            println!("FAIL ckpt-ladder: {v}");
        }
        failures += violations.len();
    }
    failures
}

/// Stage 8: serving equivalence. Every dataset analogue gets a
/// seeded random query stream (with interleaved edge edits) served
/// through the batched, cached `bc-serve` layer under 3 schedules ×
/// push/pull/auto × 1/2/4 threads; every response must equal a cold
/// per-query recompute on the shadow-edited graph bitwise. A server
/// seeded with the `SkipEpochBump` stale-cache mutation must be
/// flagged on every dataset.
fn serving_checks(opts: &Options) -> usize {
    let mut failures = 0;
    for id in DatasetId::ALL {
        let g = id.generate(opts.reduction, opts.seed);
        let bad = bc_verify::check_serving_equivalence(&g, 6, 2, opts.seed);
        for v in bad.iter().take(8) {
            println!("FAIL serve {}: {v}", id.name());
        }
        failures += bad.len();
        if bad.is_empty() {
            println!(
                "ok   serve {}: batched+cached responses bitwise equal cold recompute \
                 across 3 schedules x push/pull/auto x 1/2/4 threads (edits interleaved)",
                id.name()
            );
        }

        let bad = bc_verify::check_stale_cache_mutant_flagged(&g);
        for v in &bad {
            println!("FAIL serve-mutant {}: {v}", id.name());
        }
        failures += bad.len();
        if bad.is_empty() {
            println!(
                "ok   serve-mutant {}: SkipEpochBump served stale scores and was caught",
                id.name()
            );
        }
    }
    failures
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let device = DeviceConfig::gtx_titan();

    println!("== stage 1: seeded-bug self-test ==");
    let mut failures = seeded_bug_self_test(&device);
    println!(
        "== stage 2: dataset sweep (reduction {}, seed {}) ==",
        opts.reduction, opts.seed
    );
    failures += dataset_sweep(&opts, &device);
    println!("== stage 3: exact-score identities ==");
    failures += exact_identity_checks(&device);
    println!("== stage 4: fault-tolerance equivalence ==");
    failures += fault_tolerance_checks(opts.seed);
    println!(
        "== stage 5: metrics-vs-trace cross-check (reduction {}, seed {}) ==",
        opts.reduction, opts.seed
    );
    failures += metrics_cross_checks(&opts, &device);
    failures += schedule_replay_checks(&device);
    failures += serve_row_replay_checks(opts.seed);
    println!("== stage 6: relabel equivalence (seed {}) ==", opts.seed);
    failures += relabel_equivalence_checks(opts.seed);
    println!(
        "== stage 7: checkpoint/resume durability (seed {}) ==",
        opts.seed
    );
    failures += durability_checks(opts.seed);
    println!(
        "== stage 8: serving equivalence (reduction {}, seed {}) ==",
        opts.reduction, opts.seed
    );
    failures += serving_checks(&opts);

    if failures == 0 {
        println!("bc-verify: all checks passed");
        ExitCode::SUCCESS
    } else {
        println!("bc-verify: {failures} check(s) FAILED");
        ExitCode::FAILURE
    }
}
