//! Relabel-equivalence battery: degree-ordered relabeling must be
//! invisible in the output.
//!
//! The relabeling pass permutes vertex ids to pack hot adjacency rows
//! together — a pure memory-layout transformation. Its correctness
//! claim is absolute, like the fault layer's: for any graph, any
//! method, any traversal direction, any thread count, and any
//! schedule, running on the [`Relabeling::DegreeDesc`] graph (roots
//! mapped in, scores gathered back out) must reproduce the
//! unrelabeled run **bitwise**. The engine earns this by summing the
//! backward δ contributions in canonical (value-sorted) order, making
//! every float accumulation label-invariant; this module turns the
//! claim into a checked fact.

use crate::invariants::Violation;
use bc_core::{BcOptions, Method, RootSelection, Schedule, TraversalMode};
use bc_graph::relabel::{apply, Relabeling};
use bc_graph::Csr;

/// Run `method` on `g` twice — unrelabeled, and degree-relabeled with
/// roots mapped in and scores gathered back — and demand bitwise
/// equality. `opts.roots` is interpreted in the *original* label
/// space for both runs.
pub fn check_relabel_equivalence(g: &Csr, method: &Method, opts: &BcOptions) -> Vec<Violation> {
    let mut out = Vec::new();
    let roots = opts.roots.resolve(g.num_vertices());

    let base = match method.run(g, opts) {
        Ok(run) => run,
        Err(e) => {
            out.push(Violation {
                check: "relabel.baseline_run",
                detail: format!("unrelabeled run failed: {e}"),
            });
            return out;
        }
    };

    let r = apply(g, Relabeling::DegreeDesc);
    let relabeled_opts = BcOptions {
        roots: RootSelection::Explicit(r.map_roots(&roots)),
        ..opts.clone()
    };
    let run = match method.run(&r.graph, &relabeled_opts) {
        Ok(run) => run,
        Err(e) => {
            out.push(Violation {
                check: "relabel.relabeled_run",
                detail: format!("relabeled run failed: {e}"),
            });
            return out;
        }
    };
    let restored = r.restore_scores(&run.scores);

    if base.scores.len() != restored.len() {
        out.push(Violation {
            check: "relabel.score_len",
            detail: format!("{} scores vs {}", base.scores.len(), restored.len()),
        });
        return out;
    }
    for (v, (a, b)) in base.scores.iter().zip(&restored).enumerate() {
        if a.to_bits() != b.to_bits() {
            out.push(Violation {
                check: "relabel.bitwise",
                detail: format!(
                    "vertex {v}: unrelabeled {a:?} ({:#018x}) vs relabeled {b:?} ({:#018x})",
                    a.to_bits(),
                    b.to_bits()
                ),
            });
            if out.len() >= 8 {
                return out; // enough evidence
            }
        }
    }
    out
}

/// The full battery on one graph: every traversal direction crossed
/// with 1/2/4 host threads and all three schedules. Returns all
/// violations, labelled by configuration.
pub fn relabel_battery(g: &Csr, method: &Method, roots: RootSelection) -> Vec<Violation> {
    let mut out = Vec::new();
    for traversal in [
        TraversalMode::Push,
        TraversalMode::Pull,
        TraversalMode::Auto,
    ] {
        if traversal != TraversalMode::Push && !g.is_symmetric() {
            continue; // pull needs reverse arcs
        }
        for threads in [1, 2, 4] {
            for schedule in [Schedule::Static, Schedule::Guided, Schedule::WorkStealing] {
                let opts = BcOptions {
                    roots: roots.clone(),
                    traversal,
                    threads,
                    schedule,
                    ..BcOptions::default()
                };
                for mut v in check_relabel_equivalence(g, method, &opts) {
                    v.detail = format!("[{:?} t{threads} {:?}] {}", traversal, schedule, v.detail);
                    out.push(v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::gen;

    #[test]
    fn work_efficient_battery_is_bitwise_clean() {
        // A scale-free analogue (the case DegreeDesc actually
        // reorders) and a random graph, across the full
        // direction × thread × schedule grid.
        for g in [
            gen::barabasi_albert(600, 4, 11),
            gen::erdos_renyi(400, 1600, 5),
        ] {
            let bad = relabel_battery(&g, &Method::WorkEfficient, RootSelection::Strided(24));
            assert!(bad.is_empty(), "{:?}", &bad[..bad.len().min(4)]);
        }
    }

    #[test]
    fn all_methods_are_label_invariant_single_config() {
        let g = gen::watts_strogatz(512, 6, 0.1, 9);
        for method in Method::all() {
            let opts = BcOptions {
                roots: RootSelection::Strided(16),
                ..Default::default()
            };
            let bad = check_relabel_equivalence(&g, &method, &opts);
            assert!(
                bad.is_empty(),
                "{}: {:?}",
                method.name(),
                &bad[..bad.len().min(4)]
            );
        }
    }

    #[test]
    fn a_seeded_divergence_is_reported() {
        // Sanity of the checker itself: comparing against a *wrong*
        // baseline must produce bitwise violations.
        let g = gen::barabasi_albert(300, 3, 2);
        let opts = BcOptions {
            roots: RootSelection::FirstK(8),
            normalize: true, // scale differs from the raw battery run
            ..Default::default()
        };
        let normalized = Method::WorkEfficient.run(&g, &opts).unwrap();
        let raw = Method::WorkEfficient
            .run(
                &g,
                &BcOptions {
                    normalize: false,
                    ..opts
                },
            )
            .unwrap();
        assert!(normalized
            .scores
            .iter()
            .zip(&raw.scores)
            .any(|(a, b)| a.to_bits() != b.to_bits()));
    }
}
