//! Structural invariant checks over graphs, per-root search state,
//! and final scores.
//!
//! Each check returns every violation it finds (never panicking), so
//! the suite binary and the `--verify` CLI flag can report all
//! problems from one run.

use bc_core::engine::{SearchWorkspace, INFINITY};
use bc_graph::{traversal, Csr, VertexId};
use std::fmt;

/// Relative tolerance for floating-point identities (σ and δ sums are
/// exact small integers or short dyadic sums on the suite's graphs,
/// but accumulation order varies).
const REL_TOL: f64 = 1e-9;

/// One failed invariant: which check, and a human-readable detail.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Stable name of the failed check (e.g. `csr.offsets_monotone`).
    pub check: &'static str,
    /// What was observed.
    pub detail: String,
}

impl Violation {
    fn new(check: &'static str, detail: impl Into<String>) -> Self {
        Self {
            check,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

/// Validate raw CSR arrays without constructing a [`Csr`] (whose
/// constructor panics on malformed input — useless for testing that
/// corrupted arrays are *rejected*).
///
/// Checks: shape (`offsets` non-empty, terminal value equals
/// `adj.len()`), monotone offsets, in-range targets, sorted and
/// duplicate-free adjacency lists, no self-loops, and — when
/// `symmetric` — the presence of every reverse arc.
pub fn check_csr_parts(offsets: &[u32], adj: &[VertexId], symmetric: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    if offsets.is_empty() {
        out.push(Violation::new(
            "csr.shape",
            "offsets is empty (need n + 1 >= 1 entries)",
        ));
        return out;
    }
    let n = offsets.len() - 1;
    if *offsets.last().unwrap() as usize != adj.len() {
        out.push(Violation::new(
            "csr.shape",
            format!(
                "offsets terminates at {} but adj has {} entries",
                offsets.last().unwrap(),
                adj.len()
            ),
        ));
    }
    if offsets[0] != 0 {
        out.push(Violation::new(
            "csr.offsets_monotone",
            format!("offsets[0] = {} != 0", offsets[0]),
        ));
    }
    let mut monotone = true;
    for (i, w) in offsets.windows(2).enumerate() {
        if w[0] > w[1] {
            out.push(Violation::new(
                "csr.offsets_monotone",
                format!("offsets[{i}] = {} > offsets[{}] = {}", w[0], i + 1, w[1]),
            ));
            monotone = false;
        }
    }
    for (e, &t) in adj.iter().enumerate() {
        if t as usize >= n {
            out.push(Violation::new(
                "csr.targets_in_range",
                format!("adj[{e}] = {t} out of range (n = {n})"),
            ));
        }
    }
    if !out.is_empty() || !monotone {
        // Per-list and symmetry checks index through offsets; skip
        // them when the shape itself is broken.
        return out;
    }
    for u in 0..n {
        let list = &adj[offsets[u] as usize..offsets[u + 1] as usize];
        if !list.windows(2).all(|w| w[0] < w[1]) {
            out.push(Violation::new(
                "csr.lists_sorted_unique",
                format!("adjacency list of {u} is not strictly increasing: {list:?}"),
            ));
        }
        if list.contains(&(u as u32)) {
            out.push(Violation::new(
                "csr.no_self_loops",
                format!("vertex {u} has a self-loop"),
            ));
        }
    }
    if symmetric && out.is_empty() {
        for u in 0..n {
            for &v in &adj[offsets[u] as usize..offsets[u + 1] as usize] {
                let rev = &adj[offsets[v as usize] as usize..offsets[v as usize + 1] as usize];
                if rev.binary_search(&(u as u32)).is_err() {
                    out.push(Violation::new(
                        "csr.symmetric",
                        format!("arc {u} -> {v} present but reverse arc missing"),
                    ));
                }
            }
        }
    }
    out
}

/// Validate a constructed [`Csr`] (see [`check_csr_parts`]).
pub fn check_csr(g: &Csr) -> Vec<Violation> {
    check_csr_parts(g.offsets(), g.adj_array(), g.is_symmetric())
}

/// Validate the search state a forward + backward pass left in `ws`
/// for `root`: stack segmentation, frontier dedup, per-segment
/// distances, σ-consistency over the shortest-path DAG, and the
/// per-root dependency identity `Σ_v δ(v) = Σ_t (d(t) − 1)`.
pub fn check_search_state(g: &Csr, root: VertexId, ws: &SearchWorkspace) -> Vec<Violation> {
    let mut out = Vec::new();
    let n = g.num_vertices();
    let s = ws.stack();
    let ends = ws.ends();
    let dist = ws.dist();
    let sigma = ws.sigma();
    let delta = ws.delta();

    // --- ends segmentation -------------------------------------------------
    if ends.len() < 2 || ends[0] != 0 {
        out.push(Violation::new(
            "ends.shape",
            format!("ends = {ends:?} (need [0, 1, ...])"),
        ));
        return out;
    }
    for (i, w) in ends.windows(2).enumerate() {
        if w[0] > w[1] {
            out.push(Violation::new(
                "ends.monotone",
                format!("ends[{i}] = {} > ends[{}] = {}", w[0], i + 1, w[1]),
            ));
        }
    }
    if *ends.last().unwrap() as usize != s.len() {
        out.push(Violation::new(
            "ends.terminal",
            format!(
                "ends terminates at {} but the stack holds {} vertices",
                ends.last().unwrap(),
                s.len()
            ),
        ));
    }
    if !out.is_empty() {
        return out;
    }
    if s.first() != Some(&root) || ends[1] != 1 {
        out.push(Violation::new(
            "stack.root_first",
            format!(
                "segment 0 must be exactly the root {root}; got ends[1] = {}, s[0] = {:?}",
                ends[1],
                s.first()
            ),
        ));
    }

    // --- frontier dedup + per-segment distances ----------------------------
    let mut seen = vec![false; n];
    for (seg, w) in ends.windows(2).enumerate() {
        for &v in &s[w[0] as usize..w[1] as usize] {
            let vi = v as usize;
            if vi >= n {
                out.push(Violation::new(
                    "stack.in_range",
                    format!("stack holds vertex {v} (n = {n})"),
                ));
                continue;
            }
            if std::mem::replace(&mut seen[vi], true) {
                out.push(Violation::new(
                    "stack.dedup",
                    format!("vertex {v} admitted into the stack more than once"),
                ));
            }
            if dist[vi] as usize != seg {
                out.push(Violation::new(
                    "stack.segment_depth",
                    format!("vertex {v} in segment {seg} has d = {}", dist[vi]),
                ));
            }
        }
    }

    // --- unreached vertices are untouched ----------------------------------
    for v in 0..n {
        if seen[v] {
            continue;
        }
        if dist[v] != INFINITY {
            out.push(Violation::new(
                "unreached.dist",
                format!(
                    "vertex {v} is not on the stack but has finite d = {}",
                    dist[v]
                ),
            ));
        }
        if sigma[v] != 0.0 || delta[v] != 0.0 {
            out.push(Violation::new(
                "unreached.sigma_delta",
                format!(
                    "unreached vertex {v} has sigma = {} delta = {}",
                    sigma[v], delta[v]
                ),
            ));
        }
    }

    // --- sigma consistency over the shortest-path DAG ----------------------
    if sigma.get(root as usize) != Some(&1.0) {
        out.push(Violation::new(
            "sigma.root",
            format!("sigma[root] = {:?}, expected 1", sigma.get(root as usize)),
        ));
    }
    let mut pred_sum = vec![0.0f64; n];
    for (v, w) in g.arcs() {
        let (vi, wi) = (v as usize, w as usize);
        if dist[vi] != INFINITY && dist[wi] != INFINITY && dist[vi] + 1 == dist[wi] {
            pred_sum[wi] += sigma[vi];
        }
    }
    for &w in s.iter().skip(1) {
        let wi = w as usize;
        if !approx_eq(sigma[wi], pred_sum[wi]) {
            out.push(Violation::new(
                "sigma.tree_sum",
                format!(
                    "sigma[{w}] = {} but its tree-edge predecessors sum to {}",
                    sigma[wi], pred_sum[wi]
                ),
            ));
        }
    }

    // --- dependency identity ------------------------------------------------
    // Summing delta(v) = sum over t != root reached of sigma_{root,t}(v)/sigma_{root,t}
    // across v gives, for each t, (number of interior vertices on a
    // shortest root-t path) = d(t) - 1, independent of path multiplicity.
    let delta_sum: f64 = s.iter().skip(1).map(|&v| delta[v as usize]).sum();
    let expect: f64 = s
        .iter()
        .skip(1)
        .map(|&v| (dist[v as usize] - 1) as f64)
        .sum();
    if !approx_eq(delta_sum, expect) {
        out.push(Violation::new(
            "delta.identity",
            format!("sum of delta = {delta_sum} but sum of (d(t) - 1) over reached t = {expect}"),
        ));
    }
    out
}

/// Final-score sanity: every score finite and non-negative (up to
/// rounding at zero).
pub fn check_scores(scores: &[f64]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (v, &b) in scores.iter().enumerate() {
        if !b.is_finite() {
            out.push(Violation::new("scores.finite", format!("BC[{v}] = {b}")));
        } else if b < -1e-9 {
            out.push(Violation::new(
                "scores.non_negative",
                format!("BC[{v}] = {b}"),
            ));
        }
    }
    out
}

/// Brandes pair-sum identity for an **exact, unnormalized** all-roots
/// run: `Σ_v BC(v) = Σ_s Σ_{t reachable from s, t ≠ s} (d(s,t) − 1)`,
/// halved for symmetric graphs (each unordered pair contributes from
/// both endpoints and the solver halves symmetric scores).
pub fn check_pair_sum(g: &Csr, scores: &[f64]) -> Vec<Violation> {
    let mut expect = 0.0f64;
    for s in g.vertices() {
        for &d in &traversal::bfs_distances(g, s) {
            if d != traversal::UNREACHED && d > 0 {
                expect += (d - 1) as f64;
            }
        }
    }
    if g.is_symmetric() {
        expect *= 0.5;
    }
    let total: f64 = scores.iter().sum();
    if approx_eq(total, expect) {
        Vec::new()
    } else {
        vec![Violation::new(
            "scores.pair_sum",
            format!("sum of BC = {total} but the pair-sum identity gives {expect}"),
        )]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_core::engine::{process_root, FreeModel};
    use bc_gpusim::DeviceConfig;
    use bc_graph::gen;

    fn searched(g: &Csr, root: u32) -> SearchWorkspace {
        let mut ws = SearchWorkspace::new(g.num_vertices());
        let mut bc = vec![0.0; g.num_vertices()];
        process_root(
            g,
            root,
            &DeviceConfig::gtx_titan(),
            &mut ws,
            &mut FreeModel,
            &mut bc,
        );
        ws
    }

    #[test]
    fn well_formed_graphs_pass() {
        for g in [
            gen::path(8),
            gen::star(6),
            gen::grid(4, 4),
            gen::erdos_renyi(50, 120, 7),
        ] {
            assert!(check_csr(&g).is_empty(), "{:?}", check_csr(&g));
        }
    }

    #[test]
    fn broken_offsets_rejected() {
        let v = check_csr_parts(&[0, 2, 1, 4], &[1, 2, 0, 2], false);
        assert!(v.iter().any(|v| v.check == "csr.offsets_monotone"), "{v:?}");
    }

    #[test]
    fn out_of_range_target_rejected() {
        let v = check_csr_parts(&[0, 1, 2], &[1, 9], false);
        assert!(v.iter().any(|v| v.check == "csr.targets_in_range"), "{v:?}");
    }

    #[test]
    fn missing_reverse_arc_rejected() {
        // 0 -> 1 without 1 -> 0, claimed symmetric.
        let v = check_csr_parts(&[0, 1, 1], &[1], true);
        assert!(v.iter().any(|v| v.check == "csr.symmetric"), "{v:?}");
    }

    #[test]
    fn search_state_of_real_runs_passes() {
        for g in [gen::path(9), gen::grid(5, 4), gen::erdos_renyi(80, 200, 3)] {
            let ws = searched(&g, 0);
            let v = check_search_state(&g, 0, &ws);
            assert!(v.is_empty(), "{v:?}");
        }
    }

    #[test]
    fn corrupted_sigma_is_caught() {
        let g = gen::grid(4, 4);
        let mut ws = searched(&g, 0);
        // Poke a reached, non-root sigma entry through the test-only
        // mutable accessor path: recompute by hand instead.
        let victim = ws.stack()[ws.stack().len() - 1] as usize;
        ws.corrupt_sigma_for_tests(victim, 99.0);
        let v = check_search_state(&g, 0, &ws);
        assert!(v.iter().any(|v| v.check == "sigma.tree_sum"), "{v:?}");
    }

    #[test]
    fn pair_sum_holds_for_exact_runs() {
        for g in [gen::path(7), gen::grid(3, 5), gen::erdos_renyi(40, 90, 11)] {
            let mut bc = vec![0.0; g.num_vertices()];
            let mut ws = SearchWorkspace::new(g.num_vertices());
            for r in g.vertices() {
                process_root(
                    &g,
                    r,
                    &DeviceConfig::gtx_titan(),
                    &mut ws,
                    &mut FreeModel,
                    &mut bc,
                );
            }
            if g.is_symmetric() {
                for b in bc.iter_mut() {
                    *b *= 0.5;
                }
            }
            assert!(check_scores(&bc).is_empty());
            let v = check_pair_sum(&g, &bc);
            assert!(v.is_empty(), "{v:?}");
        }
    }

    #[test]
    fn bad_scores_are_caught() {
        let v = check_scores(&[1.0, f64::NAN, -3.0]);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].check, "scores.finite");
        assert_eq!(v[1].check, "scores.non_negative");
    }
}
