//! Replayable access traces: the recorder for the engine's events and
//! the synthesized predecessor-style accumulation traces.

use bc_core::engine::SearchWorkspace;
use bc_gpusim::trace::{AccessKind, KernelArray, TraceEvent, TracePhase, TraceSink};
use bc_graph::Csr;

/// Every event of one simulated kernel launch (one BFS or
/// accumulation level): all events execute concurrently across their
/// logical threads, with a device-wide barrier before the next level.
#[derive(Clone, Debug)]
pub struct LevelTrace {
    /// Which half of the algorithm the launch belongs to.
    pub phase: TracePhase,
    /// BFS depth of the processed vertices.
    pub depth: u32,
    /// The level's accesses, in emission order.
    pub events: Vec<TraceEvent>,
}

impl LevelTrace {
    /// Number of atomic accesses in this level.
    pub fn atomic_events(&self) -> u64 {
        self.events.iter().filter(|e| e.kind.is_atomic()).count() as u64
    }
}

/// A full per-root trace: forward levels in depth order, then
/// backward levels from the deepest processed level down to depth 1.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The recorded kernel launches.
    pub levels: Vec<LevelTrace>,
}

impl Trace {
    /// Total recorded events.
    pub fn num_events(&self) -> u64 {
        self.levels.iter().map(|l| l.events.len() as u64).sum()
    }

    /// The subset of levels in `phase`.
    pub fn phase_levels(&self, phase: TracePhase) -> impl Iterator<Item = &LevelTrace> {
        self.levels.iter().filter(move |l| l.phase == phase)
    }
}

/// A [`TraceSink`] that keeps every event, for offline checking.
#[derive(Clone, Debug, Default)]
pub struct RecordingSink {
    /// The trace accumulated so far.
    pub trace: Trace,
}

impl TraceSink for RecordingSink {
    fn begin_level(&mut self, phase: TracePhase, depth: u32) {
        self.trace.levels.push(LevelTrace {
            phase,
            depth,
            events: Vec::new(),
        });
    }

    fn record(&mut self, event: TraceEvent) {
        let level = self
            .trace
            .levels
            .last_mut()
            .expect("the engine begins a level before recording events");
        level.events.push(event);
    }
}

/// Synthesize the dependency-accumulation trace of a
/// **predecessor-based, edge-parallel** kernel (Jia et al.) over the
/// search state left in `ws` by a forward pass: one logical thread
/// per tree edge `(v, w)` with `d[w] + 1 = d[v]`, each contributing
/// `σ[w]/σ[v]·(1 + δ[v])` into the *predecessor's* `δ[w]`.
///
/// With `atomic = false` the contribution is a plain read-modify-write
/// of `δ[w]` — the deliberately broken variant §IV-A warns about:
/// sibling edges sharing a predecessor collide, and the race detector
/// must flag it. With `atomic = true` it is an `atomicAdd`, the
/// synchronization edge-parallel accumulation actually requires, and
/// the trace must pass.
pub fn predecessor_accumulation_trace(g: &Csr, ws: &SearchWorkspace, atomic: bool) -> Trace {
    let s = ws.stack();
    let ends = ws.ends();
    let dist = ws.dist();
    let mut trace = Trace::default();
    let num_segments = ends.len() - 1;
    // Mirror the engine's backward schedule: process depth d by
    // pulling contributions out of depth d + 1.
    for d in (1..num_segments.saturating_sub(1)).rev() {
        let mut level = LevelTrace {
            phase: TracePhase::Backward,
            depth: d as u32,
            events: Vec::new(),
        };
        let mut lane = 0u32;
        for &v in &s[ends[d + 1] as usize..ends[d + 2] as usize] {
            for &w in g.neighbors(v) {
                if dist[w as usize] as usize + 1 != dist[v as usize] as usize {
                    continue;
                }
                // This lane owns the tree edge (v, w).
                let mut push = |array, index, kind| {
                    level.events.push(TraceEvent {
                        thread: lane,
                        array,
                        index,
                        kind,
                    });
                };
                push(KernelArray::Dist, w, AccessKind::Read);
                push(KernelArray::Sigma, v, AccessKind::Read);
                push(KernelArray::Sigma, w, AccessKind::Read);
                push(KernelArray::Delta, v, AccessKind::Read);
                if atomic {
                    push(KernelArray::Delta, w, AccessKind::AtomicAdd);
                } else {
                    // Plain load + store of a shared δ cell.
                    push(KernelArray::Delta, w, AccessKind::Read);
                    push(KernelArray::Delta, w, AccessKind::Write);
                }
                lane += 1;
            }
        }
        trace.levels.push(level);
    }
    trace
}

/// Synthesize the forward-sweep trace of a **bottom-up (pull)**
/// kernel over the finished search state in `ws`: at every depth `d`,
/// one logical thread per still-unvisited vertex scans its own
/// adjacency for frontier parents (`F_curr` membership probes against
/// the level's frontier bitmap), gathers their σ, and — on discovery
/// — writes its own `d`/`σ` cells and announces itself in the
/// `F_next` bitmap.
///
/// With `atomic = true` the announcement is the word-granular
/// `atomicOr` the engine's pull kernel performs: the only cells
/// multiple threads write are the shared `F_next` words, and the
/// atomic makes that safe — the detector must pass it. With
/// `atomic = false` the announcement is a plain load–or–store of the
/// shared word, the seeded bug: any two discovered vertices whose ids
/// share a 32-bit word collide, and the detector must flag it.
pub fn pull_bitmap_trace(g: &Csr, ws: &SearchWorkspace, atomic: bool) -> Trace {
    let dist = ws.dist();
    let ends = ws.ends();
    let n = g.num_vertices() as u32;
    let words = n.div_ceil(32);
    let mut trace = Trace::default();
    for d in 0..(ends.len() - 1) as u32 {
        let mut level = LevelTrace {
            phase: TracePhase::Forward,
            depth: d,
            events: Vec::new(),
        };
        let mut push = |thread, array, index, kind| {
            level.events.push(TraceEvent {
                thread,
                array,
                index,
                kind,
            });
        };
        // The visited-bitmap scan that yields each lane's unvisited
        // vertices (one lane per word, read-only).
        for word in 0..words {
            push(word, KernelArray::VisitedBits, word, AccessKind::Read);
        }
        for w in 0..n {
            // `dist` is final but monotone: a vertex discovered at
            // depth e was unvisited at every level before e, so the
            // finished state reconstructs each level's unvisited set
            // (unreached vertices scan at every level, exactly as in
            // the engine).
            if dist[w as usize] <= d {
                continue;
            }
            let mut parents = 0u64;
            for &v in g.neighbors(w) {
                push(w, KernelArray::FrontierBits, v / 32, AccessKind::Read);
                if dist[v as usize] == d {
                    push(w, KernelArray::Sigma, v, AccessKind::Read);
                    parents += 1;
                }
            }
            if parents > 0 {
                push(w, KernelArray::Dist, w, AccessKind::Write);
                push(w, KernelArray::Sigma, w, AccessKind::Write);
                if atomic {
                    push(w, KernelArray::NextBits, w / 32, AccessKind::AtomicOr);
                } else {
                    // Plain read-modify-write of the shared F_next
                    // word — the deliberately broken variant.
                    push(w, KernelArray::NextBits, w / 32, AccessKind::Read);
                    push(w, KernelArray::NextBits, w / 32, AccessKind::Write);
                }
            }
        }
        trace.levels.push(level);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_core::engine::{process_root_traced, FreeModel, RootContext, RootOutcome};
    use bc_gpusim::DeviceConfig;
    use bc_graph::gen;

    fn record(g: &Csr, root: u32) -> (Trace, SearchWorkspace) {
        let mut ws = SearchWorkspace::new(g.num_vertices());
        let mut bc = vec![0.0; g.num_vertices()];
        let mut out = RootOutcome::default();
        let mut sink = RecordingSink::default();
        let device = DeviceConfig::gtx_titan();
        process_root_traced(
            &RootContext {
                g,
                root,
                device: &device,
            },
            &mut ws,
            &mut FreeModel,
            &mut bc,
            &mut out,
            &mut sink,
        );
        (sink.trace, ws)
    }

    #[test]
    fn recorded_levels_match_search_shape() {
        let g = gen::path(6);
        let (trace, _) = record(&g, 0);
        // Forward: depths 0..=5; backward: depths 4..=1.
        let forward: Vec<u32> = trace
            .phase_levels(TracePhase::Forward)
            .map(|l| l.depth)
            .collect();
        let backward: Vec<u32> = trace
            .phase_levels(TracePhase::Backward)
            .map(|l| l.depth)
            .collect();
        assert_eq!(forward, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(backward, vec![4, 3, 2, 1]);
        assert!(trace.num_events() > 0);
    }

    #[test]
    fn backward_levels_have_no_atomics() {
        let g = gen::grid(5, 5);
        let (trace, _) = record(&g, 0);
        for level in trace.phase_levels(TracePhase::Backward) {
            assert_eq!(
                level.atomic_events(),
                0,
                "successor sweep must be atomic-free"
            );
        }
        // While the forward phase is full of them.
        assert!(trace
            .phase_levels(TracePhase::Forward)
            .any(|l| l.atomic_events() > 0));
    }

    #[test]
    fn pull_trace_is_atomic_free_except_discovery() {
        let g = gen::erdos_renyi(100, 300, 7);
        let (_, ws) = record(&g, 0);
        let safe = pull_bitmap_trace(&g, &ws, true);
        let racy = pull_bitmap_trace(&g, &ws, false);
        assert_eq!(safe.levels.len(), racy.levels.len());
        assert!(safe.levels.iter().all(|l| l.phase == TracePhase::Forward));
        // Exactly one atomic per discovered vertex, none elsewhere.
        let discovered: u64 = {
            let dist = ws.dist();
            (0..g.num_vertices())
                .filter(|&v| dist[v] != u32::MAX && dist[v] > 0)
                .count() as u64
        };
        let atomics: u64 = safe.levels.iter().map(|l| l.atomic_events()).sum();
        assert_eq!(atomics, discovered);
        assert_eq!(
            racy.levels.iter().map(|l| l.atomic_events()).sum::<u64>(),
            0
        );
    }

    #[test]
    fn pull_race_detector_flags_only_the_broken_variant() {
        use crate::race::check_trace;
        // A star's wide level discovers many vertices per F_next
        // word, the worst case for the plain read–or–write bug.
        for g in [gen::star(40), gen::erdos_renyi(120, 400, 3)] {
            let (_, ws) = record(&g, 0);
            assert!(check_trace(&pull_bitmap_trace(&g, &ws, true)).is_empty());
            let races = check_trace(&pull_bitmap_trace(&g, &ws, false));
            assert!(
                races.iter().any(|r| r.array == KernelArray::NextBits),
                "plain F_next update must race: {races:?}"
            );
        }
    }

    #[test]
    fn predecessor_trace_covers_all_tree_edges() {
        let g = gen::grid(4, 4);
        let (_, ws) = record(&g, 0);
        let plain = predecessor_accumulation_trace(&g, &ws, false);
        let atomic = predecessor_accumulation_trace(&g, &ws, true);
        // Same schedule, one extra event per edge in the plain
        // variant (read + write vs one atomic).
        assert_eq!(plain.levels.len(), atomic.levels.len());
        assert!(plain.num_events() > atomic.num_events());
        assert!(atomic
            .levels
            .iter()
            .all(|l| l.phase == TracePhase::Backward));
    }
}
