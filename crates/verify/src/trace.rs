//! Replayable access traces: the recorder for the engine's events and
//! the synthesized predecessor-style accumulation traces.

use bc_core::engine::SearchWorkspace;
use bc_gpusim::trace::{AccessKind, KernelArray, TraceEvent, TracePhase, TraceSink};
use bc_graph::Csr;

/// Every event of one simulated kernel launch (one BFS or
/// accumulation level): all events execute concurrently across their
/// logical threads, with a device-wide barrier before the next level.
#[derive(Clone, Debug)]
pub struct LevelTrace {
    /// Which half of the algorithm the launch belongs to.
    pub phase: TracePhase,
    /// BFS depth of the processed vertices.
    pub depth: u32,
    /// The level's accesses, in emission order.
    pub events: Vec<TraceEvent>,
}

impl LevelTrace {
    /// Number of atomic accesses in this level.
    pub fn atomic_events(&self) -> u64 {
        self.events.iter().filter(|e| e.kind.is_atomic()).count() as u64
    }
}

/// A full per-root trace: forward levels in depth order, then
/// backward levels from the deepest processed level down to depth 1.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The recorded kernel launches.
    pub levels: Vec<LevelTrace>,
}

impl Trace {
    /// Total recorded events.
    pub fn num_events(&self) -> u64 {
        self.levels.iter().map(|l| l.events.len() as u64).sum()
    }

    /// The subset of levels in `phase`.
    pub fn phase_levels(&self, phase: TracePhase) -> impl Iterator<Item = &LevelTrace> {
        self.levels.iter().filter(move |l| l.phase == phase)
    }
}

/// A [`TraceSink`] that keeps every event, for offline checking.
#[derive(Clone, Debug, Default)]
pub struct RecordingSink {
    /// The trace accumulated so far.
    pub trace: Trace,
}

impl TraceSink for RecordingSink {
    fn begin_level(&mut self, phase: TracePhase, depth: u32) {
        self.trace.levels.push(LevelTrace {
            phase,
            depth,
            events: Vec::new(),
        });
    }

    fn record(&mut self, event: TraceEvent) {
        let level = self
            .trace
            .levels
            .last_mut()
            .expect("the engine begins a level before recording events");
        level.events.push(event);
    }
}

/// Synthesize the dependency-accumulation trace of a
/// **predecessor-based, edge-parallel** kernel (Jia et al.) over the
/// search state left in `ws` by a forward pass: one logical thread
/// per tree edge `(v, w)` with `d[w] + 1 = d[v]`, each contributing
/// `σ[w]/σ[v]·(1 + δ[v])` into the *predecessor's* `δ[w]`.
///
/// With `atomic = false` the contribution is a plain read-modify-write
/// of `δ[w]` — the deliberately broken variant §IV-A warns about:
/// sibling edges sharing a predecessor collide, and the race detector
/// must flag it. With `atomic = true` it is an `atomicAdd`, the
/// synchronization edge-parallel accumulation actually requires, and
/// the trace must pass.
pub fn predecessor_accumulation_trace(g: &Csr, ws: &SearchWorkspace, atomic: bool) -> Trace {
    let s = ws.stack();
    let ends = ws.ends();
    let dist = ws.dist();
    let mut trace = Trace::default();
    let num_segments = ends.len() - 1;
    // Mirror the engine's backward schedule: process depth d by
    // pulling contributions out of depth d + 1.
    for d in (1..num_segments.saturating_sub(1)).rev() {
        let mut level = LevelTrace {
            phase: TracePhase::Backward,
            depth: d as u32,
            events: Vec::new(),
        };
        let mut lane = 0u32;
        for &v in &s[ends[d + 1] as usize..ends[d + 2] as usize] {
            for &w in g.neighbors(v) {
                if dist[w as usize] as usize + 1 != dist[v as usize] as usize {
                    continue;
                }
                // This lane owns the tree edge (v, w).
                let mut push = |array, index, kind| {
                    level.events.push(TraceEvent {
                        thread: lane,
                        array,
                        index,
                        kind,
                    });
                };
                push(KernelArray::Dist, w, AccessKind::Read);
                push(KernelArray::Sigma, v, AccessKind::Read);
                push(KernelArray::Sigma, w, AccessKind::Read);
                push(KernelArray::Delta, v, AccessKind::Read);
                if atomic {
                    push(KernelArray::Delta, w, AccessKind::AtomicAdd);
                } else {
                    // Plain load + store of a shared δ cell.
                    push(KernelArray::Delta, w, AccessKind::Read);
                    push(KernelArray::Delta, w, AccessKind::Write);
                }
                lane += 1;
            }
        }
        trace.levels.push(level);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_core::engine::{process_root_traced, FreeModel, RootOutcome};
    use bc_gpusim::DeviceConfig;
    use bc_graph::gen;

    fn record(g: &Csr, root: u32) -> (Trace, SearchWorkspace) {
        let mut ws = SearchWorkspace::new(g.num_vertices());
        let mut bc = vec![0.0; g.num_vertices()];
        let mut out = RootOutcome::default();
        let mut sink = RecordingSink::default();
        process_root_traced(
            g,
            root,
            &DeviceConfig::gtx_titan(),
            &mut ws,
            &mut FreeModel,
            &mut bc,
            &mut out,
            &mut sink,
        );
        (sink.trace, ws)
    }

    #[test]
    fn recorded_levels_match_search_shape() {
        let g = gen::path(6);
        let (trace, _) = record(&g, 0);
        // Forward: depths 0..=5; backward: depths 4..=1.
        let forward: Vec<u32> = trace
            .phase_levels(TracePhase::Forward)
            .map(|l| l.depth)
            .collect();
        let backward: Vec<u32> = trace
            .phase_levels(TracePhase::Backward)
            .map(|l| l.depth)
            .collect();
        assert_eq!(forward, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(backward, vec![4, 3, 2, 1]);
        assert!(trace.num_events() > 0);
    }

    #[test]
    fn backward_levels_have_no_atomics() {
        let g = gen::grid(5, 5);
        let (trace, _) = record(&g, 0);
        for level in trace.phase_levels(TracePhase::Backward) {
            assert_eq!(
                level.atomic_events(),
                0,
                "successor sweep must be atomic-free"
            );
        }
        // While the forward phase is full of them.
        assert!(trace
            .phase_levels(TracePhase::Forward)
            .any(|l| l.atomic_events() > 0));
    }

    #[test]
    fn predecessor_trace_covers_all_tree_edges() {
        let g = gen::grid(4, 4);
        let (_, ws) = record(&g, 0);
        let plain = predecessor_accumulation_trace(&g, &ws, false);
        let atomic = predecessor_accumulation_trace(&g, &ws, true);
        // Same schedule, one extra event per edge in the plain
        // variant (read + write vs one atomic).
        assert_eq!(plain.levels.len(), atomic.levels.len());
        assert!(plain.num_events() > atomic.num_events());
        assert!(atomic
            .levels
            .iter()
            .all(|l| l.phase == TracePhase::Backward));
    }
}
