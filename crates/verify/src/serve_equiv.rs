//! Serving-equivalence battery: batched + cached serving must be
//! bitwise invisible in the answers.
//!
//! The serving layer's correctness claim mirrors the relabel and
//! fault batteries' shape: for any request stream — any interleaving
//! of queries and edge edits, any batching window, any cache state —
//! every response must equal a **cold recompute** of the same query
//! against the graph as edited so far, bitwise, under every schedule
//! × traversal × thread-count combination. Cold references are
//! computed once per stream by replaying the edits on a shadow graph
//! (answers are schedule/traversal/thread-invariant, a fact the
//! relabel battery already enforces), then every serving
//! configuration is held to them.
//!
//! The battery also includes a *mutation self-test*: a server seeded
//! with [`ServeMutation::SkipEpochBump`] (edits mutate the graph but
//! neither bump the epoch nor invalidate the cache) must produce at
//! least one post-edit response that diverges from the cold
//! reference. A battery that cannot flag the classic stale-cache bug
//! proves nothing by passing.

use std::collections::BTreeMap;

use bc_core::{RootSelection, Schedule, TraversalMode};
use bc_graph::Csr;
use bc_metrics::ServeRow;
use bc_serve::{
    cold_answer, random_edits, Answer, BcServer, EdgeEdit, Event, Query, QueryMix, Request,
    ServeConfig, ServeMutation, SplitMix64,
};

use crate::invariants::Violation;

/// Thread counts every serving configuration is swept over.
pub const SERVE_THREADS: [usize; 3] = [1, 2, 4];

/// Traversal modes every serving configuration is swept over.
pub const SERVE_TRAVERSALS: [TraversalMode; 3] = [
    TraversalMode::Push,
    TraversalMode::Pull,
    TraversalMode::Auto,
];

/// A deterministic serving workload for `g`: `queries` randomized
/// requests (drawn from a small, overlapping root pool so the cache
/// sees repeats) interleaved with `edits` valid edge edits across the
/// stream's timespan, plus one trailing **repeat** of the final query
/// well after every edit. The repeat lands in its own batch inside
/// the final epoch with its roots already cached, so any
/// correctly-functioning cache serves at least one hit — which lets
/// the battery assert it actually exercised the cache.
pub fn serve_stream(g: &Csr, queries: usize, edits: usize, seed: u64) -> Vec<Event> {
    let n = g.num_vertices();
    let mix = QueryMix {
        num_vertices: n,
        root_pool: vec![
            RootSelection::FirstK(12.min(n)),
            RootSelection::FirstK(24.min(n)),
            RootSelection::Strided(8.min(n)),
            RootSelection::Strided(16.min(n)),
        ],
        top_k: 5,
    };
    let mut rng = SplitMix64::new(seed);
    let mut events = Vec::with_capacity(queries + edits + 1);
    let mut at = 0.0;
    for id in 0..queries {
        at += rng.next_exp(40.0);
        let (roots, query) = mix.draw(&mut rng);
        events.push(Event::Query(Request {
            id: id as u64,
            arrival: at,
            graph: "default".to_owned(),
            roots,
            query,
        }));
    }
    if let Some(Event::Query(last)) = events.last().cloned() {
        // `random_edits` timestamps all edits strictly before `at`,
        // so this repeat shares the final query's epoch: its roots
        // are resident when it arrives.
        events.push(Event::Query(Request {
            id: queries as u64,
            arrival: at + 1.0,
            ..last
        }));
    }
    events.extend(random_edits(g, "default", edits, at, seed));
    events
}

/// Replay `events` on a shadow copy of `g` and compute the cold
/// reference answer for every query: the graph a request sees is `g`
/// with exactly the edits that precede it in timestamp order (the
/// server flushes pending requests before applying an edit, so the
/// window can never smear an answer across an edit).
pub fn cold_references(g: &Csr, config: &ServeConfig, events: &[Event]) -> BTreeMap<u64, Answer> {
    let mut ordered: Vec<&Event> = events.iter().collect();
    ordered.sort_by(|a, b| a.at().total_cmp(&b.at()));
    let mut shadow = g.clone();
    let mut refs = BTreeMap::new();
    for event in ordered {
        match event {
            Event::Query(req) => {
                let answer = cold_answer(&shadow, config, &req.roots, &req.query)
                    .expect("cold reference run");
                refs.insert(req.id, answer);
            }
            Event::Edit { edit, .. } => {
                let (u, v) = edit.endpoints();
                shadow = match edit {
                    EdgeEdit::Insert(..) => shadow.with_edge_inserted(u, v),
                    EdgeEdit::Delete(..) => shadow.with_edge_removed(u, v),
                };
            }
        }
    }
    refs
}

/// Bitwise answer comparison (`==` on floats would also accept
/// `-0.0 == 0.0`; the serving claim is stronger).
fn answers_bitwise_eq(a: &Answer, b: &Answer) -> bool {
    fn pairs_eq(x: &[(u32, f64)], y: &[(u32, f64)]) -> bool {
        x.len() == y.len()
            && x.iter()
                .zip(y)
                .all(|(p, q)| p.0 == q.0 && p.1.to_bits() == q.1.to_bits())
    }
    match (a, b) {
        (Answer::TopK(x), Answer::TopK(y)) => pairs_eq(x, y),
        (Answer::SubgraphBc(x), Answer::SubgraphBc(y)) => pairs_eq(x, y),
        (Answer::PerVertex(x), Answer::PerVertex(y)) => x.to_bits() == y.to_bits(),
        _ => false,
    }
}

/// The full battery on one graph: one seeded stream, cold references
/// computed once, then every schedule × traversal × thread
/// combination served and compared bitwise. Also demands that the
/// stream produced cache hits somewhere (a battery that never hits
/// the cache is not testing the cache).
pub fn check_serving_equivalence(
    g: &Csr,
    queries: usize,
    edits: usize,
    seed: u64,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let events = serve_stream(g, queries, edits, seed);
    let base = ServeConfig {
        window: 0.02,
        ..ServeConfig::default()
    };
    let refs = cold_references(g, &base, &events);

    for schedule in Schedule::ALL {
        for traversal in SERVE_TRAVERSALS {
            for threads in SERVE_THREADS {
                let config = ServeConfig {
                    schedule,
                    traversal,
                    threads,
                    ..base.clone()
                };
                let label = format!("{}/{}/{}t", schedule.name(), traversal.name(), threads);
                let mut server = BcServer::single(g.clone(), config);
                let run = match server.run(events.clone()) {
                    Ok(run) => run,
                    Err(e) => {
                        out.push(Violation {
                            check: "serve.run",
                            detail: format!("[{label}] serving run failed: {e}"),
                        });
                        continue;
                    }
                };
                if run.responses.len() != refs.len() {
                    out.push(Violation {
                        check: "serve.response_count",
                        detail: format!(
                            "[{label}] {} responses for {} queries",
                            run.responses.len(),
                            refs.len()
                        ),
                    });
                    continue;
                }
                for resp in &run.responses {
                    let cold = &refs[&resp.id];
                    if !answers_bitwise_eq(&resp.answer, cold) {
                        out.push(Violation {
                            check: "serve.bitwise",
                            detail: format!(
                                "[{label}] request {} served {:?} but cold recompute says {:?}",
                                resp.id, resp.answer, cold
                            ),
                        });
                        if out.len() >= 8 {
                            return out;
                        }
                    }
                }
                if server.cache_stats().hits == 0 {
                    out.push(Violation {
                        check: "serve.cache_exercised",
                        detail: format!(
                            "[{label}] stream produced no cache hits — the battery is inert"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Mutation self-test: with [`ServeMutation::SkipEpochBump`] seeded
/// in, a stream whose edit provably changes scores must yield at
/// least one stale (divergent) response — otherwise the battery
/// could not catch the bug it exists for. The edit used is the
/// deletion of the graph's first adjacency arc, re-queried over all
/// roots, which changes shortest-path structure on every connected
/// analogue.
pub fn check_stale_cache_mutant_flagged(g: &Csr) -> Vec<Violation> {
    let mut out = Vec::new();
    let (u, v) =
        match (0..g.num_vertices() as u32).find_map(|u| g.neighbors(u).first().map(|&v| (u, v))) {
            Some(arc) => arc,
            None => {
                out.push(Violation {
                    check: "serve.mutant_setup",
                    detail: "graph has no edges to delete".to_owned(),
                });
                return out;
            }
        };
    let query = Query::SubgraphBc {
        vertices: (0..g.num_vertices() as u32).collect(),
    };
    let roots = RootSelection::FirstK(32.min(g.num_vertices()));
    let request = |id: u64, arrival: f64| {
        Event::Query(Request {
            id,
            arrival,
            graph: "default".to_owned(),
            roots: roots.clone(),
            query: query.clone(),
        })
    };
    let events = vec![
        request(0, 0.0),
        Event::Edit {
            at: 1.0,
            graph: "default".to_owned(),
            edit: EdgeEdit::Delete(u, v),
        },
        request(1, 2.0),
    ];
    let config = ServeConfig {
        mutation: Some(ServeMutation::SkipEpochBump),
        ..ServeConfig::default()
    };
    let refs = cold_references(g, &config, &events);
    let mut server = BcServer::single(g.clone(), config);
    let run = match server.run(events) {
        Ok(run) => run,
        Err(e) => {
            out.push(Violation {
                check: "serve.mutant_run",
                detail: format!("mutant run failed: {e}"),
            });
            return out;
        }
    };
    let post_edit = run
        .responses
        .iter()
        .find(|r| r.id == 1)
        .expect("post-edit response present");
    if answers_bitwise_eq(&post_edit.answer, &refs[&1]) {
        out.push(Violation {
            check: "serve.mutant_flagged",
            detail: format!(
                "SkipEpochBump mutant served a correct post-edit answer for delete({u},{v}) — \
                 the seeded stale-cache bug is invisible to this battery"
            ),
        });
    }
    out
}

/// Structural and replay invariants over a server's emitted rows:
/// rows are a pure function of the workload (bitwise identical on a
/// second run), batch accounting balances (`hits + misses ==
/// requested_roots`, stored latency equals `completed - arrival`
/// bitwise), sequence numbers are dense, and simulated time is
/// monotone over batch rows.
pub fn check_serve_rows(rows: &[ServeRow], replay: &[ServeRow]) -> Vec<Violation> {
    let mut out = Vec::new();
    if rows != replay {
        out.push(Violation {
            check: "serve.rows_replay",
            detail: format!(
                "serve rows diverge across identical runs ({} vs {} rows)",
                rows.len(),
                replay.len()
            ),
        });
    }
    let mut last_batch_at = f64::NEG_INFINITY;
    for (i, row) in rows.iter().enumerate() {
        if row.seq != i as u64 {
            out.push(Violation {
                check: "serve.rows_seq",
                detail: format!("row {i} carries seq {}", row.seq),
            });
        }
        match row.event.as_str() {
            "batch" => {
                if row.cache_hits + row.cache_misses != row.requested_roots {
                    out.push(Violation {
                        check: "serve.rows_accounting",
                        detail: format!(
                            "batch seq {}: {} hits + {} misses != {} requested roots",
                            row.seq, row.cache_hits, row.cache_misses, row.requested_roots
                        ),
                    });
                }
                if row.batch_size as usize != row.latencies.len() {
                    out.push(Violation {
                        check: "serve.rows_latency_count",
                        detail: format!(
                            "batch seq {}: batch_size {} but {} latency records",
                            row.seq,
                            row.batch_size,
                            row.latencies.len()
                        ),
                    });
                }
                for lat in &row.latencies {
                    if lat.latency.to_bits() != (lat.completed - lat.arrival).to_bits() {
                        out.push(Violation {
                            check: "serve.rows_latency",
                            detail: format!(
                                "request {}: stored latency {} != completed - arrival {}",
                                lat.id,
                                lat.latency,
                                lat.completed - lat.arrival
                            ),
                        });
                    }
                }
                if row.at < last_batch_at {
                    out.push(Violation {
                        check: "serve.rows_monotone",
                        detail: format!(
                            "batch seq {} starts at {} before previous batch at {}",
                            row.seq, row.at, last_batch_at
                        ),
                    });
                }
                last_batch_at = row.at;
            }
            "edit" => {
                if row.batch_size != 0 || row.requested_roots != 0 {
                    out.push(Violation {
                        check: "serve.rows_edit_shape",
                        detail: format!(
                            "edit seq {} carries batch fields (size {}, roots {})",
                            row.seq, row.batch_size, row.requested_roots
                        ),
                    });
                }
            }
            other => {
                out.push(Violation {
                    check: "serve.rows_event",
                    detail: format!("row seq {} has unknown event {other:?}", row.seq),
                });
            }
        }
        if out.len() >= 8 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::gen;

    #[test]
    fn battery_passes_on_a_healthy_server() {
        let g = gen::erdos_renyi(60, 200, 3);
        let bad = check_serving_equivalence(&g, 6, 2, 17);
        assert!(bad.is_empty(), "healthy server flagged: {bad:?}");
    }

    #[test]
    fn mutant_is_flagged() {
        let g = gen::erdos_renyi(60, 200, 5);
        let bad = check_stale_cache_mutant_flagged(&g);
        assert!(bad.is_empty(), "mutant escaped: {bad:?}");
    }

    #[test]
    fn serve_rows_invariants_hold_and_replay() {
        let g = gen::erdos_renyi(40, 120, 7);
        let events = serve_stream(&g, 8, 2, 23);
        let mut a = BcServer::single(g.clone(), ServeConfig::default());
        let mut b = BcServer::single(g, ServeConfig::default());
        let ra = a.run(events.clone()).expect("run a");
        let rb = b.run(events).expect("run b");
        let bad = check_serve_rows(&ra.rows, &rb.rows);
        assert!(bad.is_empty(), "row invariants violated: {bad:?}");
    }

    #[test]
    fn broken_rows_are_flagged() {
        let g = gen::erdos_renyi(40, 120, 7);
        let events = serve_stream(&g, 4, 0, 29);
        let mut server = BcServer::single(g, ServeConfig::default());
        let run = server.run(events).expect("run");
        let mut tampered = run.rows.clone();
        tampered[0].cache_hits += 1;
        let bad = check_serve_rows(&tampered, &run.rows);
        assert!(
            bad.iter().any(|v| v.check == "serve.rows_replay"),
            "tampered replay not flagged"
        );
        assert!(
            bad.iter().any(|v| v.check == "serve.rows_accounting"),
            "broken accounting not flagged"
        );
    }
}
