//! Phase-aware data-race detection over recorded kernel traces.
//!
//! The concurrency model is the paper's level-synchronous kernel
//! structure: within one level every logical thread runs concurrently
//! with no intra-kernel ordering between distinct threads; a
//! device-wide barrier separates levels, so cross-level conflicts
//! cannot occur. On one array cell within one level:
//!
//! * accesses by a single thread are ordered (program order) — never
//!   a race;
//! * atomic accesses (CAS/add) are word-coherent read-modify-writes —
//!   any combination of atomics from different threads is safe;
//! * a **plain read** against another thread's **atomic write** is
//!   safe on this hardware model: a 4-byte aligned load observes one
//!   coherent value before or after the atomic (this is exactly the
//!   `d[w] = d[v] + 1` check of Algorithm 2, which the paper runs
//!   against concurrent `atomicCAS` updates);
//! * a **plain write** conflicting with *any* access from another
//!   thread is a race: write–write (lost update) or read–write (torn
//!   observation of an in-flight non-atomic RMW).
//!
//! The whole rule therefore reduces to: a cell is racy iff some
//! thread writes it non-atomically while any other thread touches it
//! in the same level.

use crate::trace::{LevelTrace, Trace};
use bc_gpusim::trace::{AccessKind, KernelArray, TracePhase};
use std::fmt;

/// Conflict flavor of a detected race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceKind {
    /// Two threads write the same cell, at least one non-atomically.
    WriteWrite,
    /// One thread writes a cell non-atomically while another reads it.
    ReadWrite,
}

/// One racy cell within one level. Each (level, array, cell) is
/// reported once, with one example conflicting pair.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// Phase of the racy kernel launch.
    pub phase: TracePhase,
    /// BFS depth of the racy level.
    pub depth: u32,
    /// The array holding the contested cell.
    pub array: KernelArray,
    /// Index of the contested cell.
    pub index: u32,
    /// Conflict flavor.
    pub kind: RaceKind,
    /// An example pair of conflicting logical threads.
    pub threads: (u32, u32),
    /// How many accesses touched the contested cell in the level.
    pub contenders: usize,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} race on {}[{}] at {:?} depth {}: threads {} and {} ({} accesses)",
            self.kind,
            self.array.name(),
            self.index,
            self.phase,
            self.depth,
            self.threads.0,
            self.threads.1,
            self.contenders
        )
    }
}

/// Detect races within one level (one simulated kernel launch).
pub fn check_level(level: &LevelTrace) -> Vec<RaceReport> {
    // Group accesses by cell; sorting keeps the detector allocation-
    // light and deterministic.
    let mut cells: Vec<(KernelArray, u32, u32, AccessKind)> = level
        .events
        .iter()
        .map(|e| (e.array, e.index, e.thread, e.kind))
        .collect();
    cells.sort_unstable();
    let mut reports = Vec::new();
    let mut i = 0;
    while i < cells.len() {
        let (array, index, ..) = cells[i];
        let mut j = i;
        while j < cells.len() && cells[j].0 == array && cells[j].1 == index {
            j += 1;
        }
        let group = &cells[i..j];
        if let Some(report) = check_cell(level, array, index, group) {
            reports.push(report);
        }
        i = j;
    }
    reports
}

/// A cell races iff some thread writes it non-atomically while any
/// other thread touches it.
fn check_cell(
    level: &LevelTrace,
    array: KernelArray,
    index: u32,
    group: &[(KernelArray, u32, u32, AccessKind)],
) -> Option<RaceReport> {
    let plain_writer = group
        .iter()
        .find(|(_, _, _, k)| *k == AccessKind::Write && !k.is_atomic());
    let (_, _, writer_thread, _) = *plain_writer?;
    // Prefer reporting a write-write pair when one exists.
    let other_writer = group
        .iter()
        .find(|(_, _, t, k)| *t != writer_thread && k.is_write());
    let other_any =
        other_writer.or_else(|| group.iter().find(|(_, _, t, _)| *t != writer_thread))?;
    let (_, _, other_thread, other_kind) = *other_any;
    Some(RaceReport {
        phase: level.phase,
        depth: level.depth,
        array,
        index,
        kind: if other_kind.is_write() {
            RaceKind::WriteWrite
        } else {
            RaceKind::ReadWrite
        },
        threads: (writer_thread, other_thread),
        contenders: group.len(),
    })
}

/// Detect races across every level of a trace.
pub fn check_trace(trace: &Trace) -> Vec<RaceReport> {
    trace.levels.iter().flat_map(check_level).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_gpusim::trace::TraceEvent;

    fn level(events: Vec<(u32, KernelArray, u32, AccessKind)>) -> LevelTrace {
        LevelTrace {
            phase: TracePhase::Backward,
            depth: 1,
            events: events
                .into_iter()
                .map(|(thread, array, index, kind)| TraceEvent {
                    thread,
                    array,
                    index,
                    kind,
                })
                .collect(),
        }
    }

    use AccessKind::{AtomicAdd, AtomicCas, Read, Write};
    use KernelArray::{Delta, Dist, Sigma};

    #[test]
    fn plain_write_write_is_flagged() {
        let l = level(vec![(0, Delta, 7, Write), (1, Delta, 7, Write)]);
        let r = check_level(&l);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].kind, RaceKind::WriteWrite);
        assert_eq!(r[0].array, Delta);
    }

    #[test]
    fn plain_write_vs_read_is_flagged() {
        let l = level(vec![(0, Delta, 3, Write), (2, Delta, 3, Read)]);
        let r = check_level(&l);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].kind, RaceKind::ReadWrite);
    }

    #[test]
    fn atomics_do_not_race_with_each_other_or_readers() {
        let l = level(vec![
            (0, Sigma, 5, AtomicAdd),
            (1, Sigma, 5, AtomicAdd),
            (2, Sigma, 5, Read),
            (0, Dist, 9, AtomicCas),
            (1, Dist, 9, AtomicCas),
            (2, Dist, 9, Read),
        ]);
        assert!(check_level(&l).is_empty());
    }

    #[test]
    fn same_thread_rmw_is_program_ordered() {
        let l = level(vec![(4, Delta, 2, Read), (4, Delta, 2, Write)]);
        assert!(check_level(&l).is_empty());
    }

    #[test]
    fn mixed_atomic_and_plain_write_is_flagged() {
        let l = level(vec![(0, Delta, 1, AtomicAdd), (1, Delta, 1, Write)]);
        let r = check_level(&l);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn shared_bitmap_words_need_the_atomic_or() {
        use KernelArray::NextBits;
        // Two discovered vertices in the same 32-id block announce
        // into the same F_next word.
        let safe = level(vec![
            (3, NextBits, 0, AccessKind::AtomicOr),
            (17, NextBits, 0, AccessKind::AtomicOr),
        ]);
        assert!(check_level(&safe).is_empty());
        let racy = level(vec![
            (3, NextBits, 0, Read),
            (3, NextBits, 0, Write),
            (17, NextBits, 0, Read),
            (17, NextBits, 0, Write),
        ]);
        let r = check_level(&racy);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].array, NextBits);
        assert_eq!(r[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn one_report_per_cell() {
        let l = level(vec![
            (0, Delta, 7, Write),
            (1, Delta, 7, Write),
            (2, Delta, 7, Write),
            (3, Delta, 8, Write),
            (4, Delta, 8, Read),
        ]);
        let r = check_level(&l);
        assert_eq!(r.len(), 2, "cells 7 and 8 each reported once");
        assert_eq!(r[0].contenders, 3);
    }
}
