//! Metrics ↔ trace cross-checking: run one root with a recording
//! trace sink *and* a metrics recorder attached, then verify that
//! every counter `bc_metrics` reports is exactly the number of
//! corresponding access events in the kernel trace.
//!
//! The two layers observe the engine independently — the trace sink
//! records individual simulated memory accesses as they are emitted
//! inside the kernel loops, while the metrics sink copies the
//! engine's per-level aggregates after each launch. Agreement between
//! them is therefore a real consistency statement: the counters the
//! observability layer exports are the counts a race detector would
//! reconstruct from the raw access stream, level by level.
//!
//! Checked per forward push level: `cas_attempts` = `edges_inspected`
//! = traced `Dist`/`atomicCAS` events (Algorithm 2 dedups with one
//! CAS per inspected edge), `cas_wins` = `q_next` = traced
//! `Q_next` writes (each won CAS enqueues exactly once), and
//! `updates` = traced σ `atomicAdd`s. Per pull level:
//! `edges_inspected` = traced frontier-bitmap probes and `q_next` =
//! traced `F_next` `atomicOr`s. Per level of either phase:
//! `priced_atomics` = the trace's atomic-event count, and backward
//! levels are atomic-free.

use crate::invariants::Violation;
use crate::trace::RecordingSink;
use bc_core::engine::{
    process_root_observed, CostModel, RootContext, RootOutcome, SearchWorkspace,
};
use bc_gpusim::trace::{AccessKind, KernelArray, TraceEvent, TracePhase};
use bc_gpusim::DeviceConfig;
use bc_graph::{Csr, VertexId};
use bc_metrics::{LevelMetrics, MetricPhase, MetricTraversal, MetricsRecorder, WorkerMetrics};
use std::collections::BTreeMap;

/// Outcome of cross-checking one root's metrics against its trace.
#[derive(Debug)]
pub struct MetricsCrossCheck {
    /// The checked root.
    pub root: VertexId,
    /// Levels compared (forward + backward).
    pub levels: usize,
    /// Counter/trace disagreements (must be empty).
    pub violations: Vec<Violation>,
}

impl MetricsCrossCheck {
    /// True when every counter matched its traced count.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn count(events: &[TraceEvent], array: KernelArray, kind: AccessKind) -> u64 {
    events
        .iter()
        .filter(|e| e.array == array && e.kind == kind)
        .count() as u64
}

fn check_level(
    traced: &crate::trace::LevelTrace,
    m: &LevelMetrics,
    violations: &mut Vec<Violation>,
) {
    let mut expect = |check: &'static str, metric: u64, from_trace: u64| {
        if metric != from_trace {
            violations.push(Violation {
                check,
                detail: format!(
                    "{:?} depth {}: metrics report {metric} but the trace performs {from_trace}",
                    traced.phase, traced.depth
                ),
            });
        }
    };
    match (m.phase, m.traversal) {
        (MetricPhase::Forward, MetricTraversal::Push) => {
            let cas = count(&traced.events, KernelArray::Dist, AccessKind::AtomicCas);
            let enq = count(&traced.events, KernelArray::QNext, AccessKind::Write);
            let sigma = count(&traced.events, KernelArray::Sigma, AccessKind::AtomicAdd);
            expect("metrics.cas_attempts", m.cas_attempts, cas);
            expect("metrics.edges_inspected", m.edges_inspected, cas);
            expect("metrics.cas_wins", m.cas_wins, enq);
            expect("metrics.q_next", m.q_next, enq);
            expect("metrics.updates", m.updates, sigma);
        }
        (MetricPhase::Forward, MetricTraversal::Pull) => {
            let probes = count(&traced.events, KernelArray::FrontierBits, AccessKind::Read);
            let discovered = count(&traced.events, KernelArray::NextBits, AccessKind::AtomicOr);
            expect("metrics.edges_inspected", m.edges_inspected, probes);
            expect("metrics.q_next", m.q_next, discovered);
            expect("metrics.cas_attempts", m.cas_attempts, 0);
            expect("metrics.cas_wins", m.cas_wins, 0);
        }
        (MetricPhase::Backward, _) => {
            expect("metrics.backward_atomic_free", m.priced_atomics, 0);
        }
    }
    expect(
        "metrics.priced_atomics",
        m.priced_atomics,
        traced.atomic_events(),
    );
}

/// Run one observed search from `root` under `model` with both the
/// trace recorder and the metrics recorder attached, and check every
/// per-level counter against the access trace.
pub fn check_root_metrics<M: CostModel>(
    g: &Csr,
    root: VertexId,
    device: &DeviceConfig,
    mut model: M,
) -> MetricsCrossCheck {
    let mut ws = SearchWorkspace::new(g.num_vertices());
    let mut bc = vec![0.0; g.num_vertices()];
    let mut out = RootOutcome::default();
    let mut sink = RecordingSink::default();
    let mut recorder = MetricsRecorder::default();
    process_root_observed(
        &RootContext { g, root, device },
        &mut ws,
        &mut model,
        &mut bc,
        &mut out,
        &mut sink,
        &mut recorder,
    );

    let trace = sink.trace;
    let mut violations = Vec::new();
    let levels = match recorder.roots.as_slice() {
        [r] if r.root == root => &r.levels,
        other => {
            violations.push(Violation {
                check: "metrics.roots",
                detail: format!(
                    "expected one recorded root ({root}), got {:?}",
                    other.iter().map(|r| r.root).collect::<Vec<_>>()
                ),
            });
            return MetricsCrossCheck {
                root,
                levels: 0,
                violations,
            };
        }
    };

    if trace.levels.len() != levels.len() {
        violations.push(Violation {
            check: "metrics.levels",
            detail: format!(
                "trace recorded {} levels but metrics recorded {}",
                trace.levels.len(),
                levels.len()
            ),
        });
    }
    for (traced, m) in trace.levels.iter().zip(levels) {
        let phase = match m.phase {
            MetricPhase::Forward => TracePhase::Forward,
            MetricPhase::Backward => TracePhase::Backward,
        };
        if (traced.phase, traced.depth) != (phase, m.depth) {
            violations.push(Violation {
                check: "metrics.schedule",
                detail: format!(
                    "trace level ({:?}, depth {}) recorded by metrics as ({:?}, depth {})",
                    traced.phase, traced.depth, m.phase, m.depth
                ),
            });
            continue;
        }
        check_level(traced, m, &mut violations);
    }

    MetricsCrossCheck {
        root,
        levels: trace.levels.len(),
        violations,
    }
}

/// Cross-check a metered run's per-worker scheduling records against
/// a replay of the wall assignment.
///
/// The records are grouped by phase (the sampling method runs two).
/// Within a phase every worker must agree on the schedule name, the
/// root count, and the shard size; the shards they claim must
/// partition the phase's shard range exactly once; and each worker's
/// `roots_processed` must re-derive from pure shard geometry
/// (`min(shard_size, phase_roots - shard * shard_size)` summed over
/// its claims). Steal counters may be nonzero only under
/// work-stealing, and the wall-clock observations must be finite and
/// non-negative. A dynamic scheduler that dropped or double-ran a
/// shard — or misattributed work between workers — fails here even
/// though the root-ordered merge would mask it in the scores.
pub fn check_worker_metrics(workers: &[WorkerMetrics]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut phases: BTreeMap<u64, Vec<&WorkerMetrics>> = BTreeMap::new();
    for w in workers {
        phases.entry(w.phase).or_default().push(w);
    }
    for (phase, group) in phases {
        let first = group[0];
        let mut fail = |check: &'static str, detail: String| {
            violations.push(Violation { check, detail });
        };
        for w in &group {
            if (w.phase_roots, w.shard_size, w.schedule.as_str())
                != (first.phase_roots, first.shard_size, first.schedule.as_str())
            {
                fail(
                    "worker.phase_consistency",
                    format!(
                        "phase {phase}: worker {} reports ({}, {}, {}) but worker {} \
                         reports ({}, {}, {})",
                        w.worker,
                        w.phase_roots,
                        w.shard_size,
                        w.schedule,
                        first.worker,
                        first.phase_roots,
                        first.shard_size,
                        first.schedule
                    ),
                );
            }
        }
        if first.shard_size == 0 {
            fail(
                "worker.shard_size",
                format!("phase {phase}: shard size is zero"),
            );
            continue;
        }
        let shards = first.phase_roots.div_ceil(first.shard_size);
        let mut claimed = vec![0u64; shards as usize];
        for w in &group {
            for &s in &w.shards {
                match claimed.get_mut(s as usize) {
                    Some(c) => *c += 1,
                    None => fail(
                        "worker.shard_range",
                        format!(
                            "phase {phase}: worker {} claims shard {s} but only {shards} exist",
                            w.worker
                        ),
                    ),
                }
            }
        }
        for (s, &c) in claimed.iter().enumerate() {
            if c != 1 {
                fail(
                    "worker.shard_partition",
                    format!("phase {phase}: shard {s} claimed {c} times (must be exactly once)"),
                );
            }
        }
        for w in &group {
            let expect: u64 = w
                .shards
                .iter()
                .filter(|&&s| u64::from(s) < shards)
                .map(|&s| {
                    (first.phase_roots - u64::from(s) * first.shard_size).min(first.shard_size)
                })
                .sum();
            if w.roots_processed != expect {
                fail(
                    "worker.roots_replay",
                    format!(
                        "phase {phase}: worker {} processed {} roots but its claimed shards \
                         replay to {expect}",
                        w.worker, w.roots_processed
                    ),
                );
            }
            if w.max_queue_depth > shards {
                fail(
                    "worker.queue_depth",
                    format!(
                        "phase {phase}: worker {} saw queue depth {} with only {shards} shards",
                        w.worker, w.max_queue_depth
                    ),
                );
            }
            if w.schedule != "work-stealing" && (w.steals > 0 || w.failed_steal_attempts > 0) {
                fail(
                    "worker.steals",
                    format!(
                        "phase {phase}: worker {} reports {} steals / {} failed attempts under \
                         the {} schedule",
                        w.worker, w.steals, w.failed_steal_attempts, w.schedule
                    ),
                );
            }
            for (name, v) in [("busy", w.busy_seconds), ("idle", w.idle_seconds)] {
                if !v.is_finite() || v < 0.0 {
                    fail(
                        "worker.wall_clock",
                        format!(
                            "phase {phase}: worker {} reports {name}_seconds = {v} \
                             (must be finite and non-negative)",
                            w.worker
                        ),
                    );
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_core::methods::models::WorkEfficientModel;
    use bc_core::{DirectionOptimizingModel, Schedule, TraversalMode};
    use bc_graph::gen;

    #[test]
    fn push_metrics_match_the_trace() {
        let device = DeviceConfig::gtx_titan();
        for g in [
            gen::path(10),
            gen::star(16),
            gen::grid(6, 5),
            gen::erdos_renyi(150, 450, 5),
        ] {
            let c = check_root_metrics(&g, 0, &device, WorkEfficientModel::default());
            assert!(c.is_clean(), "violations: {:?}", c.violations);
            assert!(c.levels > 0);
        }
    }

    #[test]
    fn worker_metrics_replay_cleanly_under_every_schedule() {
        let g = gen::watts_strogatz(256, 6, 0.1, 7);
        let roots: Vec<u32> = (0..256).collect();
        let device = DeviceConfig::gtx_titan();
        for schedule in Schedule::ALL {
            let (_, _, workers) = bc_core::run_roots_scheduled_metered(
                &g,
                &device,
                &roots,
                4,
                schedule,
                &mut WorkEfficientModel::default(),
            )
            .unwrap();
            let v = check_worker_metrics(&workers);
            assert!(v.is_empty(), "{schedule}: {v:?}");
        }
    }

    #[test]
    fn tampered_worker_records_are_flagged() {
        let g = gen::watts_strogatz(256, 6, 0.1, 7);
        let roots: Vec<u32> = (0..256).collect();
        let device = DeviceConfig::gtx_titan();
        let (_, _, workers) = bc_core::run_roots_scheduled_metered(
            &g,
            &device,
            &roots,
            4,
            Schedule::Guided,
            &mut WorkEfficientModel::default(),
        )
        .unwrap();

        // Dropping a worker's shard claim breaks the partition.
        let mut dropped = workers.clone();
        dropped[0].shards.pop();
        assert!(check_worker_metrics(&dropped)
            .iter()
            .any(|v| v.check == "worker.shard_partition"));

        // Inflating a processed-root count fails the geometry replay.
        let mut inflated = workers.clone();
        inflated[1].roots_processed += 1;
        assert!(check_worker_metrics(&inflated)
            .iter()
            .any(|v| v.check == "worker.roots_replay"));

        // Steals cannot appear under a non-stealing schedule.
        let mut stolen = workers;
        stolen[2].steals = 3;
        assert!(check_worker_metrics(&stolen)
            .iter()
            .any(|v| v.check == "worker.steals"));
    }

    #[test]
    fn pull_and_auto_metrics_match_the_trace() {
        let device = DeviceConfig::gtx_titan();
        for g in [
            gen::star(64),
            gen::erdos_renyi(200, 800, 9),
            gen::watts_strogatz(400, 8, 0.1, 5),
        ] {
            for mode in [TraversalMode::Pull, TraversalMode::Auto] {
                let c = check_root_metrics(&g, 0, &device, DirectionOptimizingModel::new(mode));
                assert!(c.is_clean(), "{mode:?}: {:?}", c.violations);
                assert!(c.levels > 0);
            }
        }
    }
}
