//! Metrics ↔ trace cross-checking: run one root with a recording
//! trace sink *and* a metrics recorder attached, then verify that
//! every counter `bc_metrics` reports is exactly the number of
//! corresponding access events in the kernel trace.
//!
//! The two layers observe the engine independently — the trace sink
//! records individual simulated memory accesses as they are emitted
//! inside the kernel loops, while the metrics sink copies the
//! engine's per-level aggregates after each launch. Agreement between
//! them is therefore a real consistency statement: the counters the
//! observability layer exports are the counts a race detector would
//! reconstruct from the raw access stream, level by level.
//!
//! Checked per forward push level: `cas_attempts` = `edges_inspected`
//! = traced `Dist`/`atomicCAS` events (Algorithm 2 dedups with one
//! CAS per inspected edge), `cas_wins` = `q_next` = traced
//! `Q_next` writes (each won CAS enqueues exactly once), and
//! `updates` = traced σ `atomicAdd`s. Per pull level:
//! `edges_inspected` = traced frontier-bitmap probes and `q_next` =
//! traced `F_next` `atomicOr`s. Per level of either phase:
//! `priced_atomics` = the trace's atomic-event count, and backward
//! levels are atomic-free.

use crate::invariants::Violation;
use crate::trace::RecordingSink;
use bc_core::engine::{
    process_root_observed, CostModel, RootContext, RootOutcome, SearchWorkspace,
};
use bc_gpusim::trace::{AccessKind, KernelArray, TraceEvent, TracePhase};
use bc_gpusim::DeviceConfig;
use bc_graph::{Csr, VertexId};
use bc_metrics::{LevelMetrics, MetricPhase, MetricTraversal, MetricsRecorder};

/// Outcome of cross-checking one root's metrics against its trace.
#[derive(Debug)]
pub struct MetricsCrossCheck {
    /// The checked root.
    pub root: VertexId,
    /// Levels compared (forward + backward).
    pub levels: usize,
    /// Counter/trace disagreements (must be empty).
    pub violations: Vec<Violation>,
}

impl MetricsCrossCheck {
    /// True when every counter matched its traced count.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn count(events: &[TraceEvent], array: KernelArray, kind: AccessKind) -> u64 {
    events
        .iter()
        .filter(|e| e.array == array && e.kind == kind)
        .count() as u64
}

fn check_level(
    traced: &crate::trace::LevelTrace,
    m: &LevelMetrics,
    violations: &mut Vec<Violation>,
) {
    let mut expect = |check: &'static str, metric: u64, from_trace: u64| {
        if metric != from_trace {
            violations.push(Violation {
                check,
                detail: format!(
                    "{:?} depth {}: metrics report {metric} but the trace performs {from_trace}",
                    traced.phase, traced.depth
                ),
            });
        }
    };
    match (m.phase, m.traversal) {
        (MetricPhase::Forward, MetricTraversal::Push) => {
            let cas = count(&traced.events, KernelArray::Dist, AccessKind::AtomicCas);
            let enq = count(&traced.events, KernelArray::QNext, AccessKind::Write);
            let sigma = count(&traced.events, KernelArray::Sigma, AccessKind::AtomicAdd);
            expect("metrics.cas_attempts", m.cas_attempts, cas);
            expect("metrics.edges_inspected", m.edges_inspected, cas);
            expect("metrics.cas_wins", m.cas_wins, enq);
            expect("metrics.q_next", m.q_next, enq);
            expect("metrics.updates", m.updates, sigma);
        }
        (MetricPhase::Forward, MetricTraversal::Pull) => {
            let probes = count(&traced.events, KernelArray::FrontierBits, AccessKind::Read);
            let discovered = count(&traced.events, KernelArray::NextBits, AccessKind::AtomicOr);
            expect("metrics.edges_inspected", m.edges_inspected, probes);
            expect("metrics.q_next", m.q_next, discovered);
            expect("metrics.cas_attempts", m.cas_attempts, 0);
            expect("metrics.cas_wins", m.cas_wins, 0);
        }
        (MetricPhase::Backward, _) => {
            expect("metrics.backward_atomic_free", m.priced_atomics, 0);
        }
    }
    expect(
        "metrics.priced_atomics",
        m.priced_atomics,
        traced.atomic_events(),
    );
}

/// Run one observed search from `root` under `model` with both the
/// trace recorder and the metrics recorder attached, and check every
/// per-level counter against the access trace.
pub fn check_root_metrics<M: CostModel>(
    g: &Csr,
    root: VertexId,
    device: &DeviceConfig,
    mut model: M,
) -> MetricsCrossCheck {
    let mut ws = SearchWorkspace::new(g.num_vertices());
    let mut bc = vec![0.0; g.num_vertices()];
    let mut out = RootOutcome::default();
    let mut sink = RecordingSink::default();
    let mut recorder = MetricsRecorder::default();
    process_root_observed(
        &RootContext { g, root, device },
        &mut ws,
        &mut model,
        &mut bc,
        &mut out,
        &mut sink,
        &mut recorder,
    );

    let trace = sink.trace;
    let mut violations = Vec::new();
    let levels = match recorder.roots.as_slice() {
        [r] if r.root == root => &r.levels,
        other => {
            violations.push(Violation {
                check: "metrics.roots",
                detail: format!(
                    "expected one recorded root ({root}), got {:?}",
                    other.iter().map(|r| r.root).collect::<Vec<_>>()
                ),
            });
            return MetricsCrossCheck {
                root,
                levels: 0,
                violations,
            };
        }
    };

    if trace.levels.len() != levels.len() {
        violations.push(Violation {
            check: "metrics.levels",
            detail: format!(
                "trace recorded {} levels but metrics recorded {}",
                trace.levels.len(),
                levels.len()
            ),
        });
    }
    for (traced, m) in trace.levels.iter().zip(levels) {
        let phase = match m.phase {
            MetricPhase::Forward => TracePhase::Forward,
            MetricPhase::Backward => TracePhase::Backward,
        };
        if (traced.phase, traced.depth) != (phase, m.depth) {
            violations.push(Violation {
                check: "metrics.schedule",
                detail: format!(
                    "trace level ({:?}, depth {}) recorded by metrics as ({:?}, depth {})",
                    traced.phase, traced.depth, m.phase, m.depth
                ),
            });
            continue;
        }
        check_level(traced, m, &mut violations);
    }

    MetricsCrossCheck {
        root,
        levels: trace.levels.len(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_core::methods::models::WorkEfficientModel;
    use bc_core::{DirectionOptimizingModel, TraversalMode};
    use bc_graph::gen;

    #[test]
    fn push_metrics_match_the_trace() {
        let device = DeviceConfig::gtx_titan();
        for g in [
            gen::path(10),
            gen::star(16),
            gen::grid(6, 5),
            gen::erdos_renyi(150, 450, 5),
        ] {
            let c = check_root_metrics(&g, 0, &device, WorkEfficientModel::default());
            assert!(c.is_clean(), "violations: {:?}", c.violations);
            assert!(c.levels > 0);
        }
    }

    #[test]
    fn pull_and_auto_metrics_match_the_trace() {
        let device = DeviceConfig::gtx_titan();
        for g in [
            gen::star(64),
            gen::erdos_renyi(200, 800, 9),
            gen::watts_strogatz(400, 8, 0.1, 5),
        ] {
            for mode in [TraversalMode::Pull, TraversalMode::Auto] {
                let c = check_root_metrics(&g, 0, &device, DirectionOptimizingModel::new(mode));
                assert!(c.is_clean(), "{mode:?}: {:?}", c.violations);
                assert!(c.levels > 0);
            }
        }
    }
}
