//! Fault/fault-free equivalence checks for the cluster runner.
//!
//! The fault-tolerance layer's correctness claim is absolute: a
//! *recoverable* fault schedule — retries, contained worker deaths,
//! GPU losses with orphan adoption, lossy reductions — must not
//! change a single bit of the final scores, because the merge runs in
//! global root order no matter which GPU computed which root. This
//! module turns that claim into a checked fact: run fault-free, run
//! under a battery of seeded fault plans, and demand bitwise equality
//! (scores and checksum) plus honest fault accounting.

use crate::invariants::Violation;
use bc_cluster::{run_cluster_with_faults, ClusterConfig, FaultPlan};
use bc_graph::Csr;

/// A labelled battery of recoverable fault plans covering every
/// injection mechanism, seeded from `seed`.
pub fn recoverable_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "transient-retries",
            FaultPlan {
                transient_rate: 0.2,
                oom_rate: 0.05,
                seed,
                ..FaultPlan::none()
            },
        ),
        (
            "contained-panics",
            FaultPlan {
                panic_rate: 0.15,
                seed: seed ^ 1,
                ..FaultPlan::none()
            },
        ),
        (
            "gpu-death-adoption",
            FaultPlan {
                dead_gpus: vec![1],
                death_fraction: 0.4,
                transient_rate: 0.1,
                seed: seed ^ 2,
                ..FaultPlan::none()
            },
        ),
        (
            "straggler",
            FaultPlan {
                straggler_gpus: vec![0],
                straggler_slowdown: 4.0,
                seed: seed ^ 3,
                ..FaultPlan::none()
            },
        ),
        (
            "lossy-reduce",
            FaultPlan {
                reduce_drop_rate: 0.4,
                reduce_corrupt_rate: 0.2,
                seed: seed ^ 4,
                ..FaultPlan::none()
            },
        ),
        (
            "everything-at-once",
            FaultPlan {
                transient_rate: 0.1,
                oom_rate: 0.05,
                panic_rate: 0.05,
                dead_gpus: vec![2],
                death_fraction: 0.5,
                straggler_gpus: vec![0],
                straggler_slowdown: 2.0,
                reduce_drop_rate: 0.2,
                seed: seed ^ 5,
                ..FaultPlan::none()
            },
        ),
    ]
}

/// Run `cfg` on `g` fault-free and under every plan in `plans`;
/// return a violation for every bit that moved (scores, checksum) or
/// every plan whose counters claim nothing was injected.
pub fn check_fault_equivalence(
    g: &Csr,
    cfg: &ClusterConfig,
    sample_roots: usize,
    plans: &[(&'static str, FaultPlan)],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut battery_injected = 0u64;
    let clean = match run_cluster_with_faults(g, cfg, sample_roots, &FaultPlan::none()) {
        Ok(run) => run,
        Err(e) => {
            violations.push(Violation {
                check: "fault.baseline_runs",
                detail: format!("fault-free cluster run failed: {e}"),
            });
            return violations;
        }
    };
    for (label, plan) in plans {
        let faulted = match run_cluster_with_faults(g, cfg, sample_roots, plan) {
            Ok(run) => run,
            Err(e) => {
                violations.push(Violation {
                    check: "fault.plan_recoverable",
                    detail: format!("plan '{label}' was not recovered from: {e}"),
                });
                continue;
            }
        };
        if faulted.scores != clean.scores {
            let first = clean
                .scores
                .iter()
                .zip(&faulted.scores)
                .position(|(a, b)| a.to_bits() != b.to_bits());
            violations.push(Violation {
                check: "fault.scores_bitwise_equal",
                detail: format!(
                    "plan '{label}' changed the scores (first diff at vertex {first:?})"
                ),
            });
        }
        if faulted.report.checksum != clean.report.checksum {
            violations.push(Violation {
                check: "fault.checksum_equal",
                detail: format!(
                    "plan '{label}' checksum {:#018x} != fault-free {:#018x}",
                    faulted.report.checksum, clean.report.checksum
                ),
            });
        }
        let f = &faulted.report.faults;
        battery_injected += f.total_faults()
            + f.dead_gpus
            + f.straggler_gpus
            + f.reduce_drops
            + f.reduce_corruptions;
        if f.added_seconds < 0.0 {
            violations.push(Violation {
                check: "fault.added_time_nonnegative",
                detail: format!(
                    "plan '{label}' claims negative added time ({})",
                    f.added_seconds
                ),
            });
        }
    }
    // A battery whose counters say nothing was ever injected proved
    // nothing (a single low-rate plan may legitimately draw no
    // faults for some seeds; the whole battery must not). Only
    // meaningful when every plan otherwise passed — an unrecoverable
    // plan self-evidently injected something.
    if !plans.is_empty() && battery_injected == 0 && violations.is_empty() {
        violations.push(Violation {
            check: "fault.counters_honest",
            detail: "battery reports zero injected faults across all plans — \
                     the equivalence check proved nothing"
                .into(),
        });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::gen;

    #[test]
    fn battery_passes_on_a_healthy_runner() {
        let g = gen::watts_strogatz(150, 6, 0.1, 3);
        let cfg = ClusterConfig::keeneland(2);
        let v = check_fault_equivalence(&g, &cfg, 32, &recoverable_plans(42));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unrecoverable_plan_is_reported_not_panicked() {
        let g = gen::grid(10, 10);
        let cfg = ClusterConfig::keeneland(1);
        let all_dead = vec![(
            "all-dead",
            FaultPlan {
                dead_gpus: vec![0, 1, 2],
                ..FaultPlan::none()
            },
        )];
        let v = check_fault_equivalence(&g, &cfg, 16, &all_dead);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "fault.plan_recoverable");
    }
}
