//! Traced replay of one root: run the engine with a recording sink
//! *and* a recording cost model, then cross-check everything.
//!
//! The cost models in `bc_core::methods::cost` price atomics by
//! formula (work-efficient forward: one CAS per inspected edge, one
//! σ `atomicAdd` per update, one queue-tail `atomicAdd` per
//! discovered vertex; backward: zero). The trace records each of
//! those operations individually. [`verify_root`] checks that the
//! two agree level by level — the priced synchronization is exactly
//! the synchronization the kernel performs, no more and no less —
//! alongside the race detector and the structural invariants.

use crate::invariants::{check_search_state, Violation};
use crate::race::{check_trace, RaceReport};
use crate::trace::RecordingSink;
use bc_core::engine::{
    process_root_traced, CostModel, FrontierSnapshot, LevelInfo, Phase, PricedIteration,
    RootContext, RootOutcome, SearchWorkspace, Traversal,
};
use bc_core::methods::models::WorkEfficientModel;
use bc_gpusim::trace::TracePhase;
use bc_gpusim::DeviceConfig;
use bc_graph::{Csr, VertexId};

/// Phase, depth, and priced atomic count of one recorded level.
#[derive(Clone, Copy, Debug)]
pub struct RecordedLevel {
    /// Forward or backward.
    pub phase: TracePhase,
    /// BFS depth of the level.
    pub depth: u32,
    /// Atomic operations the cost model priced for the level.
    pub atomics: u64,
}

/// A [`CostModel`] wrapper that keeps each level's priced atomic
/// count while delegating all pricing to the inner model.
#[derive(Debug, Default)]
pub struct RecordingModel<M> {
    inner: M,
    /// The per-level records, in pricing order.
    pub levels: Vec<RecordedLevel>,
}

impl<M: CostModel> CostModel for RecordingModel<M> {
    fn begin_root(&mut self, g: &Csr, root: VertexId) {
        self.inner.begin_root(g, root);
    }

    fn price_init(&mut self, g: &Csr, device: &DeviceConfig) -> PricedIteration {
        self.inner.price_init(g, device)
    }

    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
        let priced = self.inner.price(g, device, level);
        let phase = match level.phase {
            Phase::Forward => TracePhase::Forward,
            Phase::Backward => TracePhase::Backward,
        };
        self.levels.push(RecordedLevel {
            phase,
            depth: level.depth,
            atomics: priced.work.atomics,
        });
        priced
    }

    fn choose_traversal(
        &mut self,
        g: &Csr,
        device: &DeviceConfig,
        frontier: &FrontierSnapshot,
    ) -> Traversal {
        self.inner.choose_traversal(g, device, frontier)
    }
}

/// Everything [`verify_root`] concluded about one root.
#[derive(Debug)]
pub struct RootVerification {
    /// The verified root.
    pub root: VertexId,
    /// Races found in the recorded trace (must be empty).
    pub races: Vec<RaceReport>,
    /// Invariant and pricing-consistency violations (must be empty).
    pub violations: Vec<Violation>,
    /// Levels recorded (forward + backward).
    pub levels: usize,
    /// Total access events recorded.
    pub events: u64,
}

impl RootVerification {
    /// True when no race and no violation was found.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && self.violations.is_empty()
    }
}

/// Run one traced work-efficient search from `root` and check it:
/// race-freedom of every level, the structural invariants of the
/// resulting search state, and per-level agreement between priced and
/// traced atomics.
pub fn verify_root(g: &Csr, root: VertexId, device: &DeviceConfig) -> RootVerification {
    verify_root_with(g, root, device, WorkEfficientModel::default())
}

/// [`verify_root`] with a caller-chosen cost model — the model also
/// decides the traversal direction of each forward level, so passing
/// a `DirectionOptimizingModel` verifies the bottom-up kernel's
/// traced accesses and pricing, while the default work-efficient
/// model verifies the push path.
pub fn verify_root_with<M: CostModel>(
    g: &Csr,
    root: VertexId,
    device: &DeviceConfig,
    inner: M,
) -> RootVerification {
    let mut ws = SearchWorkspace::new(g.num_vertices());
    let mut bc = vec![0.0; g.num_vertices()];
    let mut out = RootOutcome::default();
    let mut sink = RecordingSink::default();
    let mut model = RecordingModel {
        inner,
        levels: Vec::new(),
    };
    process_root_traced(
        &RootContext { g, root, device },
        &mut ws,
        &mut model,
        &mut bc,
        &mut out,
        &mut sink,
    );

    let trace = sink.trace;
    let races = check_trace(&trace);
    let mut violations = check_search_state(g, root, &ws);

    // --- pricing ↔ trace consistency ---------------------------------------
    if trace.levels.len() != model.levels.len() {
        violations.push(Violation {
            check: "pricing.levels",
            detail: format!(
                "trace recorded {} levels but the cost model priced {}",
                trace.levels.len(),
                model.levels.len()
            ),
        });
    }
    for (traced, priced) in trace.levels.iter().zip(&model.levels) {
        if (traced.phase, traced.depth) != (priced.phase, priced.depth) {
            violations.push(Violation {
                check: "pricing.schedule",
                detail: format!(
                    "trace level ({:?}, depth {}) priced as ({:?}, depth {})",
                    traced.phase, traced.depth, priced.phase, priced.depth
                ),
            });
            continue;
        }
        let observed = traced.atomic_events();
        if observed != priced.atomics {
            violations.push(Violation {
                check: "pricing.atomics",
                detail: format!(
                    "{:?} depth {}: trace performs {} atomics but the model priced {}",
                    traced.phase, traced.depth, observed, priced.atomics
                ),
            });
        }
        if traced.phase == TracePhase::Backward && observed != 0 {
            violations.push(Violation {
                check: "pricing.backward_atomic_free",
                detail: format!(
                    "successor-based accumulation at depth {} performed {} atomics",
                    traced.depth, observed
                ),
            });
        }
    }

    RootVerification {
        root,
        races,
        violations,
        levels: trace.levels.len(),
        events: trace.num_events(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::gen;

    #[test]
    fn real_kernels_verify_clean() {
        let device = DeviceConfig::gtx_titan();
        for g in [
            gen::path(10),
            gen::star(8),
            gen::grid(6, 5),
            gen::erdos_renyi(120, 360, 5),
        ] {
            let v = verify_root(&g, 0, &device);
            assert!(
                v.is_clean(),
                "races: {:?}\nviolations: {:?}",
                v.races,
                v.violations
            );
            assert!(v.levels > 0 && v.events > 0);
        }
    }

    #[test]
    fn pull_and_auto_kernels_verify_clean() {
        use bc_core::{DirectionOptimizingModel, TraversalMode};
        let device = DeviceConfig::gtx_titan();
        for g in [
            gen::star(64),
            gen::erdos_renyi(200, 800, 9),
            gen::watts_strogatz(400, 8, 0.1, 5),
        ] {
            for mode in [TraversalMode::Pull, TraversalMode::Auto] {
                let v = verify_root_with(&g, 0, &device, DirectionOptimizingModel::new(mode));
                assert!(
                    v.is_clean(),
                    "{mode:?}: races {:?}\nviolations {:?}",
                    v.races,
                    v.violations
                );
                assert!(v.levels > 0 && v.events > 0);
            }
        }
    }

    #[test]
    fn priced_atomics_match_trace_on_every_level() {
        // The consistency check is part of verify_root; this pins the
        // stronger statement that forward levels really do price
        // e + updates + discovered (nonzero on any non-trivial graph).
        let g = gen::grid(4, 4);
        let v = verify_root(&g, 3, &DeviceConfig::gtx_titan());
        assert!(v.is_clean(), "{:?} {:?}", v.races, v.violations);
    }
}
