//! Checkpoint/resume equivalence checks for the durable cluster
//! runner.
//!
//! The durability layer's correctness claim extends the fault layer's:
//! a run killed at *any* point and resumed from its checkpoint must
//! produce scores bitwise identical to the uninterrupted run — under
//! every schedule, every traversal mode, and a recoverable fault plan
//! layered on top. This module turns the claim into a checked fact,
//! and additionally proves the store's tamper resistance: corrupted
//! chunks, mismatched fingerprints, and stale chunks left by an
//! interrupted epoch are all rejected structurally, never merged.

use crate::invariants::Violation;
use bc_cluster::{
    run_cluster_durable, run_cluster_with_faults, ClusterConfig, ClusterError, DurabilityOptions,
    FaultPlan,
};
use bc_core::{graph_digest, options_fingerprint, CheckpointError, CheckpointStore, Degradation};
use bc_core::{Method, Schedule, TraversalMode};
use bc_graph::Csr;
use std::path::PathBuf;

/// The seeded kill points the battery drives: early, mid, and late in
/// the run's global root order.
pub fn kill_points() -> [(&'static str, f64); 3] {
    [("early", 0.15), ("mid", 0.5), ("late", 0.85)]
}

/// A fresh scratch directory for one battery case, unique across
/// concurrent verify processes.
fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bc-verify-ckpt-{tag}-{}-{id}", std::process::id()))
}

/// The recoverable fault plan layered under every kill case: retries,
/// a dead GPU with orphan adoption, and a straggler — everything the
/// checkpoint must commute with.
fn recoverable_overlay(seed: u64) -> FaultPlan {
    FaultPlan {
        transient_rate: 0.12,
        dead_gpus: vec![1],
        death_fraction: 0.5,
        straggler_gpus: vec![0],
        straggler_slowdown: 2.0,
        seed,
        ..FaultPlan::none()
    }
}

/// Kill the run at every seeded kill point under every schedule ×
/// traversal combination (with a recoverable fault plan layered on),
/// resume each from its checkpoint, and demand the resumed scores be
/// bitwise identical to the uninterrupted run — plus honest
/// completed/resumed root accounting.
pub fn check_checkpoint_equivalence(
    g: &Csr,
    cfg: &ClusterConfig,
    sample_roots: usize,
    seed: u64,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for schedule in [Schedule::Static, Schedule::Guided, Schedule::WorkStealing] {
        for traversal in [
            TraversalMode::Push,
            TraversalMode::Pull,
            TraversalMode::Auto,
        ] {
            let cfg = ClusterConfig {
                schedule,
                traversal,
                ..cfg.clone()
            };
            let overlay = recoverable_overlay(seed);
            let clean = match run_cluster_with_faults(g, &cfg, sample_roots, &overlay) {
                Ok(run) => run,
                Err(e) => {
                    violations.push(Violation {
                        check: "ckpt.baseline_runs",
                        detail: format!("{schedule}/{traversal:?}: uninterrupted run failed: {e}"),
                    });
                    continue;
                }
            };
            for (label, fraction) in kill_points() {
                let case = format!("{schedule}/{traversal:?}/kill-{label}");
                let dir = scratch_dir(label);
                let durability = DurabilityOptions {
                    checkpoint: Some(dir.clone()),
                    ..DurabilityOptions::default()
                };
                let kill_plan = FaultPlan {
                    kill_fraction: Some(fraction),
                    ..overlay.clone()
                };
                let completed =
                    match run_cluster_durable(g, &cfg, sample_roots, &kill_plan, &durability) {
                        Err(ClusterError::ProcessKilled {
                            completed_roots,
                            planned_roots,
                            ..
                        }) => {
                            if planned_roots != clean.report.roots_sampled {
                                violations.push(Violation {
                                    check: "ckpt.planned_roots_honest",
                                    detail: format!(
                                        "{case}: planned {planned_roots} roots, \
                                         uninterrupted run did {}",
                                        clean.report.roots_sampled
                                    ),
                                });
                            }
                            completed_roots
                        }
                        Err(e) => {
                            violations.push(Violation {
                                check: "ckpt.kill_surfaces_structured",
                                detail: format!("{case}: expected ProcessKilled, got: {e}"),
                            });
                            let _ = std::fs::remove_dir_all(&dir);
                            continue;
                        }
                        Ok(_) => {
                            violations.push(Violation {
                                check: "ckpt.kill_surfaces_structured",
                                detail: format!("{case}: kill point was silently ignored"),
                            });
                            let _ = std::fs::remove_dir_all(&dir);
                            continue;
                        }
                    };
                // Rerun with the external killer gone; everything
                // else (faults included) identical.
                match run_cluster_durable(g, &cfg, sample_roots, &overlay, &durability) {
                    Ok(resumed) => {
                        if resumed.scores != clean.scores {
                            let first = clean
                                .scores
                                .iter()
                                .zip(&resumed.scores)
                                .position(|(a, b)| a.to_bits() != b.to_bits());
                            violations.push(Violation {
                                check: "ckpt.resume_bitwise_equal",
                                detail: format!(
                                    "{case}: resumed scores differ from uninterrupted \
                                     (first diff at vertex {first:?})"
                                ),
                            });
                        }
                        if resumed.report.checksum != clean.report.checksum {
                            violations.push(Violation {
                                check: "ckpt.resume_checksum_equal",
                                detail: format!(
                                    "{case}: resumed checksum {:#018x} != uninterrupted {:#018x}",
                                    resumed.report.checksum, clean.report.checksum
                                ),
                            });
                        }
                        let missing = clean.report.roots_sampled - completed;
                        if resumed.report.roots_sampled != missing {
                            violations.push(Violation {
                                check: "ckpt.resume_only_missing",
                                detail: format!(
                                    "{case}: resume recomputed {} roots, only {missing} \
                                     were missing from the checkpoint",
                                    resumed.report.roots_sampled
                                ),
                            });
                        }
                    }
                    Err(e) => {
                        violations.push(Violation {
                            check: "ckpt.resume_runs",
                            detail: format!("{case}: resume failed: {e}"),
                        });
                    }
                }
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
    violations
}

/// Prove the store rejects what it must: flipped chunk bytes, a
/// mismatched options fingerprint, a mismatched graph, and a stale
/// chunk left behind by an earlier epoch.
pub fn check_checkpoint_rejection(
    g: &Csr,
    cfg: &ClusterConfig,
    sample_roots: usize,
) -> Vec<Violation> {
    let mut violations = Vec::new();

    // --- Corrupted chunk: flip one payload byte after a clean run,
    // then resume against a config that would recompute nothing. ---
    let dir = scratch_dir("corrupt");
    let durability = DurabilityOptions {
        checkpoint: Some(dir.clone()),
        ..DurabilityOptions::default()
    };
    match run_cluster_durable(g, cfg, sample_roots, &FaultPlan::none(), &durability) {
        Ok(_) => {
            let chunk = std::fs::read_dir(&dir).ok().and_then(|entries| {
                entries
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .find(|p| p.extension().is_some_and(|x| x == "chunk"))
            });
            match chunk {
                Some(path) => {
                    let mut bytes = std::fs::read(&path).expect("chunk is readable");
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x40;
                    std::fs::write(&path, bytes).expect("chunk is writable");
                    match run_cluster_durable(g, cfg, sample_roots, &FaultPlan::none(), &durability)
                    {
                        Err(ClusterError::Checkpoint {
                            source: CheckpointError::Corrupt { .. },
                        }) => {}
                        other => violations.push(Violation {
                            check: "ckpt.corruption_rejected",
                            detail: format!(
                                "flipped chunk byte was not rejected as corrupt: {:?}",
                                other.map(|r| r.report.checksum)
                            ),
                        }),
                    }
                }
                None => violations.push(Violation {
                    check: "ckpt.chunks_written",
                    detail: "clean checkpointed run left no chunk files".into(),
                }),
            }
        }
        Err(e) => violations.push(Violation {
            check: "ckpt.baseline_runs",
            detail: format!("checkpointed baseline failed: {e}"),
        }),
    }
    let _ = std::fs::remove_dir_all(&dir);

    // --- Fingerprint mismatch: same directory, different options. ---
    let dir = scratch_dir("fingerprint");
    let durability = DurabilityOptions {
        checkpoint: Some(dir.clone()),
        ..DurabilityOptions::default()
    };
    if run_cluster_durable(g, cfg, sample_roots, &FaultPlan::none(), &durability).is_ok() {
        let other_cfg = ClusterConfig {
            traversal: match cfg.traversal {
                TraversalMode::Pull => TraversalMode::Push,
                _ => TraversalMode::Pull,
            },
            ..cfg.clone()
        };
        match run_cluster_durable(g, &other_cfg, sample_roots, &FaultPlan::none(), &durability) {
            Err(ClusterError::Checkpoint {
                source: CheckpointError::Mismatch { .. },
            }) => {}
            other => violations.push(Violation {
                check: "ckpt.fingerprint_rejected",
                detail: format!(
                    "changed traversal mode resumed against the old manifest: {:?}",
                    other.map(|r| r.report.checksum)
                ),
            }),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    // --- Stale chunk: a chunk file written under an earlier epoch
    // must not satisfy a later manifest (the seeded stale-checkpoint
    // bug: naive stores trust any chunk whose checksum matches). ---
    let dir = scratch_dir("stale");
    let fp = options_fingerprint("stale-battery");
    let digest = graph_digest(g);
    let n = g.num_vertices();
    let stale_check = (|| -> Result<Option<Violation>, CheckpointError> {
        let store = CheckpointStore::open(&dir, fp, digest, n, 2)?;
        let scores = vec![1.5; n];
        store.record(0, &scores)?;
        let chunk_path = dir.join("root-0.chunk");
        let old_bytes = std::fs::read(&chunk_path).expect("chunk 0 exists");
        // A new epoch records fresher data for the same root…
        let store = CheckpointStore::open(&dir, fp, digest, n, 2)?;
        store.record(0, &scores)?;
        // …then the stale file reappears (e.g. restored from a
        // half-synced backup).
        std::fs::write(&chunk_path, old_bytes).expect("chunk 0 is writable");
        match store.load(0) {
            Err(CheckpointError::Stale { .. }) => Ok(None),
            Err(e) => Ok(Some(Violation {
                check: "ckpt.stale_flagged",
                detail: format!("stale chunk rejected with the wrong error: {e}"),
            })),
            Ok(_) => Ok(Some(Violation {
                check: "ckpt.stale_flagged",
                detail: "a chunk from a previous epoch was silently accepted".into(),
            })),
        }
    })();
    match stale_check {
        Ok(Some(v)) => violations.push(v),
        Ok(None) => {}
        Err(e) => violations.push(Violation {
            check: "ckpt.stale_battery_runs",
            detail: format!("stale-chunk battery could not run: {e}"),
        }),
    }
    let _ = std::fs::remove_dir_all(&dir);

    violations
}

/// Prove the graceful-degradation ladder: an oversized CSR partitions
/// (bitwise-identically), and a method whose locals cannot fit at all
/// degrades to a bounded-error sampled approximation instead of
/// failing — with each decision visible on the report.
pub fn check_degradation_ladder(
    g: &Csr,
    cfg: &ClusterConfig,
    sample_roots: usize,
) -> Vec<Violation> {
    use bc_core::methods::cost::footprint;
    let mut violations = Vec::new();

    let reference = match run_cluster_with_faults(g, cfg, sample_roots, &FaultPlan::none()) {
        Ok(run) => run,
        Err(e) => {
            return vec![Violation {
                check: "ckpt.ladder_baseline_runs",
                detail: format!("full-memory baseline failed: {e}"),
            }]
        }
    };

    // Rung 1: shrink the device until the CSR must stream.
    let local = cfg.method.local_bytes(g, &cfg.device);
    let squeezed_cfg = ClusterConfig {
        device: bc_gpusim::DeviceConfig {
            global_mem_bytes: local + footprint::graph_bytes(g) / 3,
            ..cfg.device.clone()
        },
        ..cfg.clone()
    };
    match run_cluster_with_faults(g, &squeezed_cfg, sample_roots, &FaultPlan::none()) {
        Ok(run) => {
            if run.scores != reference.scores {
                violations.push(Violation {
                    check: "ckpt.ladder_partition_bitwise",
                    detail: "partitioned rung changed the scores".into(),
                });
            }
            match run.report.degradation {
                Some(Degradation::Partitioned { slices }) if slices >= 2 => {}
                ref other => violations.push(Violation {
                    check: "ckpt.ladder_partition_reported",
                    detail: format!("partitioned rung not visible on the report: {other:?}"),
                }),
            }
        }
        Err(e) => violations.push(Violation {
            check: "ckpt.ladder_partitions",
            detail: format!("oversized CSR was not partitioned: {e}"),
        }),
    }

    // Rung 2: GPU-FAN's O(n²) locals defeat partitioning; with the
    // ladder engaged the run must complete as a sampled approximation.
    let fan_cfg = ClusterConfig {
        method: Method::GpuFan,
        ..cfg.clone()
    };
    let fan_fits = footprint::graph_bytes(g) + fan_cfg.method.local_bytes(g, &fan_cfg.device)
        <= fan_cfg.device.global_mem_bytes;
    if !fan_fits {
        let durability = DurabilityOptions {
            degrade: true,
            ..DurabilityOptions::default()
        };
        match run_cluster_durable(g, &fan_cfg, sample_roots, &FaultPlan::none(), &durability) {
            Ok(run) => match &run.report.degradation {
                Some(Degradation::Sampled {
                    sources,
                    error_bound,
                    ..
                }) => {
                    if *sources == 0 || !error_bound.is_finite() {
                        violations.push(Violation {
                            check: "ckpt.ladder_sample_bounded",
                            detail: format!(
                                "sampled rung reports {sources} sources, bound {error_bound}"
                            ),
                        });
                    }
                }
                other => violations.push(Violation {
                    check: "ckpt.ladder_sample_reported",
                    detail: format!("sampled rung not visible on the report: {other:?}"),
                }),
            },
            Err(e) => violations.push(Violation {
                check: "ckpt.ladder_samples",
                detail: format!("unfittable method was not degraded to sampling: {e}"),
            }),
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::gen;

    fn small_cfg() -> ClusterConfig {
        ClusterConfig {
            method: Method::WorkEfficient,
            ..ClusterConfig::keeneland(2)
        }
    }

    #[test]
    fn equivalence_battery_passes_on_a_healthy_runner() {
        let g = gen::watts_strogatz(150, 6, 0.1, 8);
        let v = check_checkpoint_equivalence(&g, &small_cfg(), 24, 77);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn rejection_battery_passes_on_a_healthy_store() {
        let g = gen::watts_strogatz(150, 6, 0.1, 9);
        let v = check_checkpoint_rejection(&g, &small_cfg(), 12);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn ladder_battery_passes_on_a_healthy_runner() {
        let g = gen::kronecker(11, 8, 4);
        let cfg = ClusterConfig {
            method: Method::WorkEfficient,
            ..ClusterConfig::keeneland(1)
        };
        let v = check_degradation_ladder(&g, &cfg, 16);
        assert!(v.is_empty(), "{v:?}");
    }
}
