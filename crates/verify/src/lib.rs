//! # bc-verify — kernel-trace race detection and invariant checking
//!
//! The paper's central correctness claims are *concurrency* claims:
//! atomicCAS-deduplicated queue insertion admits each vertex into
//! `Q_next` exactly once (Algorithm 2), and the successor-checking
//! dependency accumulation (Algorithm 3, via Madduri et al. and
//! Green & Bader) is safe **without atomics** — while edge-parallel
//! accumulation is only safe *with* them. The cost models in
//! `bc_core::methods::cost` price exactly those atomics; this crate
//! turns the pricing assumptions into machine-checked facts:
//!
//! * [`trace`] — records the engine's logical per-thread access
//!   events ([`bc_gpusim::trace`]) into a replayable [`Trace`], and
//!   synthesizes the *predecessor-style* accumulation trace the paper
//!   rejects (with and without atomics);
//! * [`race`] — a phase-aware detector flagging write–write and
//!   unsynchronized read–write conflicts between logical threads of
//!   one level (one simulated kernel launch);
//! * [`invariants`] — structural passes: CSR well-formedness, stack
//!   segmentation (`ends` monotonicity, frontier dedup),
//!   σ-consistency, the per-root dependency identity
//!   `Σ δ(v) = Σ (d(t) − 1)`, and final-score sanity including the
//!   Brandes pair-sum identity;
//! * [`replay`] — drives one root through the traced engine under a
//!   recording cost model and cross-checks priced atomics against
//!   traced atomics per level;
//! * [`fault_equiv`] — runs the cluster under a battery of seeded
//!   fault plans and asserts the scores stay bitwise identical to
//!   the fault-free run (the fault-tolerance layer's correctness
//!   claim);
//! * [`checkpoint_equiv`] — kills the durable runner at seeded
//!   early/mid/late points under every schedule × traversal mode,
//!   resumes each from its checkpoint, and asserts bitwise identity
//!   with the uninterrupted run; also proves the store rejects
//!   corrupted, mismatched, and stale checkpoints, and that the
//!   graceful-degradation ladder partitions and samples as claimed;
//! * [`serve_equiv`] — serving-equivalence battery: random query
//!   streams (with interleaved edge edits) through the batched,
//!   cached `bc-serve` layer must answer bitwise identically to
//!   per-query cold recomputes under every schedule × traversal ×
//!   thread combination, a seeded stale-cache mutant must be
//!   flagged, and emitted serve rows must replay bit-for-bit;
//! * [`metrics_check`] — runs one root with the trace recorder and
//!   the [`bc_metrics`] recorder attached simultaneously and checks
//!   every exported counter (edges inspected, CAS attempts/wins,
//!   σ-updates, priced atomics) against the corresponding access
//!   events in the trace.
//!
//! The `bc-verify` binary runs the whole suite over the bundled
//! dataset analogues plus a seeded-bug self-test (the broken
//! atomic-free predecessor accumulation **must** be flagged); the
//! `hybrid-bc --verify` flag runs the same checks on a live run.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checkpoint_equiv;
pub mod fault_equiv;
pub mod invariants;
pub mod metrics_check;
pub mod race;
pub mod relabel_equiv;
pub mod replay;
pub mod serve_equiv;
pub mod trace;

pub use checkpoint_equiv::{
    check_checkpoint_equivalence, check_checkpoint_rejection, check_degradation_ladder, kill_points,
};
pub use fault_equiv::{check_fault_equivalence, recoverable_plans};
pub use invariants::{
    check_csr, check_csr_parts, check_pair_sum, check_scores, check_search_state, Violation,
};
pub use metrics_check::{check_root_metrics, check_worker_metrics, MetricsCrossCheck};
pub use race::{check_trace, RaceReport};
pub use relabel_equiv::{check_relabel_equivalence, relabel_battery};
pub use replay::{verify_root, verify_root_with, RootVerification};
pub use serve_equiv::{
    check_serve_rows, check_serving_equivalence, check_stale_cache_mutant_flagged, cold_references,
    serve_stream,
};
pub use trace::{pull_bitmap_trace, LevelTrace, RecordingSink, Trace};
