//! Property tests for the CSR invariant pass: construction from any
//! edge list must validate, and corrupted raw arrays must always be
//! rejected.

use bc_graph::Csr;
use bc_verify::{check_csr, check_csr_parts, verify_root};
use proptest::prelude::*;

/// Decode a packed `u64` into an edge over `n` vertices. The vendored
/// proptest has no tuple strategies, so pairs travel packed.
fn unpack_edge(code: u64, n: usize) -> (u32, u32) {
    let n = n as u64;
    ((code % n) as u32, ((code / n) % n) as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_built_csrs_always_validate(
        n in 1usize..120,
        codes in proptest::collection::vec(0u64..1_000_000, 0..300),
    ) {
        let edges: Vec<(u32, u32)> = codes.iter().map(|&c| unpack_edge(c, n)).collect();
        let g = Csr::from_undirected_edges(n, edges);
        let violations = check_csr(&g);
        prop_assert!(violations.is_empty(), "round-tripped CSR rejected: {:?}", violations);
    }

    #[test]
    fn prop_corrupted_offsets_always_rejected(
        n in 2usize..100,
        codes in proptest::collection::vec(0u64..1_000_000, 1..250),
        victim_sel in 0usize..1_000_000,
    ) {
        let edges: Vec<(u32, u32)> = codes.iter().map(|&c| unpack_edge(c, n)).collect();
        let g = Csr::from_undirected_edges(n, edges);
        let mut offsets = g.offsets().to_vec();
        // Push an interior offset past the terminal: violates either
        // monotonicity or the terminal == adj.len() shape check no
        // matter which interior slot is hit.
        let victim = 1 + victim_sel % (offsets.len() - 1);
        offsets[victim] = g.adj_array().len() as u32 + 1;
        let violations = check_csr_parts(&offsets, g.adj_array(), g.is_symmetric());
        prop_assert!(
            !violations.is_empty(),
            "corrupted offsets[{}] accepted (n = {})",
            victim,
            n
        );
    }

    #[test]
    fn prop_corrupted_targets_always_rejected(
        n in 1usize..100,
        codes in proptest::collection::vec(0u64..1_000_000, 2..250),
        victim_sel in 0usize..1_000_000,
    ) {
        let edges: Vec<(u32, u32)> = codes.iter().map(|&c| unpack_edge(c, n)).collect();
        let mut edges = edges;
        // Guarantee at least one arc survives dedup/self-loop drop.
        if n >= 2 {
            edges.push((0, 1));
        }
        let g = Csr::from_undirected_edges(n, edges);
        let mut adj = g.adj_array().to_vec();
        if adj.is_empty() {
            return Ok(());
        }
        let victim = victim_sel % adj.len();
        adj[victim] = n as u32; // one past the last valid vertex id
        let violations = check_csr_parts(g.offsets(), &adj, g.is_symmetric());
        prop_assert!(!violations.is_empty(), "out-of-range target accepted");
    }

    #[test]
    fn prop_work_efficient_sweep_is_race_free(
        n in 2usize..80,
        codes in proptest::collection::vec(0u64..1_000_000, 1..200),
        root_sel in 0usize..1_000_000,
    ) {
        let edges: Vec<(u32, u32)> = codes.iter().map(|&c| unpack_edge(c, n)).collect();
        let g = Csr::from_undirected_edges(n, edges);
        let root = (root_sel % n) as u32;
        let v = verify_root(&g, root, &bc_gpusim::DeviceConfig::gtx_titan());
        prop_assert!(
            v.is_clean(),
            "root {}: races {:?}, violations {:?}",
            root,
            v.races,
            v.violations
        );
    }
}
