//! Shared harness code for the experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §4). Common concerns — CLI flags, deterministic seeds,
//! table rendering, JSON result export — live here.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use serde::Serialize;
use std::path::PathBuf;

/// Default seed for every experiment (override with `--seed`).
pub const DEFAULT_SEED: u64 = 20140101;

/// Minimal flag parser: `--key value` pairs after the binary name.
#[derive(Clone, Debug, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parse the process arguments. A `--name` followed by another
    /// flag (or nothing) is a bare boolean switch (see
    /// [`Args::flag`]); otherwise the next token is its value.
    pub fn from_env() -> Self {
        let mut pairs = Vec::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(k) = it.next() {
            if let Some(name) = k.strip_prefix("--") {
                let bare = it.peek().is_none_or(|next| next.starts_with("--"));
                let v = if bare {
                    "true".to_string()
                } else {
                    it.next().expect("peeked value exists")
                };
                pairs.push((name.to_string(), v));
            } else {
                eprintln!("unexpected argument: {k}");
                std::process::exit(2);
            }
        }
        Args { pairs }
    }

    /// Is the bare switch `--name` (or `--name true`) present?
    pub fn flag(&self, name: &str) -> bool {
        self.get(name, false)
    }

    /// Look up a flag, parsing it into `T`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// Experiment seed (`--seed`).
    pub fn seed(&self) -> u64 {
        self.get("seed", DEFAULT_SEED)
    }

    /// Dataset scale reduction (`--reduction`, halvings of the paper
    /// sizes; 0 = full Table II scale).
    pub fn reduction(&self, default: u32) -> u32 {
        self.get("reduction", default)
    }

    /// Sampled roots per configuration (`--roots`).
    pub fn roots(&self, default: usize) -> usize {
        self.get("roots", default)
    }
}

/// Sampling parameters scaled to a K-of-n sampled-roots run: the
/// real algorithm spends its first `n_samps = 512` roots (of n) in
/// the work-efficient phase; a harness simulating only `k` roots
/// must shrink the phase proportionally or the decision phase never
/// ends.
pub fn scaled_sampling(n: usize, k: usize) -> bc_core::SamplingParams {
    let base = bc_core::SamplingParams::default();
    if k >= n {
        return base;
    }
    let scaled = (base.n_samps * k).div_ceil(n.max(1)).max(3);
    bc_core::SamplingParams {
        n_samps: scaled,
        ..base
    }
}

/// Directory experiment outputs are written to (`results/`, created
/// on demand).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Serialize an experiment record to `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = out_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize experiment record");
    std::fs::write(&path, json).expect("write experiment record");
    eprintln!("wrote {}", path.display());
}

/// Render an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        s
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", line(&hdr));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Format seconds compactly (µs → hours).
pub fn fmt_seconds(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else if s < 7200.0 {
        format!("{:.1}min", s / 60.0)
    } else {
        format!("{:.2}h", s / 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_lookup_with_defaults() {
        let args = Args {
            pairs: vec![("roots".into(), "128".into()), ("seed".into(), "7".into())],
        };
        assert_eq!(args.roots(1), 128);
        assert_eq!(args.seed(), 7);
        assert_eq!(args.reduction(3), 3);
        // Unparseable values fall back to the default.
        let bad = Args {
            pairs: vec![("roots".into(), "xyz".into())],
        };
        assert_eq!(bad.roots(9), 9);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(5e-5), "50.0us");
        assert_eq!(fmt_seconds(0.25), "250.00ms");
        assert_eq!(fmt_seconds(3.5), "3.50s");
        assert_eq!(fmt_seconds(600.0), "10.0min");
        assert_eq!(fmt_seconds(90000.0), "25.00h");
    }
}
