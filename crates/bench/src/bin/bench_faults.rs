//! E-faults — measure what fault tolerance costs: run the cluster
//! under a sweep of seeded fault plans, assert every recoverable
//! schedule reproduces the fault-free scores bit for bit, and price
//! the simulated overhead (backoff, reassignment, straggling, reduce
//! retransmission) each plan adds.
//!
//! ```text
//! cargo run -p bc-bench --release --bin bench_faults \
//!     [--scale 15] [--nodes 4] [--roots K] [--seed S] [--quick 1]
//! ```
//!
//! Writes `results/BENCH_faults.json`.

use bc_bench::{fmt_seconds, print_table, write_json, Args};
use bc_cluster::{run_cluster_with_faults, ClusterConfig, FaultPlan};
use bc_graph::{gen, Csr};
use serde::Serialize;

#[derive(Serialize)]
struct FaultPoint {
    plan: &'static str,
    graph: String,
    nodes: usize,
    roots: usize,
    clean_seconds: f64,
    faulted_seconds: f64,
    overhead_seconds: f64,
    overhead_pct: f64,
    transient_faults: u64,
    oom_faults: u64,
    panics_contained: u64,
    retries: u64,
    dead_gpus: u64,
    reassigned_roots: u64,
    straggler_gpus: u64,
    reduce_drops: u64,
    reduce_corruptions: u64,
    bitwise_identical: bool,
    checksum: String,
}

/// The sweep: one plan per injection mechanism, then the combined
/// worst case. Rates are high enough that every mechanism fires at
/// the bench's root counts.
fn plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "transient-10pct",
            FaultPlan {
                transient_rate: 0.1,
                seed,
                ..FaultPlan::none()
            },
        ),
        (
            "transient-30pct",
            FaultPlan {
                transient_rate: 0.3,
                oom_rate: 0.05,
                seed: seed ^ 0x11,
                ..FaultPlan::none()
            },
        ),
        (
            "panics-10pct",
            FaultPlan {
                panic_rate: 0.1,
                seed: seed ^ 0x24,
                ..FaultPlan::none()
            },
        ),
        (
            "one-gpu-dies",
            FaultPlan {
                dead_gpus: vec![1],
                death_fraction: 0.3,
                seed: seed ^ 0x33,
                ..FaultPlan::none()
            },
        ),
        (
            "straggler-4x",
            FaultPlan {
                straggler_gpus: vec![0],
                straggler_slowdown: 4.0,
                seed: seed ^ 0x44,
                ..FaultPlan::none()
            },
        ),
        (
            "lossy-reduce",
            FaultPlan {
                reduce_drop_rate: 0.3,
                reduce_corrupt_rate: 0.15,
                seed: seed ^ 0x56,
                ..FaultPlan::none()
            },
        ),
        (
            "everything",
            FaultPlan {
                transient_rate: 0.15,
                oom_rate: 0.05,
                panic_rate: 0.05,
                dead_gpus: vec![2],
                death_fraction: 0.5,
                straggler_gpus: vec![0],
                straggler_slowdown: 2.0,
                reduce_drop_rate: 0.2,
                reduce_corrupt_rate: 0.1,
                seed: seed ^ 0x66,
                ..FaultPlan::none()
            },
        ),
    ]
}

fn main() {
    let args = Args::from_env();
    let quick: u32 = args.get("quick", 0);
    let scale: u32 = args.get("scale", if quick > 0 { 12 } else { 15 });
    let nodes: usize = args.get("nodes", if quick > 0 { 2 } else { 4 });
    let k = args.roots(if quick > 0 { 48 } else { 192 });
    let seed = args.seed();

    let graphs: Vec<(String, Csr)> = vec![
        (format!("rmat-2^{scale}"), gen::kronecker(scale, 8, seed)),
        (
            format!("ws-2^{scale}"),
            gen::watts_strogatz(1usize << scale, 6, 0.1, seed),
        ),
    ];
    let cfg = ClusterConfig::keeneland(nodes);
    println!(
        "Fault-tolerance overhead: Keeneland-like cluster, {nodes} node(s) x 3 GPUs, \
         {k} sampled roots, seed = {seed}\n"
    );

    let mut points = Vec::new();
    let mut mismatches = 0usize;
    for (gname, g) in &graphs {
        let clean = run_cluster_with_faults(g, &cfg, k, &FaultPlan::none())
            .expect("fault-free cluster run succeeds");
        println!(
            "-- {gname}: n={} 2m={}, fault-free total {} --",
            g.num_vertices(),
            g.num_directed_edges(),
            fmt_seconds(clean.report.total_seconds)
        );
        let mut rows = Vec::new();
        for (label, plan) in plans(seed) {
            let faulted = run_cluster_with_faults(g, &cfg, k, &plan)
                .expect("recoverable plan is recovered from");
            let identical =
                faulted.scores == clean.scores && faulted.report.checksum == clean.report.checksum;
            if !identical {
                mismatches += 1;
            }
            let f = &faulted.report.faults;
            let overhead = faulted.report.total_seconds - clean.report.total_seconds;
            rows.push(vec![
                label.to_string(),
                format!("{}", f.transient_faults + f.oom_faults + f.panics_contained),
                format!("{}", f.retries),
                format!("{}", f.reassigned_roots),
                format!("{}", f.reduce_drops + f.reduce_corruptions),
                fmt_seconds(overhead.max(0.0)),
                format!("{:+.1}%", 100.0 * overhead / clean.report.total_seconds),
                if identical { "yes".into() } else { "NO".into() },
            ]);
            points.push(FaultPoint {
                plan: label,
                graph: gname.clone(),
                nodes,
                roots: k,
                clean_seconds: clean.report.total_seconds,
                faulted_seconds: faulted.report.total_seconds,
                overhead_seconds: overhead,
                overhead_pct: 100.0 * overhead / clean.report.total_seconds,
                transient_faults: f.transient_faults,
                oom_faults: f.oom_faults,
                panics_contained: f.panics_contained,
                retries: f.retries,
                dead_gpus: f.dead_gpus,
                reassigned_roots: f.reassigned_roots,
                straggler_gpus: f.straggler_gpus,
                reduce_drops: f.reduce_drops,
                reduce_corruptions: f.reduce_corruptions,
                bitwise_identical: identical,
                checksum: format!("{:#018x}", faulted.report.checksum),
            });
        }
        print_table(
            &[
                "plan", "faults", "retries", "moved", "reduce", "overhead", "rel", "bitwise",
            ],
            &rows,
        );
        println!();
    }

    println!(
        "claim under test: any recoverable fault schedule is invisible in the scores \
         (root-ordered merge) and visible only in the clock"
    );
    write_json("BENCH_faults", &points);
    assert_eq!(
        mismatches, 0,
        "{mismatches} fault plan(s) changed the scores — fault tolerance is broken"
    );
}
