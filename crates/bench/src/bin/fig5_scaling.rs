//! E-fig5 — regenerate Figure 5: scaling by problem size for rgg,
//! delaunay, and kron families, comparing GPU-FAN, edge-parallel,
//! and the sampling method. GPU-FAN's series truncates where its
//! O(n²) predecessor matrix exhausts device memory, exactly as in
//! the paper.
//!
//! ```text
//! cargo run -p bc-bench --release --bin fig5_scaling \
//!     [--min_scale 10] [--max_scale 17] [--roots K] [--seed S]
//! ```

use bc_bench::{fmt_seconds, print_table, write_json, Args};
use bc_core::{BcOptions, Method, RootSelection};
use bc_graph::{gen, Csr, DatasetId};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    family: &'static str,
    scale: u32,
    vertices: usize,
    edges: u64,
    gpu_fan_seconds: Option<f64>,
    edge_parallel_seconds: f64,
    sampling_seconds: f64,
}

fn family_instance(family: &'static str, scale: u32, seed: u64) -> Csr {
    let n = 1usize << scale;
    match family {
        "rgg" => {
            let row = DatasetId::RggN2_20.paper_row();
            let deg = 2.0 * row.edges as f64 / row.vertices as f64;
            gen::random_geometric(n, gen::rgg_radius_for_degree(n, deg), seed)
        }
        "delaunay" => {
            let side = (n as f64).sqrt().round() as usize;
            gen::delaunay_like(side, side, seed)
        }
        "kron" => gen::kronecker(scale, 16, seed),
        _ => unreachable!(),
    }
}

fn main() {
    let args = Args::from_env();
    let min_scale: u32 = args.get("min_scale", 10);
    let max_scale: u32 = args.get("max_scale", 17);
    let k = args.roots(64);
    let seed = args.seed();

    println!(
        "Figure 5 analogue: scales 2^{min_scale}..2^{max_scale}, {k} sampled roots, seed = {seed}\n"
    );

    let mut points = Vec::new();
    for family in ["rgg", "delaunay", "kron"] {
        println!("-- {family} family --");
        let mut rows = Vec::new();
        for scale in min_scale..=max_scale {
            let g = family_instance(family, scale, seed);
            let opts = BcOptions {
                roots: RootSelection::Strided(k),
                ..Default::default()
            };
            let fan = match Method::GpuFan.run(&g, &opts) {
                Ok(run) => Some(run.report.full_seconds),
                Err(e) => {
                    eprintln!("  gpu-fan at scale {scale}: {e}");
                    None
                }
            };
            let ep = Method::EdgeParallel
                .run(&g, &opts)
                .expect("edge-parallel fits");
            let samp = Method::Sampling(bc_bench::scaled_sampling(g.num_vertices(), k))
                .run(&g, &opts)
                .expect("sampling fits");
            rows.push(vec![
                format!("2^{scale}"),
                g.num_vertices().to_string(),
                g.num_undirected_edges().to_string(),
                fan.map_or("OOM".to_string(), fmt_seconds),
                fmt_seconds(ep.report.full_seconds),
                fmt_seconds(samp.report.full_seconds),
            ]);
            points.push(Point {
                family,
                scale,
                vertices: g.num_vertices(),
                edges: g.num_undirected_edges(),
                gpu_fan_seconds: fan,
                edge_parallel_seconds: ep.report.full_seconds,
                sampling_seconds: samp.report.full_seconds,
            });
        }
        print_table(
            &["scale", "n", "m", "gpu-fan", "edge-parallel", "sampling"],
            &rows,
        );
        println!();
    }
    println!(
        "paper shape: sampling dominates at scale (>12x over GPU-FAN on rgg); GPU-FAN \
         OOMs first; edge-parallel competitive only on the smallest instances"
    );
    write_json("fig5_scaling", &points);
}
