//! The memory-scaling trajectory: degree-ordered relabeling, adaptive
//! index widths, and out-of-core partitioned execution at
//! Graph500-class sizes.
//!
//! Three stages, each with **hard asserts** (the bench is a gate, not
//! just a report):
//!
//! 1. **Relabel** — on scale-free analogues, `DegreeDesc` must
//!    strictly decrease both label-sensitive transaction models
//!    (`gather_lines` for the neighbor-indexed `d`/`σ` gathers,
//!    `distinct_line_transactions` for hub-frontier adjacency
//!    streaming) while the emitted scores stay bitwise identical.
//! 2. **Width** — the same graph forced to u64 indices must price
//!    strictly more coalesced traffic than the u32 layout, with
//!    bitwise-identical scores and identical warp work.
//! 3. **Partition** — a ≥ 2M-vertex Kronecker graph that fails the
//!    single-device pre-flight (the pre-partitioning behavior,
//!    still reproduced by `PartitionMode::Off`) must run to
//!    completion through the partitioned cluster path, and a
//!    recoverable fault plan must reproduce the fault-free scores
//!    bitwise.
//!
//! `--quick` shrinks stages 1–2 for CI; stage 3 keeps the 2M-vertex
//! floor in both modes because that *is* the acceptance bar.
//! Results land in `results/BENCH_scale.json`.

use bc_bench::{write_json, Args};
use bc_cluster::{run_cluster, run_cluster_with_faults, ClusterConfig, FaultPlan};
use bc_core::methods::cost::footprint;
use bc_core::{BcOptions, Method, PartitionMode, RootSelection, TraversalMode};
use bc_gpusim::{distinct_line_transactions, DeviceConfig, SimError};
use bc_graph::relabel::{apply, Relabeling};
use bc_graph::stats::gather_lines;
use bc_graph::{gen, Csr, CsrIndex};
use serde::Serialize;

/// One relabeling measurement.
#[derive(Serialize)]
struct RelabelRecord {
    graph: String,
    vertices: usize,
    edges: u64,
    gather_lines_none: u64,
    gather_lines_degree: u64,
    hub_transactions_none: u64,
    hub_transactions_degree: u64,
    bitwise_identical: bool,
}

/// The u32-vs-u64 traffic comparison.
#[derive(Serialize)]
struct WidthRecord {
    graph: String,
    vertices: usize,
    edges: u64,
    narrow_coalesced_bytes: u64,
    wide_coalesced_bytes: u64,
    narrow_seconds: f64,
    wide_seconds: f64,
}

/// The out-of-core cluster run.
#[derive(Serialize)]
struct PartitionRecord {
    graph: String,
    vertices: usize,
    edges: u64,
    device_mem_bytes: u64,
    graph_bytes: u64,
    local_bytes: u64,
    slices: usize,
    seed_errors_on_preflight: bool,
    fault_free_seconds: f64,
    faulted_seconds: f64,
    bitwise_identical_under_faults: bool,
}

#[derive(Serialize)]
struct ScaleRecord {
    seed: u64,
    quick: bool,
    relabel: Vec<RelabelRecord>,
    width: WidthRecord,
    partition: PartitionRecord,
}

/// Byte ranges of the `count` highest-degree vertices' adjacency rows
/// — the hub frontier a scale-free BFS converges onto within a level
/// or two. Label-sensitive: `DegreeDesc` packs these rows into a
/// dense prefix of `adj`, so the merged 128-byte line count drops.
fn hub_frontier_ranges(g: &Csr, count: usize) -> Vec<(u64, u64)> {
    let mut by_degree: Vec<u32> = g.vertices().collect();
    by_degree.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let ib = g.index_bytes();
    by_degree
        .iter()
        .take(count)
        .map(|&v| {
            let r = g.edge_range(v);
            (r.start as u64 * ib, r.end as u64 * ib)
        })
        .collect()
}

fn relabel_stage(name: &str, g: &Csr, roots: usize) -> RelabelRecord {
    let r = apply(g, Relabeling::DegreeDesc);
    let hubs = 512.min(g.num_vertices());

    let gl_none = gather_lines(g, 32);
    let gl_degree = gather_lines(&r.graph, 32);
    let tx_none = distinct_line_transactions(hub_frontier_ranges(g, hubs), 128);
    let tx_degree = distinct_line_transactions(hub_frontier_ranges(&r.graph, hubs), 128);

    // The coalescing win the whole pass exists for: strictly fewer
    // simulated memory transactions under the degree ordering.
    assert!(
        gl_degree < gl_none,
        "{name}: DegreeDesc must strictly decrease gather lines ({gl_degree} vs {gl_none})"
    );
    assert!(
        tx_degree < tx_none,
        "{name}: DegreeDesc must strictly decrease hub-frontier transactions \
         ({tx_degree} vs {tx_none})"
    );

    // And it must cost nothing in output: bitwise-identical scores.
    let opts = BcOptions {
        roots: RootSelection::Strided(roots),
        ..Default::default()
    };
    let base = Method::WorkEfficient.run(g, &opts).expect("baseline run");
    let resolved = opts.roots.resolve(g.num_vertices());
    let relabeled = Method::WorkEfficient
        .run(
            &r.graph,
            &BcOptions {
                roots: RootSelection::Explicit(r.map_roots(&resolved)),
                ..opts
            },
        )
        .expect("relabeled run");
    let restored = r.restore_scores(&relabeled.scores);
    let bitwise = base
        .scores
        .iter()
        .zip(&restored)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        bitwise,
        "{name}: relabeled scores must be bitwise identical"
    );

    println!(
        "relabel {name:<16} n={:<8} gather {gl_none} -> {gl_degree} ({:.1}% fewer)  \
         hub-tx {tx_none} -> {tx_degree} ({:.1}% fewer)  bitwise ok",
        g.num_vertices(),
        100.0 * (gl_none - gl_degree) as f64 / gl_none as f64,
        100.0 * (tx_none - tx_degree) as f64 / tx_none as f64,
    );
    RelabelRecord {
        graph: name.to_string(),
        vertices: g.num_vertices(),
        edges: g.num_undirected_edges(),
        gather_lines_none: gl_none,
        gather_lines_degree: gl_degree,
        hub_transactions_none: tx_none,
        hub_transactions_degree: tx_degree,
        bitwise_identical: bitwise,
    }
}

fn width_stage(name: &str, g: &Csr, roots: usize) -> WidthRecord {
    let wide = g.clone().with_index_width(CsrIndex::U64);
    let opts = BcOptions {
        roots: RootSelection::Strided(roots),
        ..Default::default()
    };
    let narrow_run = Method::WorkEfficient.run(g, &opts).expect("u32 run");
    let wide_run = Method::WorkEfficient.run(&wide, &opts).expect("u64 run");

    // Functionally invisible, twice the index traffic priced.
    assert!(
        narrow_run
            .scores
            .iter()
            .zip(&wide_run.scores)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "{name}: index width must not change scores"
    );
    let (nb, wb) = (
        narrow_run.report.counters.coalesced_bytes,
        wide_run.report.counters.coalesced_bytes,
    );
    assert!(
        wb > nb,
        "{name}: u64 indices must price more coalesced traffic ({wb} vs {nb})"
    );
    assert_eq!(
        narrow_run.report.counters.warp_steps, wide_run.report.counters.warp_steps,
        "{name}: index width changes traffic, not work"
    );

    println!(
        "width   {name:<16} n={:<8} coalesced u32 {nb} -> u64 {wb} (+{:.1}%)  \
         seconds {:.3e} -> {:.3e}",
        g.num_vertices(),
        100.0 * (wb - nb) as f64 / nb as f64,
        narrow_run.report.device_seconds,
        wide_run.report.device_seconds,
    );
    WidthRecord {
        graph: name.to_string(),
        vertices: g.num_vertices(),
        edges: g.num_undirected_edges(),
        narrow_coalesced_bytes: nb,
        wide_coalesced_bytes: wb,
        narrow_seconds: narrow_run.report.device_seconds,
        wide_seconds: wide_run.report.device_seconds,
    }
}

fn partition_stage(seed: u64, quick: bool) -> PartitionRecord {
    // The acceptance bar: >= 2M vertices in both modes (scale 21 =
    // 2,097,152), one notch larger when not in --quick.
    let scale = if quick { 21 } else { 22 };
    let edge_factor = 8;
    println!("generating kronecker scale {scale} (this is the 10-100x part)...");
    let g = gen::kronecker(scale, edge_factor, seed);
    assert!(g.num_vertices() >= 2_000_000);

    // Size the simulated device so the CSR cannot sit beside the
    // locals: capacity = locals + a quarter of the graph. The seed
    // code's pre-flight (PartitionMode::Off) must reject this
    // configuration; the partitioned path must complete on it.
    let method = Method::WorkEfficient;
    let base = DeviceConfig::gtx_titan();
    let graph_bytes = footprint::graph_bytes(&g);
    let local_bytes = method.local_bytes(&g, &base);
    let device = DeviceConfig {
        global_mem_bytes: local_bytes + graph_bytes / 4,
        ..base
    };

    let seed_err = method.run(
        &g,
        &BcOptions {
            device: device.clone(),
            roots: RootSelection::FirstK(1),
            partition: PartitionMode::Off,
            ..Default::default()
        },
    );
    let seed_errors_on_preflight = matches!(seed_err, Err(SimError::OutOfMemory { .. }));
    assert!(
        seed_errors_on_preflight,
        "the pre-partitioning pre-flight must reject this graph/device pair"
    );

    // Slice count, for the record (the cluster runner re-plans
    // identically inside its own pre-flight).
    let slices =
        bc_core::PartitionPlan::plan(&g, device.global_mem_bytes.saturating_sub(local_bytes))
            .expect("the CSR is sliceable at this budget")
            .num_slices();

    let cfg = ClusterConfig {
        nodes: 1,
        gpus_per_node: 3,
        device,
        method,
        traversal: TraversalMode::Push,
        ..ClusterConfig::keeneland(1)
    };
    let sample_roots = if quick { 3 } else { 6 };
    let clean = run_cluster(&g, &cfg, sample_roots).expect("partitioned cluster run");
    let plan = FaultPlan {
        transient_rate: 0.2,
        oom_rate: 0.05,
        panic_rate: 0.1,
        seed: seed ^ 0x5ca1e,
        ..FaultPlan::none()
    };
    let faulted = run_cluster_with_faults(&g, &cfg, sample_roots, &plan)
        .expect("recoverable faults must not kill the run");
    let bitwise = clean
        .scores
        .iter()
        .zip(&faulted.scores)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        bitwise,
        "partitioned scores must be bitwise identical under recoverable faults"
    );

    println!(
        "cluster kron-{scale}        n={:<8} m={} slices={slices} roots={sample_roots}  \
         fault-free {:.3}s faulted {:.3}s  bitwise ok (seed pre-flight: OOM)",
        g.num_vertices(),
        g.num_undirected_edges(),
        clean.report.total_seconds,
        faulted.report.total_seconds,
    );
    PartitionRecord {
        graph: format!("kronecker-{scale}-{edge_factor}"),
        vertices: g.num_vertices(),
        edges: g.num_undirected_edges(),
        device_mem_bytes: cfg.device.global_mem_bytes,
        graph_bytes,
        local_bytes,
        slices,
        seed_errors_on_preflight,
        fault_free_seconds: clean.report.total_seconds,
        faulted_seconds: faulted.report.total_seconds,
        bitwise_identical_under_faults: bitwise,
    }
}

fn main() {
    let args = Args::from_env();
    let seed = args.seed();
    let quick = args.flag("quick");

    let (kron_scale, ba_n, roots) = if quick {
        (15, 40_000, 12)
    } else {
        (18, 200_000, 24)
    };

    let kron = gen::kronecker(kron_scale, 8, seed);
    let ba = gen::barabasi_albert(ba_n, 8, seed ^ 1);
    let relabel = vec![
        relabel_stage(&format!("kronecker-{kron_scale}"), &kron, roots),
        relabel_stage("barabasi-albert", &ba, roots),
    ];
    let width = width_stage(&format!("kronecker-{kron_scale}"), &kron, roots);
    let partition = partition_stage(seed, quick);

    write_json(
        "BENCH_scale",
        &ScaleRecord {
            seed,
            quick,
            relabel,
            width,
            partition,
        },
    );
    println!("bench_scale: all hard asserts passed");
}
