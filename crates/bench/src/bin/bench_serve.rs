//! E-serve — the batched query server under seeded open- and
//! closed-loop load: latency percentiles, cache behavior under
//! dynamic-graph edits, and the batching win over an unbatched,
//! uncached baseline.
//!
//! ```text
//! cargo run -p bc-bench --release --bin bench_serve \
//!     [--seed S] [--reduction R] [--requests N] [--quick 1]
//! ```
//!
//! Writes `results/BENCH_serve.json` (`BENCH_serve_smoke.json` under
//! `--quick 1`) and the raw serve rows of every batched run to
//! `results/BENCH_serve.jsonl` (`_smoke.jsonl`).
//!
//! Three claims under test, all asserted hard:
//! * batched + cached responses are **bitwise identical** to
//!   per-query cold recomputes on the shadow-edited graph;
//! * the cache is exercised (hit rate > 0) on every workload;
//! * coalescing + caching strictly reduces the total priced device
//!   seconds versus the unbatched, uncached baseline serving the
//!   same stream.

use bc_bench::{fmt_seconds, print_table, write_json, Args};
use bc_graph::DatasetId;
use bc_metrics::{serve_to_jsonl, ServeRow};
use bc_serve::{percentile, Answer, BcServer, ClosedLoop, Event, QueryMix, ServeConfig};
use bc_verify::{cold_references, serve_stream};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct WorkloadPoint {
    dataset: &'static str,
    mode: &'static str,
    vertices: usize,
    requests: usize,
    edits: usize,
    batches: usize,
    window_seconds: f64,
    p50_seconds: f64,
    p95_seconds: f64,
    p99_seconds: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    cache_hit_rate: f64,
    /// Roots dropped by edits' delta invalidation.
    invalidated_roots: u64,
    /// Roots carried across epochs (provably untouched by the edit).
    carried_roots: u64,
    /// Edits that degraded to full invalidation.
    full_invalidations: usize,
    priced_seconds_total: f64,
    host_wall_seconds: f64,
}

#[derive(Serialize)]
struct BatchingPoint {
    dataset: &'static str,
    requests: usize,
    batched_priced_seconds: f64,
    unbatched_priced_seconds: f64,
    /// Unbatched / batched priced seconds (> 1 is a win).
    batching_gain: f64,
    bitwise_identical_to_cold: bool,
}

#[derive(Serialize)]
struct Report {
    reduction: u32,
    seed: u64,
    requests: usize,
    workloads: Vec<WorkloadPoint>,
    batching: Vec<BatchingPoint>,
}

fn priced_total(rows: &[ServeRow]) -> f64 {
    rows.iter()
        .filter(|r| r.event == "batch")
        .map(|r| r.priced_seconds)
        .sum()
}

fn answers_bitwise_eq(a: &Answer, b: &Answer) -> bool {
    fn pairs(x: &[(u32, f64)], y: &[(u32, f64)]) -> bool {
        x.len() == y.len()
            && x.iter()
                .zip(y)
                .all(|(p, q)| p.0 == q.0 && p.1.to_bits() == q.1.to_bits())
    }
    match (a, b) {
        (Answer::TopK(x), Answer::TopK(y)) => pairs(x, y),
        (Answer::SubgraphBc(x), Answer::SubgraphBc(y)) => pairs(x, y),
        (Answer::PerVertex(x), Answer::PerVertex(y)) => x.to_bits() == y.to_bits(),
        _ => false,
    }
}

fn main() {
    let args = Args::from_env();
    let quick = args.get("quick", 0u32) == 1;
    let seed = args.seed();
    let reduction = args.reduction(if quick { 9 } else { 7 });
    let requests = args.get("requests", if quick { 10usize } else { 40 });
    let edits = if quick { 2 } else { 4 };

    let datasets: &[DatasetId] = if quick {
        &[DatasetId::Smallworld]
    } else {
        &[
            DatasetId::Smallworld,
            DatasetId::CaidaRouterLevel,
            DatasetId::DelaunayN20,
        ]
    };

    let mut workloads = Vec::new();
    let mut batching = Vec::new();
    let mut all_rows: Vec<ServeRow> = Vec::new();

    for &id in datasets {
        let g = id.generate(reduction, seed);
        let name = id.name();
        let batched = ServeConfig {
            window: 0.02,
            ..ServeConfig::default()
        };

        // ---- open loop: batched + cached, held to cold recompute ----
        let events = serve_stream(&g, requests, edits, seed);
        let n_queries = events
            .iter()
            .filter(|e| matches!(e, Event::Query(_)))
            .count();
        let refs = cold_references(&g, &batched, &events);
        let t = Instant::now();
        let mut server = BcServer::single(g.clone(), batched.clone());
        let out = server.run(events.clone()).expect("batched serving run");
        let wall = t.elapsed().as_secs_f64();

        let mut bitwise = true;
        for resp in &out.responses {
            if !answers_bitwise_eq(&resp.answer, &refs[&resp.id]) {
                bitwise = false;
            }
        }
        assert!(
            bitwise,
            "{name}: batched responses diverge from cold recompute"
        );
        let stats = server.cache_stats();
        assert!(
            stats.hits > 0,
            "{name}: open-loop workload never hit the cache"
        );

        let latencies: Vec<f64> = out.responses.iter().map(|r| r.latency).collect();
        workloads.push(WorkloadPoint {
            dataset: name,
            mode: "open",
            vertices: g.num_vertices(),
            requests: n_queries,
            edits,
            batches: out.rows.iter().filter(|r| r.event == "batch").count(),
            window_seconds: batched.window,
            p50_seconds: percentile(&latencies, 50.0),
            p95_seconds: percentile(&latencies, 95.0),
            p99_seconds: percentile(&latencies, 99.0),
            cache_hits: stats.hits,
            cache_misses: stats.misses,
            cache_evictions: stats.evictions,
            cache_hit_rate: stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64,
            invalidated_roots: out.rows.iter().map(|r| r.invalidated_roots).sum(),
            carried_roots: out.rows.iter().map(|r| r.carried_roots).sum(),
            full_invalidations: out.rows.iter().filter(|r| r.full_invalidation).count(),
            priced_seconds_total: priced_total(&out.rows),
            host_wall_seconds: wall,
        });
        all_rows.extend(out.rows.iter().cloned());

        // ---- unbatched, uncached baseline on the same stream ----
        let unbatched = ServeConfig {
            window: 0.0,
            cache_budget_bytes: 0,
            ..ServeConfig::default()
        };
        let mut baseline = BcServer::single(g.clone(), unbatched);
        let base_out = baseline.run(events).expect("unbatched serving run");
        for resp in &base_out.responses {
            assert!(
                answers_bitwise_eq(&resp.answer, &refs[&resp.id]),
                "{name}: unbatched baseline diverges from cold recompute"
            );
        }
        let batched_priced = priced_total(&out.rows);
        let unbatched_priced = priced_total(&base_out.rows);
        assert!(
            batched_priced < unbatched_priced,
            "{name}: batching+caching did not reduce priced seconds \
             ({batched_priced} vs {unbatched_priced})"
        );
        batching.push(BatchingPoint {
            dataset: name,
            requests: n_queries,
            batched_priced_seconds: batched_priced,
            unbatched_priced_seconds: unbatched_priced,
            batching_gain: unbatched_priced / batched_priced,
            bitwise_identical_to_cold: bitwise,
        });

        // ---- closed loop: think-time throttled clients ----
        let clients = if quick { 2 } else { 4 };
        let per_client = requests.div_ceil(clients);
        let mut driver = ClosedLoop::new(
            "default",
            QueryMix::for_graph(g.num_vertices()),
            clients,
            per_client,
            10.0,
            seed,
        );
        let t = Instant::now();
        let mut server = BcServer::single(g.clone(), batched.clone());
        let mut closed_latencies = Vec::new();
        let rows_before = 0usize;
        while !driver.done() {
            let wave = driver.next_wave();
            let out = server.run(wave).expect("closed-loop wave");
            closed_latencies.extend(out.responses.iter().map(|r| r.latency));
            let completions: Vec<(u64, f64)> =
                out.responses.iter().map(|r| (r.id, r.completed)).collect();
            driver.record_completions(&completions);
        }
        let wall = t.elapsed().as_secs_f64();
        let stats = server.cache_stats();
        assert!(
            stats.hits > 0,
            "{name}: closed-loop workload never hit the cache"
        );
        workloads.push(WorkloadPoint {
            dataset: name,
            mode: "closed",
            vertices: g.num_vertices(),
            requests: closed_latencies.len(),
            edits: 0,
            batches: server.rows()[rows_before..]
                .iter()
                .filter(|r| r.event == "batch")
                .count(),
            window_seconds: batched.window,
            p50_seconds: percentile(&closed_latencies, 50.0),
            p95_seconds: percentile(&closed_latencies, 95.0),
            p99_seconds: percentile(&closed_latencies, 99.0),
            cache_hits: stats.hits,
            cache_misses: stats.misses,
            cache_evictions: stats.evictions,
            cache_hit_rate: stats.hits as f64 / (stats.hits + stats.misses).max(1) as f64,
            invalidated_roots: 0,
            carried_roots: 0,
            full_invalidations: 0,
            priced_seconds_total: priced_total(server.rows()),
            host_wall_seconds: wall,
        });
        all_rows.extend(server.rows().iter().cloned());
    }

    // ---- report ----
    println!("\nworkloads:");
    print_table(
        &[
            "dataset", "mode", "req", "batches", "p50", "p95", "p99", "hit rate", "priced",
        ],
        &workloads
            .iter()
            .map(|w| {
                vec![
                    w.dataset.to_string(),
                    w.mode.to_string(),
                    w.requests.to_string(),
                    w.batches.to_string(),
                    fmt_seconds(w.p50_seconds),
                    fmt_seconds(w.p95_seconds),
                    fmt_seconds(w.p99_seconds),
                    format!("{:.0}%", w.cache_hit_rate * 100.0),
                    fmt_seconds(w.priced_seconds_total),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("\nbatching vs unbatched baseline (same stream, cold reference checked):");
    print_table(
        &["dataset", "req", "batched", "unbatched", "gain", "bitwise"],
        &batching
            .iter()
            .map(|b| {
                vec![
                    b.dataset.to_string(),
                    b.requests.to_string(),
                    fmt_seconds(b.batched_priced_seconds),
                    fmt_seconds(b.unbatched_priced_seconds),
                    format!("{:.2}x", b.batching_gain),
                    b.bitwise_identical_to_cold.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let report = Report {
        reduction,
        seed,
        requests,
        workloads,
        batching,
    };
    let stem = if quick {
        "BENCH_serve_smoke"
    } else {
        "BENCH_serve"
    };
    write_json(stem, &report);
    let jsonl_path = bc_bench::out_dir().join(format!("{stem}.jsonl"));
    std::fs::write(&jsonl_path, serve_to_jsonl(&all_rows)).expect("write serve rows");
    eprintln!("wrote {}", jsonl_path.display());
}
