//! E-tab4 — regenerate Table IV: 64-node (192-GPU) GTEPS for the
//! three scaling families, speedup over 1 node, and the
//! isolated-vertex TEPS adjustment for the Kronecker graph.
//!
//! ```text
//! cargo run -p bc-bench --release --bin table4_gteps [--reduction R] [--roots K] [--seed S]
//! ```

use bc_bench::{print_table, write_json, Args};
use bc_cluster::{run_cluster, ClusterConfig};
use bc_core::teps;
use bc_graph::DatasetId;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    dataset: &'static str,
    gteps_64: f64,
    gteps_adjusted: f64,
    speedup_over_1_node: f64,
    isolated_vertices: usize,
    paper_gteps: f64,
    paper_speedup: f64,
}

fn paper_row(d: DatasetId) -> (f64, f64) {
    match d {
        DatasetId::RggN2_20 => (8.25, 63.34),
        DatasetId::DelaunayN20 => (9.37, 63.24),
        DatasetId::KronG500Logn20 => (24.13, 63.75),
        _ => (f64::NAN, f64::NAN),
    }
}

fn main() {
    let args = Args::from_env();
    let reduction = args.reduction(2);
    let k = args.roots(96);
    let seed = args.seed();

    println!("Table IV analogue (reduction = {reduction}, {k} sampled roots, seed = {seed})\n");

    let graphs = [
        DatasetId::RggN2_20,
        DatasetId::DelaunayN20,
        DatasetId::KronG500Logn20,
    ];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for d in graphs {
        let g = d.generate(reduction, seed);
        let isolated = g.num_isolated();
        let one = run_cluster(&g, &ClusterConfig::keeneland(1), k).expect("1-node run fits");
        let sixty_four =
            run_cluster(&g, &ClusterConfig::keeneland(64), k).expect("64-node run fits");
        let speedup = one.report.total_seconds / sixty_four.report.total_seconds;
        let adjusted = teps::teps_bc_adjusted(
            g.num_undirected_edges(),
            g.num_vertices() as u64,
            isolated as u64,
            sixty_four.report.total_seconds,
        ) / 1e9;
        let (pg, ps) = paper_row(d);
        rows.push(vec![
            d.name().to_string(),
            format!("{:.2}", sixty_four.report.gteps()),
            format!("{adjusted:.2}"),
            format!("{speedup:.2}x"),
            isolated.to_string(),
            format!("{pg:.2}"),
            format!("{ps:.2}x"),
        ]);
        records.push(Record {
            dataset: d.name(),
            gteps_64: sixty_four.report.gteps(),
            gteps_adjusted: adjusted,
            speedup_over_1_node: speedup,
            isolated_vertices: isolated,
            paper_gteps: pg,
            paper_speedup: ps,
        });
    }
    print_table(
        &[
            "graph",
            "64-node GTEPS",
            "adj. GTEPS",
            "speedup/1node",
            "isolated",
            "GTEPS(paper)",
            "speedup(paper)",
        ],
        &rows,
    );
    println!(
        "\npaper shape: near-perfect 63-64x speedups; kron's raw GTEPS inflated by its \
         isolated vertices (the adjusted column discounts them, §V-D)"
    );
    write_json("table4_gteps", &records);
}
