//! Bench trajectory: push vs direction-optimized (auto) traversal
//! across graph classes, at the scale where the per-vertex search
//! state spills the simulated L2 (n ≈ 200k, the regime the bottom-up
//! kernel is built for).
//!
//! The direction-optimizing contract is that `--traversal` changes
//! *simulated time* only: scores are bitwise identical in every mode
//! and at every host thread count. This binary verifies the contract
//! on every row, measures the simulated push/pull/auto times, and
//! writes `results/BENCH_direction.json` with the push-vs-auto
//! speedups — expected ≥ 1.5× on the frontier-saturating classes
//! (small-world, scale-free) and ≈ 1.0× (never worse than 5%) on
//! the high-diameter classes (road, mesh) where the Beamer automaton
//! must simply stay out of the way.
//!
//! Flags: `--roots K` (strided sample, default 8), `--seed S`,
//! `--quick 1` (CI smoke: ~20× smaller graphs, no speedup claims —
//! small graphs fit in L2, where pull has nothing to win).

use bc_bench::{fmt_seconds, print_table, write_json, Args};
use bc_core::{BcOptions, Method, RootSelection, TraversalMode};
use bc_graph::{gen, Csr};
use serde::Serialize;

#[derive(Serialize)]
struct DirectionRecord {
    graph: String,
    n: usize,
    m: u64,
    push_seconds: f64,
    pull_seconds: f64,
    auto_seconds: f64,
    /// push_seconds / auto_seconds.
    auto_speedup: f64,
    /// push_seconds / pull_seconds.
    pull_speedup: f64,
    /// (push, bottom-up) forward launches of the auto run.
    auto_launches: (u64, u64),
}

#[derive(Serialize)]
struct DirectionBench {
    roots: usize,
    seed: u64,
    quick: bool,
    records: Vec<DirectionRecord>,
}

fn main() {
    let args = Args::from_env();
    let seed = args.seed();
    let roots = args.roots(8);
    let quick = args.get("quick", 0u32) != 0;

    // Full scale keeps 12n bytes (the push working set of d + σ + δ)
    // well past the Titan's 1.5 MB L2 while pull's 4n σ bytes and the
    // n/8 bitmap stay inside it — the operating point DESIGN.md §10
    // prices. Scale-free uses preferential attachment rather than
    // Kronecker because n is freely tunable into that window (2^18 =
    // 262144 undershoots it, and RMAT's isolated vertices dilute the
    // saturated levels the bottom-up kernel feeds on).
    let graphs: Vec<(&str, Csr)> = if quick {
        vec![
            ("smallworld", gen::watts_strogatz(16_000, 16, 0.1, seed)),
            ("scalefree", gen::barabasi_albert(15_000, 12, seed)),
            ("road", gen::road_network(10_000, seed)),
            ("mesh", gen::triangulated_grid(100, 100, seed)),
        ]
    } else {
        vec![
            ("smallworld", gen::watts_strogatz(350_000, 16, 0.1, seed)),
            ("scalefree", gen::barabasi_albert(300_000, 12, seed)),
            ("road", gen::road_network(200_000, seed)),
            ("mesh", gen::triangulated_grid(400, 500, seed)),
        ]
    };

    let mut records = Vec::new();
    let mut rows = Vec::new();
    for (name, g) in &graphs {
        let run_mode = |traversal: TraversalMode, threads: usize| {
            Method::WorkEfficient
                .run(
                    g,
                    &BcOptions {
                        roots: RootSelection::Strided(roots),
                        threads,
                        traversal,
                        ..Default::default()
                    },
                )
                .expect("fits in device memory")
        };
        let push = run_mode(TraversalMode::Push, 0);
        let pull = run_mode(TraversalMode::Pull, 0);
        let auto = run_mode(TraversalMode::Auto, 0);

        // The contract this harness exists to watch: the traversal
        // direction must not perturb a single bit of the scores, at
        // any thread count.
        assert_eq!(push.scores, pull.scores, "{name}: pull");
        assert_eq!(push.scores, auto.scores, "{name}: auto");
        let auto_1 = run_mode(TraversalMode::Auto, 1);
        assert_eq!(auto.scores, auto_1.scores, "{name}: auto threads");
        assert_eq!(
            auto.report.per_root_seconds, auto_1.report.per_root_seconds,
            "{name}: simulated time must not depend on host threads"
        );

        let auto_launches = auto
            .report
            .traversal_iterations
            .expect("auto runs are direction-aware");
        let rec = DirectionRecord {
            graph: name.to_string(),
            n: g.num_vertices(),
            m: g.num_undirected_edges(),
            push_seconds: push.report.full_seconds,
            pull_seconds: pull.report.full_seconds,
            auto_seconds: auto.report.full_seconds,
            auto_speedup: push.report.full_seconds / auto.report.full_seconds,
            pull_speedup: push.report.full_seconds / pull.report.full_seconds,
            auto_launches,
        };
        rows.push(vec![
            name.to_string(),
            g.num_vertices().to_string(),
            g.num_undirected_edges().to_string(),
            fmt_seconds(rec.push_seconds),
            fmt_seconds(rec.pull_seconds),
            fmt_seconds(rec.auto_seconds),
            format!("{:.2}x", rec.auto_speedup),
            format!("{}/{}", auto_launches.0, auto_launches.1),
        ]);
        records.push(rec);
    }

    println!(
        "direction-optimizing traversal: {roots} strided roots, work-efficient method{}\n",
        if quick { " (quick smoke scale)" } else { "" }
    );
    print_table(
        &[
            "graph", "n", "m", "push", "pull", "auto", "speedup", "fwd p/b",
        ],
        &rows,
    );

    write_json(
        // Quick smoke runs must not clobber the committed full-scale
        // trajectory.
        if quick {
            "BENCH_direction_smoke"
        } else {
            "BENCH_direction"
        },
        &DirectionBench {
            roots,
            seed,
            quick,
            records,
        },
    );
}
