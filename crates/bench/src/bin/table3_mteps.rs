//! E-tab3 — regenerate Table III: MTEPS of the edge-parallel
//! baseline vs the sampling method on the eight mid-size graphs,
//! with the geometric-mean speedup (the paper's headline 2.71×).
//!
//! ```text
//! cargo run -p bc-bench --release --bin table3_mteps [--reduction R] [--roots K] [--seed S]
//! ```

use bc_bench::{fmt_seconds, print_table, write_json, Args};
use bc_core::{teps, BcOptions, Method, RootSelection};
use bc_graph::DatasetId;
use serde::Serialize;

/// The paper's Table III values for side-by-side comparison.
fn paper_row(d: DatasetId) -> (f64, f64, f64) {
    match d.name() {
        "af_shell9" => (18.00, 239.66, 13.31),
        "caidaRouterLevel" => (180.98, 182.21, 1.01),
        "cnr-2000" => (141.75, 220.64, 1.56),
        "com-amazon" => (109.72, 127.79, 1.16),
        "delaunay_n20" => (14.19, 145.09, 10.23),
        "loc-gowalla" => (209.56, 219.31, 1.05),
        "luxembourg.osm" => (4.74, 39.42, 8.31),
        "smallworld" => (297.48, 398.63, 1.34),
        _ => (f64::NAN, f64::NAN, f64::NAN),
    }
}

#[derive(Serialize)]
struct Record {
    dataset: &'static str,
    vertices: usize,
    edges: u64,
    edge_parallel_mteps: f64,
    sampling_mteps: f64,
    speedup: f64,
    paper_edge_parallel_mteps: f64,
    paper_sampling_mteps: f64,
    paper_speedup: f64,
    edge_parallel_seconds: f64,
    sampling_seconds: f64,
}

fn main() {
    let args = Args::from_env();
    let reduction = args.reduction(0);
    let k = args.roots(64);
    let seed = args.seed();

    println!("Table III analogue (reduction = {reduction}, {k} sampled roots, seed = {seed})");
    println!("MTEPS = millions of traversed edges per second, TEPS_BC = mn/t\n");

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut factors = Vec::new();
    for d in DatasetId::TABLE3 {
        let g = d.generate(reduction, seed);
        let opts = BcOptions {
            roots: RootSelection::Strided(k),
            ..Default::default()
        };
        let ep = Method::EdgeParallel
            .run(&g, &opts)
            .expect("edge-parallel fits");
        let samp = Method::Sampling(bc_bench::scaled_sampling(g.num_vertices(), k))
            .run(&g, &opts)
            .expect("sampling fits");
        let speedup = ep.report.full_seconds / samp.report.full_seconds;
        factors.push(speedup);
        let (pep, psamp, pspeed) = paper_row(d);
        rows.push(vec![
            d.name().to_string(),
            format!("{:.2}", ep.report.mteps()),
            format!("{:.2}", samp.report.mteps()),
            format!("{speedup:.2}x"),
            format!("{pep:.2}"),
            format!("{psamp:.2}"),
            format!("{pspeed:.2}x"),
        ]);
        records.push(Record {
            dataset: d.name(),
            vertices: g.num_vertices(),
            edges: g.num_undirected_edges(),
            edge_parallel_mteps: ep.report.mteps(),
            sampling_mteps: samp.report.mteps(),
            speedup,
            paper_edge_parallel_mteps: pep,
            paper_sampling_mteps: psamp,
            paper_speedup: pspeed,
            edge_parallel_seconds: ep.report.full_seconds,
            sampling_seconds: samp.report.full_seconds,
        });
        eprintln!(
            "  {}: EP {} vs sampling {}",
            d.name(),
            fmt_seconds(ep.report.full_seconds),
            fmt_seconds(samp.report.full_seconds)
        );
    }
    println!();
    print_table(
        &[
            "graph",
            "EP MTEPS",
            "samp MTEPS",
            "speedup",
            "EP(paper)",
            "samp(paper)",
            "speedup(paper)",
        ],
        &rows,
    );
    let gm = teps::geometric_mean(&factors);
    println!("\ngeometric-mean speedup: {gm:.2}x   (paper: 2.71x)");
    write_json("table3_mteps", &records);
}
