//! Bench trajectory: host wall-clock of the parallel multi-root
//! runner at 1 and N threads across the generator suite, with the
//! simulated device numbers held fixed.
//!
//! The parallel runner's contract is that the thread count changes
//! *wall-clock* time only: scores are bitwise identical and the
//! simulated `RunReport` (full_seconds, MTEPS) is unchanged, because
//! per-root pricing is root-pure and merged in shard order. This
//! binary measures the wall-clock trajectory and verifies the
//! contract on every row, writing `results/BENCH_parallel.json`.
//!
//! Flags: `--roots K` (strided sample, default 96), `--threads N`
//! (parallel arm, default = all host cores), `--seed S`.

use bc_bench::{fmt_seconds, print_table, write_json, Args};
use bc_core::{BcOptions, HybridParams, Method, RootSelection};
use bc_graph::{gen, Csr};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct BenchRecord {
    graph: String,
    n: usize,
    m: u64,
    method: String,
    threads: usize,
    wall_seconds: f64,
    simulated_seconds: f64,
    mteps: f64,
}

#[derive(Serialize)]
struct BenchTrajectory {
    /// Cores the host actually exposes — speedup is bounded by this,
    /// whatever thread count was requested.
    host_cores: usize,
    parallel_threads: usize,
    roots: usize,
    seed: u64,
    records: Vec<BenchRecord>,
}

fn main() {
    let args = Args::from_env();
    let seed = args.seed();
    let roots = args.roots(96);
    let host_cores = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let par_threads: usize = args.get("threads", host_cores.max(2));

    let graphs: Vec<(&str, Csr)> = vec![
        ("smallworld", gen::watts_strogatz(50_000, 10, 0.1, seed)),
        ("mesh", gen::triangulated_grid(200, 250, seed)),
        ("road", gen::road_network(50_000, seed)),
        ("kron", gen::kronecker(15, 8, seed)),
    ];
    let methods = [
        Method::WorkEfficient,
        Method::Hybrid(HybridParams::default()),
    ];

    let mut records = Vec::new();
    let mut rows = Vec::new();
    for (name, g) in &graphs {
        for method in &methods {
            let run_at = |threads: usize| {
                let opts = BcOptions {
                    roots: RootSelection::Strided(roots),
                    threads,
                    ..Default::default()
                };
                let t = Instant::now();
                let run = method.run(g, &opts).expect("fits in device memory");
                (t.elapsed().as_secs_f64(), run)
            };
            let (wall_1, run_1) = run_at(1);
            let (wall_n, run_n) = run_at(par_threads);

            // The contract this harness exists to watch: thread count
            // must not perturb a single bit of the results.
            assert_eq!(run_1.scores, run_n.scores, "{name}/{}", method.name());
            assert_eq!(
                run_1.report.full_seconds,
                run_n.report.full_seconds,
                "{name}/{}: simulated time must not depend on host threads",
                method.name()
            );

            for (threads, wall, run) in [(1, wall_1, &run_1), (par_threads, wall_n, &run_n)] {
                records.push(BenchRecord {
                    graph: name.to_string(),
                    n: g.num_vertices(),
                    m: g.num_undirected_edges(),
                    method: method.name().to_string(),
                    threads,
                    wall_seconds: wall,
                    simulated_seconds: run.report.full_seconds,
                    mteps: run.report.mteps(),
                });
            }
            rows.push(vec![
                name.to_string(),
                method.name().to_string(),
                g.num_vertices().to_string(),
                g.num_undirected_edges().to_string(),
                fmt_seconds(wall_1),
                fmt_seconds(wall_n),
                format!("{:.2}x", wall_1 / wall_n.max(1e-12)),
                fmt_seconds(run_1.report.full_seconds),
                format!("{:.1}", run_1.report.mteps()),
            ]);
        }
    }

    println!(
        "parallel runner trajectory: {roots} strided roots, 1 vs {par_threads} threads \
         ({host_cores} host cores)\n"
    );
    print_table(
        &[
            "graph",
            "method",
            "n",
            "m",
            "wall@1",
            &format!("wall@{par_threads}"),
            "speedup",
            "sim-full",
            "MTEPS",
        ],
        &rows,
    );

    write_json(
        "BENCH_parallel",
        &BenchTrajectory {
            host_cores,
            parallel_threads: par_threads,
            roots,
            seed,
            records,
        },
    );
}
