//! E-durability — price the durability layer end to end. Three
//! questions, each answered with hard asserts rather than eyeballs:
//!
//! 1. **Kill-at-k% sweep** — the durable runner is killed at 10…90%
//!    of its schedule, resumed from the checkpoint directory, and the
//!    resumed scores must be *bitwise identical* to the uninterrupted
//!    run. The sweep prices resume cost against a full recompute.
//! 2. **Degradation ladder, rung 1** — the PR-8 seed scenario (CSR
//!    larger than device memory, pre-flight OOM) must complete via
//!    out-of-core partitioning with the decision in the report.
//! 3. **Degradation ladder, rung 2** — a method whose footprint no
//!    partitioning can fix (GPU-FAN's O(n²)) must complete via the
//!    sampled-approximation fallback with a finite error bound.
//!
//! ```text
//! cargo run -p bc-bench --release --bin bench_durability \
//!     [--scale 14] [--nodes 2] [--roots K] [--seed S] [--quick 1]
//! ```
//!
//! Writes `results/BENCH_durability.json`.

use bc_bench::{fmt_seconds, print_table, write_json, Args};
use bc_cluster::{run_cluster_durable, ClusterConfig, ClusterError, DurabilityOptions, FaultPlan};
use bc_core::methods::cost::footprint;
use bc_core::{BcOptions, Degradation, Method, PartitionMode, RootSelection};
use bc_gpusim::{DeviceConfig, SimError};
use bc_graph::gen;
use serde::Serialize;
use std::path::PathBuf;

#[derive(Serialize)]
struct KillPoint {
    graph: String,
    kill_pct: u32,
    planned_roots: usize,
    completed_at_kill: usize,
    resumed_roots: usize,
    full_seconds: f64,
    resume_seconds: f64,
    resume_savings_pct: f64,
    bitwise_identical: bool,
    checksum: String,
}

#[derive(Serialize)]
struct LadderRecord {
    graph: String,
    method: String,
    preflight_rejects: bool,
    rung: String,
    slices: usize,
    sources: usize,
    error_bound: f64,
    total_seconds: f64,
}

#[derive(Serialize)]
struct DurabilityBench {
    kill_sweep: Vec<KillPoint>,
    ladder: Vec<LadderRecord>,
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("bc-bench-durability-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let args = Args::from_env();
    let quick: u32 = args.get("quick", 0);
    let scale: u32 = args.get("scale", if quick > 0 { 11 } else { 14 });
    let nodes: usize = args.get("nodes", 2);
    let k = args.roots(if quick > 0 { 32 } else { 96 });
    let seed = args.seed();

    let g = gen::kronecker(scale, 8, seed);
    let gname = format!("rmat-2^{scale}");
    let cfg = ClusterConfig::keeneland(nodes);
    println!(
        "Durability: kill-at-k%% sweep on {gname} (n={}), {nodes} node(s) x 3 GPUs, \
         {k} sampled roots, seed = {seed}\n",
        g.num_vertices()
    );

    // Recoverable background noise so the sweep prices checkpointing
    // under realistic conditions, not a sterile run. Transient faults
    // are bitwise-invisible by the fault-tolerance layer's contract.
    let overlay = FaultPlan {
        transient_rate: 0.1,
        seed: seed ^ 0xd0_0d,
        ..FaultPlan::none()
    };
    let baseline = run_cluster_durable(&g, &cfg, k, &overlay, &DurabilityOptions::default())
        .expect("uninterrupted baseline run");

    let mut kill_sweep = Vec::new();
    let mut rows = Vec::new();
    for kill_pct in [10u32, 30, 50, 70, 90] {
        let dir = scratch_dir(&format!("kill{kill_pct}"));
        let opts = DurabilityOptions {
            checkpoint: Some(dir.clone()),
            ..DurabilityOptions::default()
        };
        let kill_plan = FaultPlan {
            kill_fraction: Some(f64::from(kill_pct) / 100.0),
            ..overlay.clone()
        };
        let completed_at_kill = match run_cluster_durable(&g, &cfg, k, &kill_plan, &opts) {
            Err(ClusterError::ProcessKilled {
                completed_roots,
                planned_roots,
                ..
            }) => {
                assert_eq!(planned_roots, k, "the kill interrupted the planned sweep");
                completed_roots
            }
            Ok(_) => panic!("kill at {kill_pct}% must interrupt the run"),
            Err(other) => panic!("expected ProcessKilled, got {other}"),
        };
        // The resume models a restart after an external SIGKILL: same
        // configuration, same checkpoint directory, kill disarmed.
        let resume_plan = FaultPlan {
            kill_fraction: None,
            ..kill_plan
        };
        let resumed = run_cluster_durable(&g, &cfg, k, &resume_plan, &opts)
            .expect("resume completes the interrupted run");
        let bitwise = resumed
            .scores
            .iter()
            .zip(&baseline.scores)
            .all(|(a, b)| a.to_bits() == b.to_bits())
            && resumed.report.checksum == baseline.report.checksum;
        assert!(
            bitwise,
            "kill at {kill_pct}%: resumed scores must be bitwise identical to uninterrupted"
        );
        let resumed_roots = resumed.report.roots_sampled;
        assert_eq!(
            resumed_roots,
            k - completed_at_kill,
            "resume re-runs exactly the missing roots"
        );
        // Reported totals are extrapolated to the full n-root
        // computation, so the honest resume-cost metric is the share
        // of root-work the checkpoint made unnecessary.
        let savings = 100.0 * completed_at_kill as f64 / k as f64;
        rows.push(vec![
            format!("{kill_pct}%"),
            format!("{completed_at_kill}/{k}"),
            format!("{resumed_roots}"),
            fmt_seconds(baseline.report.total_seconds),
            fmt_seconds(resumed.report.total_seconds),
            format!("{savings:+.1}%"),
            "yes".into(),
        ]);
        kill_sweep.push(KillPoint {
            graph: gname.clone(),
            kill_pct,
            planned_roots: k,
            completed_at_kill,
            resumed_roots,
            full_seconds: baseline.report.total_seconds,
            resume_seconds: resumed.report.total_seconds,
            resume_savings_pct: savings,
            bitwise_identical: bitwise,
            checksum: format!("{:#018x}", resumed.report.checksum),
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    print_table(
        &[
            "kill",
            "done",
            "resumed",
            "full",
            "resume",
            "work saved",
            "bitwise",
        ],
        &rows,
    );
    println!();

    // Rung 1: the PR-8 scenario — device memory a quarter of the CSR,
    // single-device pre-flight rejects, the cluster ladder streams the
    // graph out-of-core and records the decision.
    let method = Method::WorkEfficient;
    let base = DeviceConfig::tesla_m2090();
    let graph_bytes = footprint::graph_bytes(&g);
    let local_bytes = method.local_bytes(&g, &base);
    let squeezed = DeviceConfig {
        global_mem_bytes: local_bytes + graph_bytes / 4,
        ..base
    };
    let preflight_rejects = matches!(
        method.run(
            &g,
            &BcOptions {
                device: squeezed.clone(),
                roots: RootSelection::FirstK(1),
                partition: PartitionMode::Off,
                ..Default::default()
            },
        ),
        Err(SimError::OutOfMemory { .. })
    );
    assert!(preflight_rejects, "the seed scenario must OOM pre-flight");
    let squeezed_cfg = ClusterConfig {
        method: method.clone(),
        device: squeezed,
        ..ClusterConfig::keeneland(1)
    };
    let ladder_roots = if quick > 0 { 4 } else { 8 };
    let rescued = run_cluster_durable(
        &g,
        &squeezed_cfg,
        ladder_roots,
        &FaultPlan::none(),
        &DurabilityOptions {
            degrade: true,
            ..DurabilityOptions::default()
        },
    )
    .expect("the ladder turns the seed OOM into a completed run");
    let slices = match rescued.report.degradation {
        Some(Degradation::Partitioned { slices }) => {
            assert!(slices >= 2);
            slices
        }
        ref other => panic!("expected the Partitioned rung, got {other:?}"),
    };
    println!(
        "ladder rung 1: {gname} on a squeezed device -> partitioned into {slices} slice(s), \
         {}",
        fmt_seconds(rescued.report.total_seconds)
    );
    let mut ladder = vec![LadderRecord {
        graph: gname.clone(),
        method: method.name().to_string(),
        preflight_rejects,
        rung: "partitioned".into(),
        slices,
        sources: 0,
        error_bound: 0.0,
        total_seconds: rescued.report.total_seconds,
    }];

    // Rung 2: GPU-FAN's O(n²) footprint on a grid too large for any
    // partitioning of the *graph* to fix — only the sampled fallback
    // completes, and it must report a finite error bound.
    let side = if quick > 0 { 256 } else { 320 };
    let grid = gen::grid(side, side);
    let fan_cfg = ClusterConfig {
        method: Method::GpuFan,
        ..ClusterConfig::keeneland(1)
    };
    assert!(
        matches!(
            run_cluster_durable(
                &grid,
                &fan_cfg,
                ladder_roots,
                &FaultPlan::none(),
                &DurabilityOptions::default(),
            ),
            Err(ClusterError::InsufficientMemory { .. })
        ),
        "without the ladder the O(n²) method must be rejected"
    );
    let sampled = run_cluster_durable(
        &grid,
        &fan_cfg,
        ladder_roots,
        &FaultPlan::none(),
        &DurabilityOptions {
            degrade: true,
            ..DurabilityOptions::default()
        },
    )
    .expect("the sampled rung completes what partitioning cannot");
    match sampled.report.degradation {
        Some(Degradation::Sampled {
            ref method,
            sources,
            error_bound,
        }) => {
            assert!(sources > 0 && error_bound.is_finite() && error_bound > 0.0);
            println!(
                "ladder rung 2: gpu-fan on grid-{side}x{side} -> sampled via {method} \
                 ({sources} source(s), bound {error_bound:.4}), {}",
                fmt_seconds(sampled.report.total_seconds)
            );
            ladder.push(LadderRecord {
                graph: format!("grid-{side}x{side}"),
                method: method.clone(),
                preflight_rejects: true,
                rung: "sampled".into(),
                slices: 0,
                sources,
                error_bound,
                total_seconds: sampled.report.total_seconds,
            });
        }
        ref other => panic!("expected the Sampled rung, got {other:?}"),
    }

    println!(
        "\nclaim under test: a kill at any point costs only the unfinished roots on resume, \
         and memory exhaustion degrades stepwise instead of failing"
    );
    write_json("BENCH_durability", &DurabilityBench { kill_sweep, ladder });
}
