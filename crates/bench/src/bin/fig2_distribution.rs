//! E-fig2 — regenerate Figure 2's comparison of thread-to-work
//! distributions: for one BFS iteration, how much of the inspected
//! work is useful under the vertex-parallel, edge-parallel, and
//! work-efficient assignments, and how badly lanes diverge.
//!
//! ```text
//! cargo run -p bc-bench --release --bin fig2_distribution [--reduction R] [--seed S]
//! ```

use bc_bench::{print_table, write_json, Args};
use bc_core::{BcOptions, Method, RootSelection};
use bc_graph::DatasetId;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    dataset: &'static str,
    method: &'static str,
    useful_edge_inspections: u64,
    wasted_edge_inspections: u64,
    wasted_vertex_checks: u64,
    warp_steps: u64,
    work_efficiency: f64,
}

fn main() {
    let args = Args::from_env();
    let reduction = args.reduction(5);
    let seed = args.seed();

    println!("Figure 2 analogue (reduction = {reduction}, seed = {seed})");
    println!("one root per graph; counts over the whole search\n");

    let methods = [
        Method::VertexParallel,
        Method::EdgeParallel,
        Method::WorkEfficient,
    ];
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for d in [
        DatasetId::LuxembourgOsm,
        DatasetId::KronG500Logn20,
        DatasetId::Smallworld,
    ] {
        let g = d.generate(reduction, seed);
        let opts = BcOptions {
            roots: RootSelection::Explicit(vec![0]),
            ..Default::default()
        };
        for m in &methods {
            let run = m.run(&g, &opts).expect("fits");
            let c = run.report.counters;
            rows.push(vec![
                d.name().to_string(),
                m.name().to_string(),
                c.useful_edge_inspections.to_string(),
                c.wasted_edge_inspections.to_string(),
                c.wasted_vertex_checks.to_string(),
                c.warp_steps.to_string(),
                format!("{:.1}%", 100.0 * c.work_efficiency()),
            ]);
            records.push(Record {
                dataset: d.name(),
                method: m.name(),
                useful_edge_inspections: c.useful_edge_inspections,
                wasted_edge_inspections: c.wasted_edge_inspections,
                wasted_vertex_checks: c.wasted_vertex_checks,
                warp_steps: c.warp_steps,
                work_efficiency: c.work_efficiency(),
            });
        }
    }
    print_table(
        &[
            "graph",
            "method",
            "useful E",
            "wasted E",
            "wasted V-checks",
            "warp steps",
            "efficiency",
        ],
        &rows,
    );
    println!(
        "\npaper shape (Fig. 2): vertex-parallel wastes vertex checks and diverges on \
         uneven degrees; edge-parallel is balanced but inspects every edge every \
         iteration; work-efficient touches only frontier work"
    );
    write_json("fig2_distribution", &records);
}
