//! E-fig6 — regenerate Figure 6: multi-GPU strong scaling (1–64
//! nodes × 3 GPUs) for the delaunay, rgg, and kron families at
//! several problem scales.
//!
//! ```text
//! cargo run -p bc-bench --release --bin fig6_multi_gpu \
//!     [--min_scale 14] [--max_scale 18] [--roots K] [--seed S]
//! ```

use bc_bench::{print_table, write_json, Args};
use bc_cluster::{strong_scaling, ClusterConfig};
use bc_graph::{gen, Csr, DatasetId};
use serde::Serialize;

const NODE_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

#[derive(Serialize)]
struct Point {
    family: &'static str,
    scale: u32,
    nodes: usize,
    total_seconds: f64,
    speedup: f64,
}

fn family_instance(family: &'static str, scale: u32, seed: u64) -> Csr {
    let n = 1usize << scale;
    match family {
        "rgg" => {
            let row = DatasetId::RggN2_20.paper_row();
            let deg = 2.0 * row.edges as f64 / row.vertices as f64;
            gen::random_geometric(n, gen::rgg_radius_for_degree(n, deg), seed)
        }
        "delaunay" => {
            let side = (n as f64).sqrt().round() as usize;
            gen::delaunay_like(side, side, seed)
        }
        "kron" => gen::kronecker(scale, 16, seed),
        _ => unreachable!(),
    }
}

fn main() {
    let args = Args::from_env();
    let min_scale: u32 = args.get("min_scale", 14);
    let max_scale: u32 = args.get("max_scale", 18);
    let k = args.roots(96);
    let seed = args.seed();

    println!(
        "Figure 6 analogue: Keeneland-like cluster (3x M2090 per node), scales \
         2^{min_scale}..2^{max_scale}, {k} sampled roots, seed = {seed}\n"
    );

    let base = ClusterConfig::keeneland(1);
    let mut points = Vec::new();
    for family in ["delaunay", "rgg", "kron"] {
        println!("-- {family} family: speedup over 1 node --");
        let mut rows = Vec::new();
        for scale in (min_scale..=max_scale).step_by(2) {
            let g = family_instance(family, scale, seed);
            let pts = strong_scaling(&g, &base, &NODE_COUNTS, k).expect("cluster run fits");
            let mut row = vec![format!("2^{scale}")];
            for p in &pts {
                row.push(format!("{:.1}x", p.speedup));
                points.push(Point {
                    family,
                    scale,
                    nodes: p.nodes,
                    total_seconds: p.report.total_seconds,
                    speedup: p.speedup,
                });
            }
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("scale".to_string())
            .chain(NODE_COUNTS.iter().map(|n| format!("{n} node")))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(&headers_ref, &rows);
        println!();
    }
    println!(
        "paper shape: near-linear speedup once the problem is large enough (>= 2^18 \
         vertices for delaunay at 64 nodes); small scales flatten from fixed per-GPU costs"
    );
    write_json("fig6_multi_gpu", &points);
}
