//! E-tab1 — regenerate Table I: correlation of vertex- and
//! edge-frontier sizes with per-iteration execution time for three
//! roots on five graph classes.
//!
//! The paper uses roots {0, 2121, 6004}; at reduced scales those ids
//! are mapped proportionally into range.
//!
//! ```text
//! cargo run -p bc-bench --release --bin table1_correlation [--reduction R] [--seed S]
//! ```

use bc_bench::{print_table, write_json, Args};
use bc_core::frontier;
use bc_gpusim::DeviceConfig;
use bc_graph::DatasetId;
use serde::Serialize;

const PAPER_ROOTS: [u64; 3] = [0, 2121, 6004];

#[derive(Serialize)]
struct Record {
    dataset: &'static str,
    root: u32,
    rho_vt: f64,
    rho_et: f64,
}

fn main() {
    let args = Args::from_env();
    let reduction = args.reduction(3);
    let seed = args.seed();
    let device = DeviceConfig::gtx_titan();

    let graphs = [
        DatasetId::RggN2_20,
        DatasetId::DelaunayN20,
        DatasetId::KronG500Logn20,
        DatasetId::LuxembourgOsm,
        DatasetId::Smallworld,
    ];

    println!("Table I analogue (reduction = {reduction}, seed = {seed})");
    println!("rho_vt = corr(vertex frontier, iteration time); rho_et = corr(edge frontier, iteration time)\n");

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for d in graphs {
        let g = d.generate(reduction, seed);
        let n = g.num_vertices() as u64;
        let paper_n = d.paper_row().vertices;
        for &paper_root in &PAPER_ROOTS {
            // Scale the paper's root id into the generated range.
            let root = ((paper_root * n) / paper_n.max(1)).min(n.saturating_sub(1)) as u32;
            let t = frontier::trace_root(&g, root, &device);
            rows.push(vec![
                d.name().to_string(),
                root.to_string(),
                format!("{:.3}", t.rho_vt()),
                format!("{:.3}", t.rho_et()),
            ]);
            records.push(Record {
                dataset: d.name(),
                root,
                rho_vt: t.rho_vt(),
                rho_et: t.rho_et(),
            });
        }
    }
    print_table(&["graph", "root", "rho_vt", "rho_et"], &rows);

    let min_vt = records
        .iter()
        .map(|r| r.rho_vt)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nminimum rho_vt = {min_vt:.3} — the paper's claim is that the vertex frontier \
         correlates positively with iteration time regardless of root or structure"
    );
    write_json("table1_correlation", &records);
}
