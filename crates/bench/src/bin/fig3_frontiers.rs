//! E-fig3 — regenerate Figure 3: evolution of the vertex frontier
//! (as a percentage of total vertices) for three roots per graph
//! class.
//!
//! Prints one series per root (ASCII sparkline + the raw series into
//! `results/fig3_frontiers.json` for plotting).
//!
//! ```text
//! cargo run -p bc-bench --release --bin fig3_frontiers [--reduction R] [--seed S]
//! ```

use bc_bench::{write_json, Args};
use bc_core::frontier;
use bc_gpusim::DeviceConfig;
use bc_graph::DatasetId;
use serde::Serialize;

const PAPER_ROOTS: [u64; 3] = [0, 2121, 6004];

#[derive(Serialize)]
struct Record {
    dataset: &'static str,
    root: u32,
    vertices: usize,
    frontier_percent: Vec<f64>,
    peak_percent: f64,
    depth: usize,
}

fn sparkline(series: &[f64], max: f64) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    // Downsample long series to 64 columns.
    let cols = series.len().min(64);
    (0..cols)
        .map(|c| {
            let lo = c * series.len() / cols;
            let hi = ((c + 1) * series.len() / cols).max(lo + 1);
            let v = series[lo..hi].iter().cloned().fold(0.0, f64::max);
            let idx = if max <= 0.0 {
                0
            } else {
                ((v / max) * 7.0).round() as usize
            };
            BARS[idx.min(7)]
        })
        .collect()
}

fn main() {
    let args = Args::from_env();
    let reduction = args.reduction(3);
    let seed = args.seed();
    let device = DeviceConfig::gtx_titan();

    let graphs = [
        DatasetId::RggN2_20,
        DatasetId::DelaunayN20,
        DatasetId::KronG500Logn20,
        DatasetId::LuxembourgOsm,
        DatasetId::Smallworld,
    ];

    println!("Figure 3 analogue (reduction = {reduction}, seed = {seed})");
    println!("each line: vertex frontier evolution for one root (peak % of n, depth)\n");

    let mut records = Vec::new();
    for d in graphs {
        let g = d.generate(reduction, seed);
        let n = g.num_vertices();
        println!("{} (n = {n})", d.name());
        for &paper_root in &PAPER_ROOTS {
            let root =
                ((paper_root * n as u64) / d.paper_row().vertices.max(1)).min(n as u64 - 1) as u32;
            let t = frontier::trace_root(&g, root, &device);
            let pct = t.vertex_frontier_percent(n);
            let peak = pct.iter().cloned().fold(0.0, f64::max);
            println!(
                "  root {root:>8}: {} peak {peak:5.1}%  depth {:4}",
                sparkline(&pct, peak),
                pct.len()
            );
            records.push(Record {
                dataset: d.name(),
                root,
                vertices: n,
                peak_percent: peak,
                depth: pct.len(),
                frontier_percent: pct,
            });
        }
        println!();
    }

    // The figure's takeaway: high-diameter classes peak at a few
    // percent; small-world/scale-free classes peak above 50%.
    println!("class summary (max peak % per dataset):");
    for d in graphs {
        let peak = records
            .iter()
            .filter(|r| r.dataset == d.name())
            .map(|r| r.peak_percent)
            .fold(0.0, f64::max);
        println!(
            "  {:>18}: {:5.1}%  ({})",
            d.name(),
            peak,
            if d.prefers_work_efficient() {
                "gradual, small frontier"
            } else {
                "explosive frontier"
            }
        );
    }
    write_json("fig3_frontiers", &records);
}
