//! E-metrics — exercise the observability layer end to end: run each
//! method metered over the dataset battery, assert the metered run is
//! bitwise identical to the plain one, and report what the counters
//! say (frontier peaks, CAS win rates, direction switches, warp
//! efficiency, memory transactions).
//!
//! ```text
//! cargo run -p bc-bench --release --bin bench_metrics \
//!     [--reduction 6] [--roots K] [--seed S] [--quick 1]
//! ```
//!
//! Writes `results/BENCH_metrics.json` (per-method summaries) and
//! `results/BENCH_metrics.jsonl` (the raw per-root JSONL stream of
//! the last dataset, as `hybrid-bc --metrics` would emit it).
//!
//! The claim under test is the tentpole's: metering observes, it does
//! not perturb — scores and the simulated clock agree to the last bit
//! with the instrumented sinks attached.

use bc_bench::{fmt_seconds, out_dir, print_table, scaled_sampling, write_json, Args};
use bc_core::{BcOptions, Method, RootSelection};
use bc_graph::DatasetId;
use serde::Serialize;

#[derive(Serialize)]
struct MetricsPoint {
    dataset: &'static str,
    method: &'static str,
    roots: usize,
    levels: u64,
    max_frontier: u64,
    edges_inspected: u64,
    cas_attempts: u64,
    cas_wins: u64,
    cas_win_rate: f64,
    priced_atomics: u64,
    push_levels: u64,
    pull_levels: u64,
    switches_to_pull: u64,
    switches_to_push: u64,
    kernel_launches: u64,
    warp_efficiency: f64,
    memory_transactions: u64,
    simulated_seconds: f64,
    bitwise_identical: bool,
}

fn methods(n: usize, k: usize) -> Vec<(&'static str, Method)> {
    vec![
        ("work-efficient", Method::WorkEfficient),
        ("hybrid", Method::Hybrid(Default::default())),
        ("sampling", Method::Sampling(scaled_sampling(n, k))),
    ]
}

fn main() {
    let args = Args::from_env();
    let quick: u32 = args.get("quick", 0);
    let reduction = args.reduction(if quick > 0 { 8 } else { 6 });
    let k = args.roots(if quick > 0 { 8 } else { 32 });
    let seed = args.seed();
    let datasets: &[DatasetId] = if quick > 0 {
        &DatasetId::ALL[..3]
    } else {
        &DatasetId::ALL
    };

    println!(
        "Metrics layer: {} dataset(s) at reduction {reduction}, {k} sampled roots, seed = {seed}\n",
        datasets.len()
    );

    let mut points = Vec::new();
    let mut mismatches = 0usize;
    let mut last_jsonl = String::new();
    for d in datasets {
        let g = d.generate(reduction, seed);
        let n = g.num_vertices();
        let mut rows = Vec::new();
        for (label, method) in methods(n, k) {
            let opts = BcOptions {
                roots: RootSelection::Strided(k),
                ..BcOptions::default()
            };
            let plain = method.run(&g, &opts).expect("plain run fits in memory");
            let (metered, metrics) = method
                .run_metered(&g, &opts)
                .expect("metered run fits in memory");
            let identical = plain.scores == metered.scores
                && plain.report.full_seconds == metered.report.full_seconds
                && plain.report.per_root_seconds == metered.report.per_root_seconds;
            if !identical {
                mismatches += 1;
            }
            let s = &metrics.summary;
            let win_rate = if s.cas_attempts > 0 {
                s.cas_wins as f64 / s.cas_attempts as f64
            } else {
                0.0
            };
            rows.push(vec![
                label.to_string(),
                format!("{}", s.levels),
                format!("{}", s.max_frontier),
                format!("{}", s.edges_inspected),
                format!("{:.1}%", 100.0 * win_rate),
                format!("{}/{}", s.push_levels, s.pull_levels),
                format!("{:.1}%", 100.0 * s.hardware.warp_efficiency),
                fmt_seconds(metered.report.full_seconds),
                if identical { "yes".into() } else { "NO".into() },
            ]);
            points.push(MetricsPoint {
                dataset: d.name(),
                method: label,
                roots: metered.report.roots_processed,
                levels: s.levels,
                max_frontier: s.max_frontier,
                edges_inspected: s.edges_inspected,
                cas_attempts: s.cas_attempts,
                cas_wins: s.cas_wins,
                cas_win_rate: win_rate,
                priced_atomics: s.priced_atomics,
                push_levels: s.push_levels,
                pull_levels: s.pull_levels,
                switches_to_pull: s.switches_to_pull,
                switches_to_push: s.switches_to_push,
                kernel_launches: s.hardware.kernel_launches,
                warp_efficiency: s.hardware.warp_efficiency,
                memory_transactions: s.hardware.memory_transactions,
                simulated_seconds: metered.report.full_seconds,
                bitwise_identical: identical,
            });
            if label == "sampling" {
                last_jsonl = bc_metrics::run_to_jsonl(&metrics);
            }
        }
        println!("-- {}: n={} 2m={} --", d.name(), n, g.num_directed_edges());
        print_table(
            &[
                "method",
                "levels",
                "maxQ",
                "edges",
                "cas-win",
                "push/pull",
                "warp-eff",
                "time",
                "bitwise",
            ],
            &rows,
        );
        println!();
    }

    println!(
        "claim under test: the metrics sinks only copy values the engine already \
         computed — metering never changes a score or a priced second"
    );
    write_json("BENCH_metrics", &points);
    let jsonl_path = out_dir().join("BENCH_metrics.jsonl");
    std::fs::write(&jsonl_path, &last_jsonl).expect("write metrics JSONL");
    eprintln!("wrote {}", jsonl_path.display());
    assert_eq!(
        mismatches, 0,
        "{mismatches} metered run(s) diverged from the plain run — metering must be observation-only"
    );
}
