//! E-tab2 — regenerate Table II: dataset statistics, paper vs the
//! generated analogues.
//!
//! ```text
//! cargo run -p bc-bench --release --bin table2_datasets [--reduction R] [--seed S]
//! ```

use bc_bench::{print_table, write_json, Args};
use bc_graph::{DatasetId, GraphStats};
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    dataset: &'static str,
    reduction: u32,
    paper_vertices: u64,
    paper_edges: u64,
    paper_max_degree: u32,
    paper_diameter: u32,
    stats: GraphStats,
}

fn main() {
    let args = Args::from_env();
    let reduction = args.reduction(3);
    let seed = args.seed();

    println!("Table II analogue (reduction = {reduction}, seed = {seed})");
    println!(
        "paper columns are the published full-scale values; generated columns are our analogues\n"
    );

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for d in DatasetId::ALL {
        let row = d.paper_row();
        let g = d.generate(reduction, seed);
        let s = GraphStats::compute_with_limit(&g, 0);
        rows.push(vec![
            d.name().to_string(),
            row.vertices.to_string(),
            s.vertices.to_string(),
            row.edges.to_string(),
            s.edges.to_string(),
            row.max_degree.to_string(),
            s.max_degree.to_string(),
            row.diameter.to_string(),
            s.diameter.to_string(),
            row.description.to_string(),
        ]);
        records.push(Record {
            dataset: d.name(),
            reduction,
            paper_vertices: row.vertices,
            paper_edges: row.edges,
            paper_max_degree: row.max_degree,
            paper_diameter: row.diameter,
            stats: s,
        });
    }
    print_table(
        &[
            "graph",
            "n(paper)",
            "n(ours)",
            "m(paper)",
            "m(ours)",
            "maxdeg(p)",
            "maxdeg(o)",
            "diam(p)",
            "diam(o)",
            "description",
        ],
        &rows,
    );
    println!(
        "\n(diameters at reduced scale shrink with n; compare per-class magnitude, not decimals)"
    );
    write_json("table2_datasets", &records);
}
