//! E-schedule — the work-stealing root scheduler on a skewed root
//! mix: a road-network component (deep, expensive searches) unioned
//! with a small-world component (shallow, cheap ones), roots listed
//! road-first so the static contiguous-block layout piles every
//! expensive shard onto the first workers.
//!
//! ```text
//! cargo run -p bc-bench --release --bin bench_schedule \
//!     [--seed S] [--reps R] [--quick 1]
//! ```
//!
//! Writes `results/BENCH_schedule.json` (`BENCH_schedule_smoke.json`
//! under `--quick 1`): host wall time per schedule at 1/2/4/8
//! threads, speedups over static, steal/idle counters from a metered
//! replay, and the cluster runner's per-GPU balance under each
//! schedule.
//!
//! Two claims under test:
//! * scores are bitwise identical under every schedule at every
//!   thread count (assignment is dynamic, the merge order is not) —
//!   asserted hard;
//! * on the skewed mix, a cost-planned dynamic schedule beats the
//!   static partition at ≥4 threads — asserted hard in full mode.

use bc_bench::{fmt_seconds, print_table, write_json, Args};
use bc_cluster::{run_cluster, ClusterConfig};
use bc_core::methods::models::WorkEfficientModel;
use bc_core::{run_roots_scheduled, run_roots_scheduled_metered, BcOptions, Schedule};
use bc_graph::{gen, Csr};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct SchedulePoint {
    schedule: &'static str,
    threads: usize,
    wall_seconds: f64,
    speedup_vs_static: f64,
    steals: u64,
    failed_steal_attempts: u64,
    max_idle_seconds: f64,
    /// Busiest worker's accumulated wall-clock shard time.
    max_busy_seconds: f64,
    /// Busiest worker's summed *simulated* seconds over the shards it
    /// claimed — the assignment's makespan in the device model's
    /// deterministic clock. Unlike wall clock this is meaningful even
    /// on an oversubscribed host: it measures how evenly the work was
    /// split, not how many cores happened to be free.
    sim_makespan_seconds: f64,
    bitwise_identical: bool,
}

#[derive(Serialize)]
struct ClusterPoint {
    schedule: &'static str,
    nodes: usize,
    total_seconds: f64,
    /// Busiest minus idlest GPU — the straggler gap the cost-planned
    /// assignment is supposed to close.
    gpu_seconds_spread: f64,
}

#[derive(Serialize)]
struct Report {
    road_vertices: usize,
    smallworld_vertices: usize,
    road_roots: usize,
    smallworld_roots: usize,
    reps: usize,
    points: Vec<SchedulePoint>,
    cluster: Vec<ClusterPoint>,
}

/// Disjoint union: the road component keeps its ids, the small-world
/// component is shifted past it.
fn union_graph(road: &Csr, blob: &Csr) -> Csr {
    fn edges_of(g: &Csr, shift: u32, out: &mut Vec<(u32, u32)>) {
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                if u < v {
                    out.push((u + shift, v + shift));
                }
            }
        }
    }
    let mut edges = Vec::new();
    edges_of(road, 0, &mut edges);
    edges_of(blob, road.num_vertices() as u32, &mut edges);
    Csr::from_undirected_edges(road.num_vertices() + blob.num_vertices(), edges)
}

fn main() {
    let args = Args::from_env();
    let quick: u32 = args.get("quick", 0);
    let seed = args.seed();
    let reps: usize = args.get("reps", if quick > 0 { 1 } else { 3 });
    let (road_n, sw_n, road_k, sw_k): (usize, usize, usize, usize) = if quick > 0 {
        (6144, 2048, 16, 48)
    } else {
        (49152, 16384, 64, 192)
    };
    let thread_counts: &[usize] = if quick > 0 { &[1, 4] } else { &[1, 2, 4, 8] };

    let road = gen::road_network(road_n, seed);
    let blob = gen::watts_strogatz(sw_n, 8, 0.1, seed);
    let g = union_graph(&road, &blob);
    // Road roots first: under the static contiguous-block layout the
    // first workers own every expensive shard, which is exactly the
    // skew a cost-planned schedule should dissolve.
    let roots: Vec<u32> = (0..road_k)
        .map(|i| ((i * road.num_vertices()) / road_k) as u32)
        .chain((0..sw_k).map(|i| (road.num_vertices() + (i * blob.num_vertices()) / sw_k) as u32))
        .collect();
    let device = BcOptions::default().device;

    println!(
        "Schedule bench: road n={} ∪ small-world n={}, {} roots ({} road + {} small-world), \
         min of {reps} rep(s)\n",
        road.num_vertices(),
        blob.num_vertices(),
        roots.len(),
        road_k,
        sw_k
    );

    // Bitwise baseline: one static single-threaded run.
    let baseline = run_roots_scheduled(
        &g,
        &device,
        &roots,
        1,
        Schedule::Static,
        &mut WorkEfficientModel::default(),
    )
    .expect("baseline run fits in memory");

    let mut points: Vec<SchedulePoint> = Vec::new();
    let mut static_wall = vec![0.0f64; thread_counts.len()];
    for schedule in Schedule::ALL {
        for (ti, &threads) in thread_counts.iter().enumerate() {
            let mut wall = f64::INFINITY;
            let mut identical = true;
            for _ in 0..reps {
                let t = Instant::now();
                let run = run_roots_scheduled(
                    &g,
                    &device,
                    &roots,
                    threads,
                    schedule,
                    &mut WorkEfficientModel::default(),
                )
                .expect("scheduled run fits in memory");
                wall = wall.min(t.elapsed().as_secs_f64());
                identical &= run.scores == baseline.scores;
            }
            // Steal/idle counters come from a separate metered replay
            // so the instrumentation never taints the timed runs.
            let (mrun, _, workers) = run_roots_scheduled_metered(
                &g,
                &device,
                &roots,
                threads,
                schedule,
                &mut WorkEfficientModel::default(),
            )
            .expect("metered run fits in memory");
            // Per-worker makespan in the simulated clock: sum the
            // deterministic per-root seconds over each worker's
            // claimed shards.
            let size = workers.first().map_or(1, |w| w.shard_size as usize).max(1);
            let sim_makespan = workers
                .iter()
                .map(|w| {
                    w.shards
                        .iter()
                        .map(|&s| {
                            let lo = s as usize * size;
                            let hi = (lo + size).min(roots.len());
                            mrun.per_root_seconds[lo..hi].iter().sum::<f64>()
                        })
                        .sum::<f64>()
                })
                .fold(0.0, f64::max);
            if schedule == Schedule::Static {
                static_wall[ti] = wall;
            }
            points.push(SchedulePoint {
                schedule: schedule.name(),
                threads,
                wall_seconds: wall,
                speedup_vs_static: static_wall[ti] / wall,
                steals: workers.iter().map(|w| w.steals).sum(),
                failed_steal_attempts: workers.iter().map(|w| w.failed_steal_attempts).sum(),
                max_idle_seconds: workers.iter().map(|w| w.idle_seconds).fold(0.0, f64::max),
                max_busy_seconds: workers.iter().map(|w| w.busy_seconds).fold(0.0, f64::max),
                sim_makespan_seconds: sim_makespan,
                bitwise_identical: identical,
            });
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.schedule.to_string(),
                format!("{}", p.threads),
                fmt_seconds(p.wall_seconds),
                format!("{:.2}x", p.speedup_vs_static),
                format!("{}", p.steals),
                fmt_seconds(p.sim_makespan_seconds),
                if p.bitwise_identical {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect();
    print_table(
        &[
            "schedule",
            "threads",
            "wall",
            "vs-static",
            "steals",
            "sim-span",
            "bitwise",
        ],
        &rows,
    );
    println!();

    // Cluster: the same planning feeds the per-GPU assignment; the
    // cost-planned schedules should narrow the busiest-vs-idlest gap.
    let mut cluster = Vec::new();
    let cluster_roots = roots.len().min(96);
    let mut cluster_baseline: Option<Vec<f64>> = None;
    for schedule in Schedule::ALL {
        let cfg = ClusterConfig {
            method: bc_core::Method::WorkEfficient,
            schedule,
            ..ClusterConfig::keeneland(2)
        };
        let run = run_cluster(&g, &cfg, cluster_roots).expect("cluster run fits in memory");
        let max = run.report.gpu_seconds.iter().fold(0.0f64, |a, &b| a.max(b));
        let min = run
            .report
            .gpu_seconds
            .iter()
            .fold(f64::INFINITY, |a, &b| a.min(b));
        match &cluster_baseline {
            None => cluster_baseline = Some(run.scores.clone()),
            Some(base) => assert_eq!(
                base, &run.scores,
                "cluster scores must be bitwise identical under {schedule}"
            ),
        }
        println!(
            "cluster {}: total {} (gpu spread {})",
            schedule.name(),
            fmt_seconds(run.report.total_seconds),
            fmt_seconds(max - min)
        );
        cluster.push(ClusterPoint {
            schedule: schedule.name(),
            nodes: 2,
            total_seconds: run.report.total_seconds,
            gpu_seconds_spread: max - min,
        });
    }
    println!();

    println!(
        "claim under test: the cost-planned dynamic schedules spread the road-first skew \
         across workers; the root-ordered merge keeps every run bitwise identical"
    );
    let name = if quick > 0 {
        "BENCH_schedule_smoke"
    } else {
        "BENCH_schedule"
    };
    let report = Report {
        road_vertices: road.num_vertices(),
        smallworld_vertices: blob.num_vertices(),
        road_roots: road_k,
        smallworld_roots: sw_k,
        reps,
        points,
        cluster,
    };
    write_json(name, &report);

    assert!(
        report.points.iter().all(|p| p.bitwise_identical),
        "every schedule at every thread count must reproduce the baseline scores bitwise"
    );
    if quick == 0 {
        let static4 = static_wall[thread_counts.iter().position(|&t| t >= 4).unwrap()..].to_vec();
        // On a machine with free cores the balanced assignment wins
        // wall-clock outright; on an oversubscribed host wall clock
        // cannot show it, but the busiest worker's simulated makespan
        // still must shrink — the assignment itself is what's under
        // test, and that clock is deterministic.
        let static_span: Vec<(usize, f64)> = report
            .points
            .iter()
            .filter(|p| p.schedule == "static" && p.threads >= 4)
            .map(|p| (p.threads, p.sim_makespan_seconds))
            .collect();
        let beats = report.points.iter().any(|p| {
            p.schedule != "static"
                && p.threads >= 4
                && (p.speedup_vs_static > 1.0
                    || static_span
                        .iter()
                        .any(|&(t, span)| t == p.threads && p.sim_makespan_seconds < span))
        });
        assert!(
            beats,
            "a dynamic schedule must beat static (wall clock or simulated makespan) at >= 4 \
             threads on the skewed mix (static walls at >=4 threads: {static4:?})"
        );
    }
}
