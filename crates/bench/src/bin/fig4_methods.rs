//! E-fig4 — regenerate Figure 4: speedup of the work-efficient,
//! hybrid, and sampling methods over the edge-parallel baseline
//! across the benchmark suite.
//!
//! ```text
//! cargo run -p bc-bench --release --bin fig4_methods [--reduction R] [--roots K] [--seed S]
//! ```

use bc_bench::{fmt_seconds, print_table, write_json, Args};
use bc_core::{teps, BcOptions, Method, RootSelection};
use bc_graph::DatasetId;
use serde::Serialize;

#[derive(Serialize)]
struct Record {
    dataset: &'static str,
    edge_parallel_seconds: f64,
    work_efficient_speedup: f64,
    hybrid_speedup: f64,
    sampling_speedup: f64,
}

fn main() {
    let args = Args::from_env();
    let reduction = args.reduction(2);
    let k = args.roots(96);
    let seed = args.seed();

    // Figure 4's x-axis (af_shell, del20, luxem, then the scale-free
    // and small-world graphs).
    let graphs = [
        DatasetId::AfShell9,
        DatasetId::DelaunayN20,
        DatasetId::LuxembourgOsm,
        DatasetId::CaidaRouterLevel,
        DatasetId::Cnr2000,
        DatasetId::ComAmazon,
        DatasetId::LocGowalla,
        DatasetId::Smallworld,
    ];
    // The sampling method's WE phase is scaled per graph inside the
    // loop (its n_samps is defined against all n roots).
    let methods = |n: usize| {
        [
            Method::WorkEfficient,
            Method::Hybrid(Default::default()),
            Method::Sampling(bc_bench::scaled_sampling(n, k)),
        ]
    };

    println!("Figure 4 analogue (reduction = {reduction}, {k} sampled roots, seed = {seed})");
    println!("speedup of each method over the edge-parallel baseline (Jia et al.)\n");

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut per_method_factors: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for d in graphs {
        let g = d.generate(reduction, seed);
        let opts = BcOptions {
            roots: RootSelection::Strided(k),
            ..Default::default()
        };
        let base = Method::EdgeParallel
            .run(&g, &opts)
            .expect("edge-parallel fits");
        let mut speedups = Vec::new();
        for (mi, m) in methods(g.num_vertices()).iter().enumerate() {
            let run = m.run(&g, &opts).expect("method fits");
            let s = base.report.full_seconds / run.report.full_seconds;
            per_method_factors[mi].push(s);
            speedups.push(s);
        }
        rows.push(vec![
            d.name().to_string(),
            fmt_seconds(base.report.full_seconds),
            format!("{:.2}x", speedups[0]),
            format!("{:.2}x", speedups[1]),
            format!("{:.2}x", speedups[2]),
        ]);
        records.push(Record {
            dataset: d.name(),
            edge_parallel_seconds: base.report.full_seconds,
            work_efficient_speedup: speedups[0],
            hybrid_speedup: speedups[1],
            sampling_speedup: speedups[2],
        });
    }
    print_table(
        &[
            "graph",
            "edge-parallel t",
            "work-efficient",
            "hybrid",
            "sampling",
        ],
        &rows,
    );
    println!();
    for (mi, name) in ["work-efficient", "hybrid", "sampling"].iter().enumerate() {
        println!(
            "  geometric-mean speedup, {:>14}: {:.2}x",
            name,
            teps::geometric_mean(&per_method_factors[mi])
        );
    }
    println!(
        "\npaper shape: ~10x on meshes/roads for all three methods; work-efficient alone \
         loses on scale-free/small-world graphs while hybrid and sampling stay >= 1x"
    );
    write_json("fig4_methods", &records);
}
