//! E-ablate — design-choice ablations the paper discusses in §IV:
//!
//! * α/β sensitivity of the hybrid method (Algorithm 4);
//! * γ and n_samps sensitivity of the sampling method (Algorithm 5);
//! * the wrong-choice asymmetry ("incorrectly choosing the
//!   edge-parallel method is more costly than incorrectly choosing
//!   the work-efficient method");
//! * strided vs contiguous root distribution across blocks.
//!
//! ```text
//! cargo run -p bc-bench --release --bin ablations [--reduction R] [--roots K] [--seed S]
//! ```

use bc_bench::{fmt_seconds, print_table, write_json, Args};
use bc_core::methods::cost::footprint;
use bc_core::methods::cost::{PredecessorStorage, QueueAppend, WorkEfficientConfig};
use bc_core::methods::models::WorkEfficientModel;
use bc_core::{
    run_with_cost_model, BcOptions, HybridParams, Method, RootSelection, SamplingParams,
};
use bc_gpusim::coarse_grained_makespan;
use bc_graph::DatasetId;
use serde::Serialize;

#[derive(Serialize, Default)]
struct Record {
    alpha_sweep: Vec<(u64, f64, f64)>,
    beta_sweep: Vec<(u64, f64)>,
    gamma_sweep: Vec<(f64, f64, f64)>,
    nsamps_sweep: Vec<(usize, f64)>,
    wrong_choice: Vec<(String, String, f64)>,
    partition: Vec<(String, f64)>,
    variants: Vec<(String, f64, f64, u64)>,
}

fn main() {
    let args = Args::from_env();
    let reduction = args.reduction(3);
    let k = args.roots(64);
    let seed = args.seed();
    let mut rec = Record::default();

    let opts = BcOptions {
        roots: RootSelection::Strided(k),
        ..Default::default()
    };
    let high_diam = DatasetId::DelaunayN20.generate(reduction, seed);
    let small_world = DatasetId::Smallworld.generate(reduction, seed);

    // --- α sweep (β fixed at 512) on both classes ---
    println!("hybrid alpha sweep ({k} roots, reduction {reduction}):");
    let mut rows = Vec::new();
    for alpha in [64u64, 256, 768, 2048, u64::MAX] {
        let params = HybridParams { alpha, beta: 512 };
        let hd = Method::Hybrid(params)
            .run(&high_diam, &opts)
            .unwrap()
            .report
            .full_seconds;
        let sw = Method::Hybrid(params)
            .run(&small_world, &opts)
            .unwrap()
            .report
            .full_seconds;
        let label = if alpha == u64::MAX {
            "inf".to_string()
        } else {
            alpha.to_string()
        };
        rows.push(vec![label, fmt_seconds(hd), fmt_seconds(sw)]);
        rec.alpha_sweep.push((alpha, hd, sw));
    }
    print_table(&["alpha", "delaunay t", "smallworld t"], &rows);

    // --- β sweep (α fixed at 768) on the small-world graph ---
    println!("\nhybrid beta sweep (smallworld):");
    let mut rows = Vec::new();
    for beta in [32u64, 128, 512, 2048, 8192] {
        let params = HybridParams { alpha: 768, beta };
        let sw = Method::Hybrid(params)
            .run(&small_world, &opts)
            .unwrap()
            .report
            .full_seconds;
        rows.push(vec![beta.to_string(), fmt_seconds(sw)]);
        rec.beta_sweep.push((beta, sw));
    }
    print_table(&["beta", "smallworld t"], &rows);

    // --- γ sweep for sampling on both classes ---
    println!("\nsampling gamma sweep:");
    let mut rows = Vec::new();
    let scaled_nsamps = |n: usize| (512 * k).div_ceil(n).max(3);
    for gamma in [0.5f64, 2.0, 4.0, 8.0, 16.0] {
        let params = SamplingParams {
            gamma,
            n_samps: scaled_nsamps(high_diam.num_vertices().min(small_world.num_vertices())),
            ..Default::default()
        };
        let hd_run = Method::Sampling(params).run(&high_diam, &opts).unwrap();
        let sw_run = Method::Sampling(params).run(&small_world, &opts).unwrap();
        rows.push(vec![
            format!("{gamma}"),
            fmt_seconds(hd_run.report.full_seconds),
            format!("{:?}", hd_run.report.sampling_chose_edge_parallel.unwrap()),
            fmt_seconds(sw_run.report.full_seconds),
            format!("{:?}", sw_run.report.sampling_chose_edge_parallel.unwrap()),
        ]);
        rec.gamma_sweep.push((
            gamma,
            hd_run.report.full_seconds,
            sw_run.report.full_seconds,
        ));
    }
    print_table(
        &["gamma", "delaunay t", "del->EP?", "smallworld t", "sw->EP?"],
        &rows,
    );

    // --- n_samps sweep on the small-world graph (counts are in
    // full-run units: 512 corresponds to the paper's setting at the
    // simulated K-root scale) ---
    println!("\nsampling n_samps sweep (smallworld, full-run units):");
    let mut rows = Vec::new();
    let n_sw = small_world.num_vertices();
    for n_samps_full in [8usize, 32, 128, 512, 2048] {
        let params = SamplingParams {
            n_samps: (n_samps_full * k).div_ceil(n_sw).max(1),
            ..Default::default()
        };
        let sw = Method::Sampling(params)
            .run(&small_world, &opts)
            .unwrap()
            .report
            .full_seconds;
        rows.push(vec![n_samps_full.to_string(), fmt_seconds(sw)]);
        rec.nsamps_sweep.push((n_samps_full, sw));
    }
    print_table(&["n_samps", "smallworld t"], &rows);

    // --- Wrong-choice asymmetry (§IV-B): worst case over each side's
    // inputs, as the paper states it ---
    println!("\nwrong-choice asymmetry (worst case over the tested inputs):");
    let mut wrong_we: f64 = 0.0;
    for d in [
        DatasetId::Smallworld,
        DatasetId::Cnr2000,
        DatasetId::LocGowalla,
        DatasetId::CaidaRouterLevel,
    ] {
        let g = d.generate(reduction, seed);
        let we = Method::WorkEfficient
            .run(&g, &opts)
            .unwrap()
            .report
            .full_seconds;
        let ep = Method::EdgeParallel
            .run(&g, &opts)
            .unwrap()
            .report
            .full_seconds;
        wrong_we = wrong_we.max(we / ep);
    }
    let mut wrong_ep: f64 = 0.0;
    for d in [
        DatasetId::DelaunayN20,
        DatasetId::LuxembourgOsm,
        DatasetId::AfShell9,
    ] {
        let g = d.generate(reduction, seed);
        let we = Method::WorkEfficient
            .run(&g, &opts)
            .unwrap()
            .report
            .full_seconds;
        let ep = Method::EdgeParallel
            .run(&g, &opts)
            .unwrap()
            .report
            .full_seconds;
        wrong_ep = wrong_ep.max(ep / we);
    }
    println!("  WE where EP preferred: {wrong_we:.2}x slowdown (paper: <= 2.2x)");
    println!("  EP where WE preferred: {wrong_ep:.2}x slowdown (paper: > 10x)");
    println!("  => starting work-efficient is the safe default (Algorithm 4's choice)");
    rec.wrong_choice
        .push(("WE-where-EP-preferred".into(), "worst".into(), wrong_we));
    rec.wrong_choice
        .push(("EP-where-WE-preferred".into(), "worst".into(), wrong_ep));

    // --- Root distribution across blocks ---
    println!("\nblock scheduling (makespan of per-root times, 14 blocks):");
    let run = Method::WorkEfficient.run(&high_diam, &opts).unwrap();
    let times = &run.report.per_root_seconds;
    let strided = coarse_grained_makespan(times, 14);
    // Contiguous: chunk the same times.
    let per = times.len().div_ceil(14);
    let contiguous = times
        .chunks(per)
        .map(|c| c.iter().sum::<f64>())
        .fold(0.0f64, f64::max);
    println!("  strided:    {}", fmt_seconds(strided));
    println!("  contiguous: {}", fmt_seconds(contiguous));
    rec.partition.push(("strided".into(), strided));
    rec.partition.push(("contiguous".into(), contiguous));

    // --- Work-efficient design variants (§IV-A) ---
    println!("\nwork-efficient kernel variants (paper defaults first):");
    let device = bc_gpusim::DeviceConfig::gtx_titan();
    let variants = [
        (
            "atomic + neighbor-traversal (paper)",
            WorkEfficientConfig::default(),
        ),
        (
            "prefix-sum queue append",
            WorkEfficientConfig {
                queue_append: QueueAppend::PrefixSum,
                ..Default::default()
            },
        ),
        (
            "O(m) predecessor edge flags",
            WorkEfficientConfig {
                predecessors: PredecessorStorage::EdgeFlags,
                ..Default::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, cfg) in variants {
        let mut model = WorkEfficientModel::with_config(cfg);
        let bytes = footprint::work_efficient_bytes_cfg(&high_diam, &device, cfg);
        let hd = run_with_cost_model(&high_diam, &opts, &mut model, bytes)
            .unwrap()
            .report
            .full_seconds;
        let mut model = WorkEfficientModel::with_config(cfg);
        let bytes_sw = footprint::work_efficient_bytes_cfg(&small_world, &device, cfg);
        let sw = run_with_cost_model(&small_world, &opts, &mut model, bytes_sw)
            .unwrap()
            .report
            .full_seconds;
        rows.push(vec![
            name.to_string(),
            fmt_seconds(hd),
            fmt_seconds(sw),
            format!("{:.1} MB", bytes as f64 / 1e6),
        ]);
        rec.variants.push((name.to_string(), hd, sw, bytes));
    }
    print_table(
        &["variant", "delaunay t", "smallworld t", "local memory"],
        &rows,
    );
    println!(
        "  (the paper keeps the atomic append — per-SM prefix sums scan the whole queue \
         alone — and discards predecessor storage, trading a little recomputation for \
         O(n) instead of O(m) local state)"
    );

    write_json("ablations", &rec);
}
