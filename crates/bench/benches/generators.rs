//! Criterion micro-benchmarks: graph-generation throughput for the
//! dataset analogues (matters for the scaling sweeps, which generate
//! dozens of instances).

use bc_graph::gen;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators_64k");
    group.sample_size(10);
    group.bench_function("rgg", |b| {
        b.iter(|| gen::random_geometric(65_536, gen::rgg_radius_for_degree(65_536, 13.0), 1))
    });
    group.bench_function("triangulated_grid", |b| {
        b.iter(|| gen::triangulated_grid(256, 256, 1))
    });
    group.bench_function("kronecker", |b| b.iter(|| gen::kronecker(16, 16, 1)));
    group.bench_function("watts_strogatz", |b| {
        b.iter(|| gen::watts_strogatz(65_536, 10, 0.1, 1))
    });
    group.bench_function("road_network", |b| b.iter(|| gen::road_network(65_536, 1)));
    group.bench_function("barabasi_albert", |b| {
        b.iter(|| gen::barabasi_albert(65_536, 4, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
