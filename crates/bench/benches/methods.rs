//! Criterion micro-benchmarks: wall-clock cost of simulating each BC
//! method (host-side throughput of the functional+timing engine).

use bc_core::{BcOptions, Method, RootSelection};
use bc_graph::gen;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_methods(c: &mut Criterion) {
    let graphs = [
        ("smallworld_8k", gen::watts_strogatz(8192, 10, 0.1, 1)),
        ("mesh_8k", gen::triangulated_grid(90, 90, 1)),
        ("kron_8k", gen::kronecker(13, 16, 1)),
    ];
    let methods = [
        Method::EdgeParallel,
        Method::WorkEfficient,
        Method::Hybrid(Default::default()),
        Method::Sampling(Default::default()),
    ];
    let mut group = c.benchmark_group("simulate_method");
    group.sample_size(10);
    for (gname, g) in &graphs {
        for m in &methods {
            group.bench_with_input(BenchmarkId::new(*gname, m.name()), &(g, m), |b, (g, m)| {
                let opts = BcOptions {
                    roots: RootSelection::Strided(16),
                    ..Default::default()
                };
                b.iter(|| m.run(g, &opts).unwrap().report.device_seconds)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
