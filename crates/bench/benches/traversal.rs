//! Criterion micro-benchmarks: host-side traversal primitives —
//! sequential Brandes roots, the rayon CPU baseline, and raw BFS.

use bc_core::{brandes, cpu_parallel};
use bc_graph::{gen, traversal};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_traversal(c: &mut Criterion) {
    let g = gen::watts_strogatz(16384, 10, 0.1, 1);

    let mut group = c.benchmark_group("host_traversal");
    group.sample_size(10);

    group.bench_function("bfs_single_source", |b| {
        b.iter(|| traversal::bfs_distances(&g, 0))
    });

    group.bench_function("brandes_single_root", |b| {
        b.iter(|| {
            let ss = brandes::single_source(&g, 0);
            let mut bc = vec![0.0; g.num_vertices()];
            brandes::accumulate(&g, 0, &ss, &mut bc);
            bc
        })
    });

    let roots: Vec<u32> = (0..64).collect();
    for threads in [1usize, 0] {
        let label = if threads == 1 {
            "sequential_64_roots"
        } else {
            "rayon_64_roots"
        };
        group.bench_with_input(BenchmarkId::new("roots", label), &threads, |b, &t| {
            if t == 1 {
                b.iter(|| brandes::betweenness_from_roots(&g, roots.iter().copied()))
            } else {
                b.iter(|| cpu_parallel::betweenness_from_roots(&g, &roots).unwrap())
            }
        });
    }
    group.finish();
}

criterion_group!(benches, bench_traversal);
criterion_main!(benches);
