//! The access-pattern prover: input-independent race-freedom proofs
//! over the symbolic kernel IR.
//!
//! Where the `bc-verify` race detector checks one *recorded* trace —
//! a single graph, a single frontier — this pass abstract-interprets
//! the [`bc_core::kernel_spec`] declarations and quantifies over
//! **all** inputs: any CSR, any frontier, any level. The abstract
//! domain is deliberately tiny — each access is a pair (symbolic
//! [`IndexExpr`], [`SegmentClass`]) — and the interpreter is a
//! pairwise may-alias decision procedure over that domain:
//!
//! * accesses to different arrays never alias;
//! * two lanes' instances of the same index expression are disjoint
//!   when the expression is **injective** — unconditionally for
//!   `OwnSlot`/`OwnWord`, under [`Axiom::DistinctFrontier`] for
//!   `OwnVertex` on frontier-slot lanes, under
//!   [`Axiom::UniqueReservation`] for `ReservedSlot`;
//! * cells in disjoint BFS segments (`Current` vs `Next`) never
//!   alias ([`Axiom::SegmentPartition`]);
//! * anything the rules cannot separate **may alias** — the analysis
//!   is conservative, so a race-freedom verdict is a theorem while a
//!   reported racy pair may in principle be a false positive (none of
//!   the real kernels produce one).
//!
//! A pair races exactly when it may alias and at least one side is a
//! plain (non-atomic) write — the same phase-aware rule the dynamic
//! detector applies per cell, lifted to symbolic cells.
//!
//! On top of the race check the prover derives each kernel's
//! **minimal atomic set** by demotion: demote one declared atomic to
//! a plain write, re-run the proof, and call the atomic *required*
//! iff a race appears. The required set must equal both the declared
//! set and the set the `bc_gpusim` cost models price
//! ([`bc_core::kernel_spec::priced_atomics`]) — any drift between
//! proof, declaration, and pricing fails the gate.

use bc_core::kernel_spec::{
    kernel_spec, priced_atomics, AccessSpec, Axiom, IndexExpr, KernelId, KernelSpec, LaneKind,
    LaunchId, SegmentClass,
};
use bc_gpusim::trace::{AccessKind, KernelArray};
use std::collections::BTreeSet;

/// The set of kernel specs under analysis — the real declarations by
/// default, possibly rewritten by a seeded mutant.
#[derive(Clone, Debug)]
pub struct SpecSet {
    specs: Vec<KernelSpec>,
}

impl SpecSet {
    /// The engine's real declarations.
    pub fn real() -> SpecSet {
        SpecSet {
            specs: KernelId::ALL.into_iter().map(kernel_spec).collect(),
        }
    }

    /// The spec of one kernel.
    pub fn get(&self, id: KernelId) -> &KernelSpec {
        self.specs
            .iter()
            .find(|s| s.id == id)
            .expect("every kernel has a spec")
    }

    /// Mutable access for mutant injection.
    pub fn get_mut(&mut self, id: KernelId) -> &mut KernelSpec {
        self.specs
            .iter_mut()
            .find(|s| s.id == id)
            .expect("every kernel has a spec")
    }

    /// Does the dedup kernel discharge [`Axiom::DistinctFrontier`]?
    ///
    /// The axiom is a *consequence* of the CAS: `d[w]` leaves `∞`
    /// exactly once, so each vertex enters `Q_next` at most once and
    /// every later frontier/stack segment holds distinct vertices.
    /// Without the CAS (the seeded `dedup-without-cas` mutant) the
    /// exactly-once property is gone and the axiom is unavailable to
    /// every downstream proof.
    pub fn discharges_distinct_frontier(&self) -> bool {
        self.get(KernelId::FrontierDedup)
            .accesses
            .iter()
            .any(|a| a.array == KernelArray::Dist && a.kind == AccessKind::AtomicCas)
    }

    /// Does the dedup kernel discharge [`Axiom::UniqueReservation`]?
    /// Requires the queue-tail `atomicAdd`: each winner receives a
    /// distinct `Q_next` slot index.
    pub fn discharges_unique_reservation(&self) -> bool {
        self.get(KernelId::FrontierDedup).accesses.iter().any(|a| {
            a.array == KernelArray::Ends
                && a.kind == AccessKind::AtomicAdd
                && a.index == IndexExpr::QueueTail
        })
    }
}

/// One access within a launch, tagged with the kernel that declared
/// it and that kernel's lane space (launches may fuse kernels with
/// *different* lane spaces — ForwardPull runs frontier-slot
/// compaction lanes ahead of unvisited-vertex scan lanes).
#[derive(Clone, Copy, Debug)]
struct LaunchAccess {
    kernel: KernelId,
    lane: LaneKind,
    spec: AccessSpec,
}

/// A pair of accesses the prover could not separate, with at least
/// one plain write — a potential race.
#[derive(Clone, Debug)]
pub struct RacyPair {
    /// Kernel and access of the plain-writing side.
    pub writer: (KernelId, AccessSpec),
    /// Kernel and access of the conflicting side (another lane).
    pub other: (KernelId, AccessSpec),
}

impl std::fmt::Display for RacyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} may conflict with {}: {}",
            self.writer.0, self.writer.1, self.other.0, self.other.1
        )
    }
}

/// The proof outcome for one launch shape.
#[derive(Clone, Debug)]
pub struct LaunchProof {
    /// The launch proved (or refuted).
    pub launch: LaunchId,
    /// Pairs that may race — empty means race-free for all inputs.
    pub races: Vec<RacyPair>,
    /// Axioms the disjointness arguments invoked (the proof's trust
    /// base; each must be discharged by the dedup kernel's spec).
    pub axioms_used: BTreeSet<Axiom>,
}

impl LaunchProof {
    /// True when every pair was separated.
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty()
    }
}

/// Declared/required/priced atomic-set comparison for one kernel.
#[derive(Clone, Debug)]
pub struct AtomicAudit {
    /// The audited kernel.
    pub kernel: KernelId,
    /// Atomics the spec declares.
    pub declared: Vec<(KernelArray, AccessKind)>,
    /// Atomics the demotion test proves necessary (demoting any one
    /// of them to a plain write introduces a race).
    pub required: Vec<(KernelArray, AccessKind)>,
    /// Atomics the cost models price.
    pub priced: Vec<(KernelArray, AccessKind)>,
}

impl AtomicAudit {
    /// True when all three sets coincide — the minimal atomic set is
    /// exactly what is declared and exactly what is priced.
    pub fn agrees(&self) -> bool {
        self.declared == self.required && self.declared == self.priced
    }
}

/// The whole prover verdict.
#[derive(Clone, Debug)]
pub struct ProverReport {
    /// One proof per launch shape.
    pub launches: Vec<LaunchProof>,
    /// One atomic-set audit per kernel.
    pub audits: Vec<AtomicAudit>,
}

impl ProverReport {
    /// True when every launch is race-free and every kernel's
    /// declared, required, and priced atomic sets coincide.
    pub fn is_clean(&self) -> bool {
        self.launches.iter().all(|l| l.is_race_free()) && self.audits.iter().all(|a| a.agrees())
    }
}

/// Facts available to the alias analysis, derived once per spec set.
#[derive(Clone, Copy, Debug)]
struct Axioms {
    distinct_frontier: bool,
    unique_reservation: bool,
}

/// Can accesses `a` (on lane *i*) and `b` (on a different lane *j*)
/// touch the same cell, for some input? Returns `false` only when a
/// sound argument separates them, recording the axiom used.
fn may_alias(
    a: &LaunchAccess,
    b: &LaunchAccess,
    axioms: Axioms,
    used: &mut BTreeSet<Axiom>,
) -> bool {
    let (a, b, lanes) = (&a.spec, &b.spec, (a.lane, b.lane));
    if a.array != b.array {
        return false;
    }
    // Same-expression injectivity: lane i's instance vs lane j's.
    // Only meaningful when both accesses index through the *same*
    // lane space — a frontier slot and an unvisited vertex are
    // unrelated quantities, so cross-space pairs fall through to the
    // segment rule.
    if a.index == b.index && lanes.0 == lanes.1 {
        match a.index {
            // `segment_start + lane` and the word-id lane space are
            // injective by construction.
            IndexExpr::OwnSlot | IndexExpr::OwnWord => return false,
            // Distinct lanes own distinct vertices — trivially when
            // the lane *is* the vertex, by the dedup CAS's
            // exactly-once property when the lane is a frontier slot.
            IndexExpr::OwnVertex => match lanes.0 {
                LaneKind::UnvisitedVertex => return false,
                LaneKind::FrontierSlot => {
                    if axioms.distinct_frontier {
                        used.insert(Axiom::DistinctFrontier);
                        return false;
                    }
                }
            },
            // Queue-tail reservations hand out distinct slots.
            IndexExpr::ReservedSlot => {
                if axioms.unique_reservation {
                    used.insert(Axiom::UniqueReservation);
                    return false;
                }
            }
            // Two lanes may share a neighbor, share a bitmap word
            // (leaf or summary), or (by definition) the single tail
            // counter cell.
            IndexExpr::NeighborOfOwn
            | IndexExpr::NeighborWord
            | IndexExpr::OwnVertexWord
            | IndexExpr::OwnVertexSummaryWord
            | IndexExpr::QueueTail => {}
        }
    }
    // Segment partition: BFS depth is a function, so a cell cannot be
    // in both the current and the next segment.
    if !a.segment.overlaps(b.segment) {
        debug_assert!(a.segment != SegmentClass::Any && b.segment != SegmentClass::Any);
        used.insert(Axiom::SegmentPartition);
        return false;
    }
    // No rule separates the pair: conservatively, it may alias.
    true
}

/// Race-check one launch's merged access list: a pair races iff it
/// may alias and at least one side writes non-atomically (the dynamic
/// detector's rule, lifted to symbolic cells).
fn check_launch(launch: LaunchId, accesses: &[LaunchAccess], axioms: Axioms) -> LaunchProof {
    let mut races = Vec::new();
    let mut used = BTreeSet::new();
    for (i, a) in accesses.iter().enumerate() {
        // Self-pairs included: the same program access executed by
        // two different lanes.
        for b in &accesses[i..] {
            let plain_writer = if a.spec.kind == AccessKind::Write {
                Some((a, b))
            } else if b.spec.kind == AccessKind::Write {
                Some((b, a))
            } else {
                None
            };
            let Some((w, o)) = plain_writer else {
                continue; // reads and atomics never race together
            };
            if may_alias(a, b, axioms, &mut used) {
                races.push(RacyPair {
                    writer: (w.kernel, w.spec),
                    other: (o.kernel, o.spec),
                });
            }
        }
    }
    LaunchProof {
        launch,
        races,
        axioms_used: used,
    }
}

/// The merged access list of one launch under `specs`, tagged by
/// kernel and lane space. Fused kernels may share one lane space
/// (ForwardPush) or bring their own (ForwardPull's compaction runs
/// frontier-slot lanes ahead of the scan's unvisited-vertex lanes).
fn launch_accesses(specs: &SpecSet, launch: LaunchId) -> Vec<LaunchAccess> {
    let mut accesses = Vec::new();
    for &k in launch.kernels() {
        let spec = specs.get(k);
        for &a in &spec.accesses {
            accesses.push(LaunchAccess {
                kernel: k,
                lane: spec.lane,
                spec: a,
            });
        }
    }
    accesses
}

/// Prove (or refute) race-freedom of every launch under `specs`, and
/// audit each kernel's atomic set by demotion.
pub fn prove(specs: &SpecSet) -> ProverReport {
    let axioms = Axioms {
        distinct_frontier: specs.discharges_distinct_frontier(),
        unique_reservation: specs.discharges_unique_reservation(),
    };

    let launches: Vec<LaunchProof> = LaunchId::ALL
        .into_iter()
        .map(|l| check_launch(l, &launch_accesses(specs, l), axioms))
        .collect();

    // Demotion test: an atomic is *required* iff replacing it with a
    // plain write makes its launch racy. Axioms stay discharged from
    // the declared specs — the question is whether the operation
    // needs hardware synchronization, not a re-derivation of the
    // frontier properties.
    let mut audits = Vec::new();
    for id in KernelId::ALL {
        let launch = LaunchId::ALL
            .into_iter()
            .find(|l| l.kernels().contains(&id))
            .expect("every kernel belongs to a launch");
        let mut required = Vec::new();
        for (pos, access) in specs.get(id).accesses.iter().enumerate() {
            if !access.kind.is_atomic() {
                continue;
            }
            let mut demoted = specs.clone();
            demoted.get_mut(id).accesses[pos].kind = AccessKind::Write;
            if !check_launch(launch, &launch_accesses(&demoted, launch), axioms).is_race_free() {
                required.push((access.array, access.kind));
            }
        }
        required.sort();
        required.dedup();
        let mut declared = specs.get(id).declared_atomics();
        declared.sort();
        declared.dedup();
        let mut priced = priced_atomics(id);
        priced.sort();
        audits.push(AtomicAudit {
            kernel: id,
            declared,
            required,
            priced,
        });
    }

    ProverReport { launches, audits }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_specs_prove_race_free() {
        let report = prove(&SpecSet::real());
        for l in &report.launches {
            assert!(
                l.is_race_free(),
                "{:?}: {:?}",
                l.launch,
                l.races.iter().map(|r| r.to_string()).collect::<Vec<_>>()
            );
        }
        assert!(report.is_clean());
    }

    #[test]
    fn backward_proof_leans_on_both_structural_axioms() {
        let report = prove(&SpecSet::real());
        let backward = report
            .launches
            .iter()
            .find(|l| l.launch == LaunchId::Backward)
            .unwrap();
        // δ[w] self-pairs need distinct frontiers; the successor
        // reads need the segment partition.
        assert!(backward.axioms_used.contains(&Axiom::DistinctFrontier));
        assert!(backward.axioms_used.contains(&Axiom::SegmentPartition));
    }

    #[test]
    fn pull_proof_needs_no_frontier_axiom() {
        let report = prove(&SpecSet::real());
        let pull = report
            .launches
            .iter()
            .find(|l| l.launch == LaunchId::ForwardPull)
            .unwrap();
        assert!(pull.is_race_free());
        // Lane = vertex, so OwnVertex injectivity is definitional.
        assert!(!pull.axioms_used.contains(&Axiom::DistinctFrontier));
    }

    #[test]
    fn every_declared_atomic_is_required_and_priced() {
        let report = prove(&SpecSet::real());
        for audit in &report.audits {
            assert!(
                audit.agrees(),
                "{}: declared {:?} required {:?} priced {:?}",
                audit.kernel,
                audit.declared,
                audit.required,
                audit.priced
            );
        }
        let backward = report
            .audits
            .iter()
            .find(|a| a.kernel == KernelId::BackwardSweep)
            .unwrap();
        assert!(
            backward.required.is_empty(),
            "the paper's claim: the successor sweep needs no atomics"
        );
    }

    #[test]
    fn gratuitous_atomic_is_flagged_as_unrequired() {
        // Declare an atomic the kernel doesn't need: stack reads done
        // via a (pointless) atomicAdd on the lane's own slot. The
        // demotion test proves it unnecessary (OwnSlot is injective,
        // so the demoted plain write still cannot race), so declared
        // != required and the audit fails — over-synchronization is
        // drift too.
        let mut specs = SpecSet::real();
        let sweep = specs.get_mut(KernelId::BackwardSweep);
        let pos = sweep
            .accesses
            .iter()
            .position(|a| a.array == KernelArray::Stack)
            .unwrap();
        sweep.accesses[pos].kind = AccessKind::AtomicAdd;
        let report = prove(&specs);
        let audit = report
            .audits
            .iter()
            .find(|a| a.kernel == KernelId::BackwardSweep)
            .unwrap();
        assert!(
            audit.required.is_empty(),
            "demoting the pointless atomic must not introduce a race"
        );
        assert!(!audit.agrees());
        assert!(!report.is_clean());
    }
}
