//! Bounded exhaustive interleaving exploration of the shard
//! scheduler — a stateless model checker in the DPOR tradition, built
//! from scratch (everything in this workspace is vendored).
//!
//! The model abstracts `bc_core::schedule::ShardQueue` plus the
//! ordered merger of `bc_core::parallel`: each worker is a small
//! state machine over the *shared* state (deques, the guided cursor,
//! the merge frontier), and every shared-memory interaction the real
//! code performs under a lock or atomic is one indivisible model
//! step. Between steps, any worker may run — the explorer enumerates
//! **every** schedule of those steps up to the configured bound via
//! depth-first search with full-state memoization (the state graph is
//! finite; memoization also cuts steal ping-pong cycles), asserting
//! after every transition and at every terminal state that
//!
//! * no shard is **claimed twice** (duplicated work → double-counted
//!   δ contributions),
//! * no shard is **lost** (dropped roots → silently wrong scores),
//! * shards **merge in root-index order** (the determinism contract
//!   every bitwise-reproducibility test assumes).
//!
//! Modeled races the real code must survive: the work-stealing scan
//! whose victim drains between the depth snapshot and the lock
//! (`failed_steal_attempts`), concurrent thieves racing for one
//! victim, and the guided cursor's stale `Relaxed` remaining-count
//! read (TOCTOU between sizing a chunk and `fetch_add`ing it). Two
//! seeded scheduler mutants break exactly the protections under test:
//! [`SchedulerMutant::NonAtomicSteal`] splits the lock-protected
//! steal into a read of the victim's back half and a later blind
//! removal, and [`SchedulerMutant::CompletionOrderMerge`] emits
//! shards as they finish instead of holding them for index order.
//!
//! **Documented coarsening:** the victim scan is modeled as one
//! atomic snapshot choosing the deepest victim (ties to the lowest
//! index, matching the runner's strict `depth > d` comparison),
//! whereas the real scan reads each deque length under its own lock.
//! The per-queue-lock interleavings the snapshot hides can only make
//! the chosen victim *staler* — a case the model already covers,
//! because the victim may drain arbitrarily between the scan step and
//! the steal step.

use bc_core::{guided_chunk, lpt_seed, Schedule};
use std::collections::{HashSet, VecDeque};

/// Seeded scheduler bugs the explorer must catch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerMutant {
    /// Steal-back-half without the victim's lock: read the batch,
    /// then blindly truncate the victim by the batch length. A victim
    /// pop (or a second thief) between the two steps duplicates or
    /// loses shards.
    NonAtomicSteal,
    /// Deposit shards into the merged output in completion order
    /// instead of holding them for root-index order.
    CompletionOrderMerge,
}

impl SchedulerMutant {
    /// Every scheduler mutant.
    pub const ALL: [SchedulerMutant; 2] = [
        SchedulerMutant::NonAtomicSteal,
        SchedulerMutant::CompletionOrderMerge,
    ];

    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerMutant::NonAtomicSteal => "non-atomic-steal",
            SchedulerMutant::CompletionOrderMerge => "completion-order-merge",
        }
    }
}

/// Exploration bound and cost shape.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Concurrent workers in the model.
    pub workers: usize,
    /// Shards to schedule.
    pub shards: usize,
    /// Per-shard cost estimates seeding the LPT order (None = unit).
    pub costs: Option<Vec<f64>>,
    /// Abort with [`ModelError::StateBudget`] beyond this many
    /// distinct states — the bound is honest, never silent.
    pub max_states: usize,
}

impl ModelConfig {
    /// The PR's full verification bound: 4 workers × 6 shards.
    pub fn full() -> ModelConfig {
        ModelConfig {
            workers: 4,
            shards: 6,
            costs: None,
            max_states: 50_000_000,
        }
    }

    /// A quick smoke bound: 3 workers × 4 shards.
    pub fn quick() -> ModelConfig {
        ModelConfig {
            workers: 3,
            shards: 4,
            costs: None,
            max_states: 2_000_000,
        }
    }

    /// The same bound with a skewed cost vector (distinct costs, so
    /// the LPT order differs from index order).
    pub fn skewed(&self) -> ModelConfig {
        let mut cfg = self.clone();
        cfg.costs = Some((0..self.shards).map(|s| ((s * 7) % 5 + 1) as f64).collect());
        cfg
    }
}

/// An invariant the scheduler model violated, with a replayable
/// counterexample.
#[derive(Clone, Debug)]
pub struct ViolationReport {
    /// Which invariant broke.
    pub kind: Violation,
    /// The worker-step sequence from the initial state to the
    /// violation, e.g. `w0:pop(3)`.
    pub steps: Vec<String>,
}

/// The scheduler invariants under check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A shard was claimed by two processings.
    Duplicated(u32),
    /// A shard was never processed though every worker finished.
    Lost(u32),
    /// A shard entered the merged output out of root-index order.
    OutOfOrder(u32),
    /// Workers all finished with deposits still unmerged.
    MergeIncomplete,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Duplicated(s) => write!(f, "shard {s} claimed twice"),
            Violation::Lost(s) => write!(f, "shard {s} lost"),
            Violation::OutOfOrder(s) => write!(f, "shard {s} merged out of order"),
            Violation::MergeIncomplete => write!(f, "merge incomplete at termination"),
        }
    }
}

/// Why an exploration did not finish clean.
#[derive(Clone, Debug)]
pub enum ModelError {
    /// An invariant broke; the report replays the interleaving.
    Violation(ViolationReport),
    /// The state budget ran out before exhaustion.
    StateBudget {
        /// Distinct states explored before giving up.
        explored: usize,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Violation(v) => {
                write!(f, "{} after steps [{}]", v.kind, v.steps.join(", "))
            }
            ModelError::StateBudget { explored } => {
                write!(f, "state budget exhausted after {explored} states")
            }
        }
    }
}

/// A clean, exhausted exploration.
#[derive(Clone, Copy, Debug)]
pub struct Exploration {
    /// Distinct states visited.
    pub states: usize,
    /// Terminal states checked (all workers done).
    pub terminals: usize,
}

/// Per-worker program counter. Every variant has exactly one enabled
/// step, so the only scheduling choice is *which worker* moves —
/// branching factor ≤ workers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Pc {
    /// About to pop local work, scan for a victim, or size a guided
    /// chunk.
    Ready,
    /// Work-stealing: scanned and chose a victim; about to take the
    /// back half under its lock (or, mutated, to read it lock-free).
    Scanned(u8),
    /// `NonAtomicSteal` only: holds a copied batch; about to blindly
    /// truncate the victim and keep the copy.
    HoldStolen(u8, Vec<u8>),
    /// Guided: sized a chunk from a stale remaining-count read; about
    /// to `fetch_add` the cursor by that amount.
    TakeChunk(u8),
    /// Claimed a shard; about to process and deposit it.
    Process(u8),
    /// Out of the claim loop.
    Done,
}

/// One model state. Shards and workers fit in `u8`/`u64` bitmasks at
/// the explored bounds, keeping states small enough to memoize by
/// value.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct State {
    /// Work-stealing deques / static blocks / guided local chunks.
    queues: Vec<VecDeque<u8>>,
    /// Guided shared cursor (clamped to the order length — the real
    /// `fetch_add` can overshoot, but every overshot value behaves
    /// identically to `len`, so clamping merely folds equivalent
    /// states together).
    cursor: u8,
    pcs: Vec<Pc>,
    /// Bit s set = shard s claimed (a second claim is the violation).
    claimed: u64,
    /// Bit s set = shard s deposited but not yet emitted.
    pending: u64,
    /// Next shard index the ordered merger will emit.
    next_emit: u8,
    /// Shards emitted into the merged output so far.
    emit_count: u8,
}

struct Explorer {
    schedule: Schedule,
    workers: usize,
    shards: usize,
    /// Guided claim order (LPT).
    order: Vec<u8>,
    mutant: Option<SchedulerMutant>,
    max_states: usize,
}

/// The outcome of one worker step.
enum StepResult {
    Ok(State),
    Bad(Violation),
}

impl Explorer {
    fn initial(&self, costs: Option<&[f64]>) -> State {
        let queues: Vec<VecDeque<u8>> = match self.schedule {
            // Mirrors ShardQueue::new(Static): contiguous blocks.
            Schedule::Static => {
                let per = self.shards.div_ceil(self.workers).max(1);
                (0..self.workers)
                    .map(|w| {
                        let lo = (w * per).min(self.shards);
                        let hi = ((w + 1) * per).min(self.shards);
                        (lo..hi).map(|s| s as u8).collect()
                    })
                    .collect()
            }
            // Guided queues start empty (they buffer claimed chunks).
            Schedule::Guided => (0..self.workers).map(|_| VecDeque::new()).collect(),
            // Mirrors ShardQueue::new(WorkStealing): LPT-greedy seed.
            Schedule::WorkStealing => lpt_seed(self.shards, self.workers, costs)
                .into_iter()
                .map(|q| q.into_iter().map(|s| s as u8).collect())
                .collect(),
        };
        State {
            queues,
            cursor: 0,
            pcs: vec![Pc::Ready; self.workers],
            claimed: 0,
            pending: 0,
            next_emit: 0,
            emit_count: 0,
        }
    }

    /// Claim `shard` into `Pc::Process`, flagging double claims.
    fn claim(&self, st: &mut State, w: usize, shard: u8) -> Option<Violation> {
        let bit = 1u64 << shard;
        if st.claimed & bit != 0 {
            return Some(Violation::Duplicated(shard as u32));
        }
        st.claimed |= bit;
        st.pcs[w] = Pc::Process(shard);
        None
    }

    /// Deposit a processed shard into the merger.
    fn deposit(&self, st: &mut State, shard: u8) -> Option<Violation> {
        if self.mutant == Some(SchedulerMutant::CompletionOrderMerge) {
            // Mutant: emit immediately, in completion order.
            if shard != st.emit_count {
                return Some(Violation::OutOfOrder(shard as u32));
            }
            st.emit_count += 1;
            return None;
        }
        // Ordered merger: hold out-of-order deposits, flush the
        // contiguous prefix (parallel.rs's OrderedMerger).
        st.pending |= 1u64 << shard;
        while st.pending & (1u64 << st.next_emit) != 0 {
            st.pending &= !(1u64 << st.next_emit);
            debug_assert_eq!(st.next_emit, st.emit_count, "ordered merger emits in order");
            st.next_emit += 1;
            st.emit_count += 1;
        }
        None
    }

    /// The deepest victim by one-shot snapshot: strict `depth > best`
    /// keeps the lowest index among ties, like the runner's scan.
    fn deepest_victim(&self, st: &State, w: usize) -> Option<u8> {
        let mut victim: Option<(usize, usize)> = None;
        for (i, q) in st.queues.iter().enumerate() {
            if i == w {
                continue;
            }
            let depth = q.len();
            if depth > 0 && victim.is_none_or(|(d, _)| depth > d) {
                victim = Some((depth, i));
            }
        }
        victim.map(|(_, i)| i as u8)
    }

    /// Execute worker `w`'s single enabled step. Returns `None` when
    /// `w` is `Done` (no step). The `label` out-parameter receives a
    /// replay tag.
    fn step(&self, st: &State, w: usize, label: &mut String) -> Option<StepResult> {
        let mut next = st.clone();
        let violation = match st.pcs[w].clone() {
            Pc::Done => return None,
            Pc::Ready => {
                if let Some(shard) = next.queues[w].pop_front() {
                    *label = format!("w{w}:pop({shard})");
                    self.claim(&mut next, w, shard)
                } else {
                    match self.schedule {
                        Schedule::Static => {
                            *label = format!("w{w}:done");
                            next.pcs[w] = Pc::Done;
                            None
                        }
                        Schedule::Guided => {
                            // Stale remaining-count read (Relaxed in
                            // the runner); the chunk size is fixed
                            // here but applied at the next step.
                            let remaining = self.order.len().saturating_sub(st.cursor as usize);
                            let take = guided_chunk(remaining, self.workers);
                            *label = format!("w{w}:size({take})");
                            next.pcs[w] = Pc::TakeChunk(take as u8);
                            None
                        }
                        Schedule::WorkStealing => match self.deepest_victim(st, w) {
                            Some(v) => {
                                *label = format!("w{w}:scan(v{v})");
                                next.pcs[w] = Pc::Scanned(v);
                                None
                            }
                            None => {
                                *label = format!("w{w}:done");
                                next.pcs[w] = Pc::Done;
                                None
                            }
                        },
                    }
                }
            }
            Pc::TakeChunk(take) => {
                // The cursor fetch_add. lo may have raced past the
                // end — then the worker is done.
                let len = self.order.len();
                let lo = st.cursor as usize;
                next.cursor = (lo + take as usize).min(len) as u8;
                if lo >= len {
                    *label = format!("w{w}:done");
                    next.pcs[w] = Pc::Done;
                } else {
                    let hi = (lo + take as usize).min(len);
                    next.queues[w].extend(self.order[lo..hi].iter().copied());
                    *label = format!("w{w}:chunk({lo}..{hi})");
                    next.pcs[w] = Pc::Ready;
                }
                None
            }
            Pc::Scanned(v) => {
                let vq = &mut next.queues[v as usize];
                let keep = vq.len() / 2;
                if self.mutant == Some(SchedulerMutant::NonAtomicSteal) {
                    // Mutant: copy the back half without removing it;
                    // removal happens in a separate, racy step.
                    let batch: Vec<u8> = vq.iter().skip(keep).copied().collect();
                    if batch.is_empty() {
                        *label = format!("w{w}:steal-miss(v{v})");
                        next.pcs[w] = Pc::Ready;
                    } else {
                        *label = format!("w{w}:read-half(v{v})");
                        next.pcs[w] = Pc::HoldStolen(v, batch);
                    }
                } else {
                    // Real semantics: split_off under the victim's
                    // lock — one indivisible step.
                    let stolen: Vec<u8> = vq.drain(keep..).collect();
                    if stolen.is_empty() {
                        *label = format!("w{w}:steal-miss(v{v})");
                    } else {
                        *label = format!("w{w}:steal(v{v},{})", stolen.len());
                        next.queues[w].extend(stolen);
                    }
                    next.pcs[w] = Pc::Ready;
                }
                None
            }
            Pc::HoldStolen(v, batch) => {
                // Mutant second half: blindly truncate the victim by
                // the remembered count, keep the copied batch. If the
                // victim shrank meanwhile, the truncation removes the
                // wrong shards (or nothing) while the copy survives.
                let vq = &mut next.queues[v as usize];
                let remove = batch.len().min(vq.len());
                vq.truncate(vq.len() - remove);
                next.queues[w].extend(batch.iter().copied());
                *label = format!("w{w}:take-half(v{v})");
                next.pcs[w] = Pc::Ready;
                None
            }
            Pc::Process(shard) => {
                *label = format!("w{w}:merge({shard})");
                next.pcs[w] = Pc::Ready;
                self.deposit(&mut next, shard)
            }
        };
        Some(match violation {
            Some(v) => StepResult::Bad(v),
            None => StepResult::Ok(next),
        })
    }

    /// All invariants that must hold once every worker is `Done`.
    fn check_terminal(&self, st: &State) -> Option<Violation> {
        for s in 0..self.shards {
            if st.claimed & (1u64 << s) == 0 {
                return Some(Violation::Lost(s as u32));
            }
        }
        if st.emit_count as usize != self.shards {
            return Some(Violation::MergeIncomplete);
        }
        None
    }
}

/// Exhaustively explore every interleaving of `schedule` under `cfg`,
/// optionally with a seeded mutant. `Ok` means the bound was
/// exhausted with zero invariant violations.
pub fn explore(
    schedule: Schedule,
    cfg: &ModelConfig,
    mutant: Option<SchedulerMutant>,
) -> Result<Exploration, ModelError> {
    assert!(cfg.shards <= 64, "claimed/pending bitmasks hold 64 shards");
    assert!(cfg.workers >= 1);
    let explorer = Explorer {
        schedule,
        workers: cfg.workers,
        shards: cfg.shards,
        order: bc_core::lpt_order(cfg.shards, cfg.costs.as_deref())
            .into_iter()
            .map(|s| s as u8)
            .collect(),
        mutant,
        max_states: cfg.max_states,
    };

    let init = explorer.initial(cfg.costs.as_deref());
    let mut visited: HashSet<State> = HashSet::new();
    visited.insert(init.clone());
    // DFS frames: (state, next worker index to try). `path` mirrors
    // the frame stack with the step labels taken, so a violation
    // reports its full interleaving.
    let mut frames: Vec<(State, usize)> = vec![(init, 0)];
    let mut path: Vec<String> = Vec::new();
    let mut terminals = 0usize;

    while let Some((state, w)) = frames.last().cloned() {
        if w == 0 && state.pcs.iter().all(|pc| *pc == Pc::Done) {
            if let Some(v) = explorer.check_terminal(&state) {
                return Err(ModelError::Violation(ViolationReport {
                    kind: v,
                    steps: path,
                }));
            }
            terminals += 1;
            frames.pop();
            path.pop();
            continue;
        }
        if w >= explorer.workers {
            frames.pop();
            path.pop();
            continue;
        }
        frames.last_mut().expect("frame just read").1 = w + 1;
        let mut label = String::new();
        match explorer.step(&state, w, &mut label) {
            None => continue, // worker Done: no step
            Some(StepResult::Bad(violation)) => {
                let mut steps = path.clone();
                steps.push(label);
                return Err(ModelError::Violation(ViolationReport {
                    kind: violation,
                    steps,
                }));
            }
            Some(StepResult::Ok(next)) => {
                if visited.contains(&next) {
                    continue;
                }
                if visited.len() >= explorer.max_states {
                    return Err(ModelError::StateBudget {
                        explored: visited.len(),
                    });
                }
                visited.insert(next.clone());
                frames.push((next, 0));
                path.push(label);
            }
        }
    }

    Ok(Exploration {
        states: visited.len(),
        terminals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_clean(schedule: Schedule, cfg: &ModelConfig) -> Exploration {
        match explore(schedule, cfg, None) {
            Ok(e) => e,
            Err(e) => panic!("{schedule} must be clean: {e}"),
        }
    }

    #[test]
    fn quick_bound_is_clean_for_every_schedule() {
        for schedule in Schedule::ALL {
            for cfg in [ModelConfig::quick(), ModelConfig::quick().skewed()] {
                let e = assert_clean(schedule, &cfg);
                assert!(e.states > 0 && e.terminals > 0, "{schedule}");
            }
        }
    }

    #[test]
    fn single_worker_is_fully_sequential() {
        let cfg = ModelConfig {
            workers: 1,
            shards: 5,
            costs: None,
            max_states: 100_000,
        };
        for schedule in Schedule::ALL {
            let e = assert_clean(schedule, &cfg);
            // One worker → exactly one schedule of steps.
            assert_eq!(e.terminals, 1, "{schedule}");
        }
    }

    #[test]
    fn non_atomic_steal_duplicates_or_loses_shards() {
        let cfg = ModelConfig::quick();
        let err = explore(
            Schedule::WorkStealing,
            &cfg,
            Some(SchedulerMutant::NonAtomicSteal),
        )
        .expect_err("the racy steal must violate an invariant");
        let ModelError::Violation(v) = err else {
            panic!("expected a violation, got {err}");
        };
        assert!(
            matches!(v.kind, Violation::Duplicated(_) | Violation::Lost(_)),
            "{}",
            v.kind
        );
        assert!(!v.steps.is_empty(), "counterexample must replay");
    }

    #[test]
    fn completion_order_merge_breaks_root_order() {
        // Any schedule with ≥ 2 workers can deposit out of index
        // order; work-stealing with skewed costs does so quickly.
        let cfg = ModelConfig::quick().skewed();
        for schedule in [Schedule::WorkStealing, Schedule::Guided, Schedule::Static] {
            let err = explore(schedule, &cfg, Some(SchedulerMutant::CompletionOrderMerge))
                .expect_err("completion-order merge must break index order");
            let ModelError::Violation(v) = err else {
                panic!("expected a violation, got {err}");
            };
            assert!(
                matches!(v.kind, Violation::OutOfOrder(_)),
                "{schedule}: {}",
                v.kind
            );
        }
    }

    #[test]
    fn zero_shards_terminate_immediately() {
        let cfg = ModelConfig {
            workers: 3,
            shards: 0,
            costs: None,
            max_states: 10_000,
        };
        for schedule in Schedule::ALL {
            assert_clean(schedule, &cfg);
        }
    }

    #[test]
    fn state_budget_is_an_error_not_a_pass() {
        let cfg = ModelConfig {
            workers: 3,
            shards: 5,
            costs: None,
            max_states: 10,
        };
        let err = explore(Schedule::WorkStealing, &cfg, None).expect_err("10 states cannot cover");
        assert!(matches!(err, ModelError::StateBudget { .. }), "{err}");
    }
}
