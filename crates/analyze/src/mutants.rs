//! The mutation battery: seeded bugs the analyzer must catch.
//!
//! Each mutant plants one classic betweenness-centrality
//! implementation error — the exact bugs the paper's design choices
//! exist to rule out — and the gate demands that `bc-analyze` reject
//! every one of them. A static-analysis pass that cannot flag a
//! predecessor-style δ accumulation or a CAS-less frontier proves
//! nothing when it blesses the real kernels; the battery is the
//! analyzer's own regression suite.
//!
//! Three mutants rewrite kernel specs (caught by the prover); two
//! rewrite the scheduler model (caught by the interleaving explorer,
//! see [`crate::model::SchedulerMutant`]).

use crate::model::SchedulerMutant;
use crate::prover::SpecSet;
use bc_core::kernel_spec::{IndexExpr, KernelId, SegmentClass};
use bc_gpusim::trace::{AccessKind, KernelArray};

/// A seeded kernel-spec bug.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecMutant {
    /// Accumulate δ at the *predecessor* side, Brandes-style: the
    /// backward sweep's δ store targets `NeighborOfOwn` instead of the
    /// lane's own vertex. Two lanes sharing a predecessor now
    /// plain-write the same cell — the very race the paper's
    /// successor-based formulation (its Algorithm 3) eliminates.
    PredecessorAccumulation,
    /// Discover frontiers with a plain write instead of `atomicCAS` on
    /// `d`. The direct duplicate-discovery race appears, **and** the
    /// exactly-once property dies, so [`Axiom::DistinctFrontier`] is
    /// no longer discharged and the backward sweep's proof collapses
    /// too — one seeded bug, cascading refutations.
    ///
    /// [`Axiom::DistinctFrontier`]: bc_core::kernel_spec::Axiom
    DedupWithoutCas,
    /// Read successor δ from the *current* level segment instead of
    /// the next one — the off-by-one that breaks the level-segment
    /// partition argument and lets the read collide with another
    /// lane's δ store.
    LevelSegmentOffByOne,
}

impl SpecMutant {
    /// Every spec mutant.
    pub const ALL: [SpecMutant; 3] = [
        SpecMutant::PredecessorAccumulation,
        SpecMutant::DedupWithoutCas,
        SpecMutant::LevelSegmentOffByOne,
    ];

    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            SpecMutant::PredecessorAccumulation => "predecessor-accumulation",
            SpecMutant::DedupWithoutCas => "dedup-without-cas",
            SpecMutant::LevelSegmentOffByOne => "level-off-by-one",
        }
    }

    /// The real spec set with this bug planted.
    pub fn apply(self) -> SpecSet {
        let mut specs = SpecSet::real();
        match self {
            SpecMutant::PredecessorAccumulation => {
                let sweep = specs.get_mut(KernelId::BackwardSweep);
                let store = sweep
                    .accesses
                    .iter_mut()
                    .find(|a| a.array == KernelArray::Delta && a.kind == AccessKind::Write)
                    .expect("the sweep has one delta store");
                store.index = IndexExpr::NeighborOfOwn;
            }
            SpecMutant::DedupWithoutCas => {
                let dedup = specs.get_mut(KernelId::FrontierDedup);
                let cas = dedup
                    .accesses
                    .iter_mut()
                    .find(|a| a.array == KernelArray::Dist && a.kind == AccessKind::AtomicCas)
                    .expect("the dedup kernel has the CAS");
                cas.kind = AccessKind::Write;
            }
            SpecMutant::LevelSegmentOffByOne => {
                let sweep = specs.get_mut(KernelId::BackwardSweep);
                let read = sweep
                    .accesses
                    .iter_mut()
                    .find(|a| a.array == KernelArray::Delta && a.kind == AccessKind::Read)
                    .expect("the sweep reads successor delta");
                read.segment = SegmentClass::Current;
            }
        }
        specs
    }
}

/// Every seeded bug, kernel-spec and scheduler alike, under one name
/// space for the CLI's `--mutant` flag and the battery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutant {
    /// A kernel-spec bug, refuted by the prover.
    Spec(SpecMutant),
    /// A scheduler bug, refuted by the interleaving explorer.
    Scheduler(SchedulerMutant),
}

impl Mutant {
    /// The whole battery.
    pub const ALL: [Mutant; 5] = [
        Mutant::Spec(SpecMutant::PredecessorAccumulation),
        Mutant::Spec(SpecMutant::DedupWithoutCas),
        Mutant::Spec(SpecMutant::LevelSegmentOffByOne),
        Mutant::Scheduler(SchedulerMutant::NonAtomicSteal),
        Mutant::Scheduler(SchedulerMutant::CompletionOrderMerge),
    ];

    /// Stable kebab-case name (the CLI's `--mutant` values).
    pub fn name(self) -> &'static str {
        match self {
            Mutant::Spec(m) => m.name(),
            Mutant::Scheduler(m) => m.name(),
        }
    }

    /// Parse a `--mutant` flag value.
    pub fn parse(s: &str) -> Option<Mutant> {
        Mutant::ALL.into_iter().find(|m| m.name() == s)
    }
}

impl std::fmt::Display for Mutant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prover::prove;
    use bc_core::kernel_spec::LaunchId;

    #[test]
    fn predecessor_accumulation_races_the_backward_sweep() {
        let report = prove(&SpecMutant::PredecessorAccumulation.apply());
        let backward = report
            .launches
            .iter()
            .find(|l| l.launch == LaunchId::Backward)
            .unwrap();
        assert!(!backward.is_race_free(), "shared-predecessor δ race");
        assert!(!report.is_clean());
    }

    #[test]
    fn dedup_without_cas_cascades_to_the_backward_proof() {
        let specs = SpecMutant::DedupWithoutCas.apply();
        assert!(!specs.discharges_distinct_frontier());
        let report = prove(&specs);
        let racy: Vec<_> = report
            .launches
            .iter()
            .filter(|l| !l.is_race_free())
            .map(|l| l.launch)
            .collect();
        assert!(racy.contains(&LaunchId::ForwardPush), "direct dedup race");
        assert!(
            racy.contains(&LaunchId::Backward),
            "losing DistinctFrontier must sink the sweep's proof too"
        );
    }

    #[test]
    fn level_off_by_one_breaks_the_partition_argument() {
        let report = prove(&SpecMutant::LevelSegmentOffByOne.apply());
        let backward = report
            .launches
            .iter()
            .find(|l| l.launch == LaunchId::Backward)
            .unwrap();
        assert!(!backward.is_race_free(), "read/write δ collision");
    }

    #[test]
    fn mutant_names_round_trip() {
        for m in Mutant::ALL {
            assert_eq!(Mutant::parse(m.name()), Some(m), "{m}");
        }
        assert_eq!(Mutant::parse("no-such-mutant"), None);
    }
}
