//! Spec-vs-trace conformance: replay recorded engine traces against
//! the symbolic kernel IR.
//!
//! The prover ([`crate::prover`]) reasons about the declared
//! [`bc_core::kernel_spec`] specs; this pass pins those declarations
//! to reality. For every dataset analogue it records full access
//! traces (push-mode and forced-pull forward passes, plus the
//! backward sweeps) and checks, event by event, that each access the
//! engine emitted is **admitted** by some spec of its launch — same
//! array, same flavor, an index the spec's symbolic expression can
//! produce for that lane, in the segment the spec promises. Aggregate
//! shape checks (CAS-per-edge, reservation coverage of the next queue
//! segment, exactly-one-δ-store-per-lane, zero backward atomics)
//! close the gaps per-event matching cannot see, and per-spec hit
//! counters prove the reverse direction: every declared access is
//! exercised by some recorded event, so the IR holds no dead
//! declarations. Drift in either direction — an emission site the IR
//! does not admit, or a spec no trace ever hits — fails the gate.
//!
//! Validation uses only *final* search state (`dist`, `S`, `ends`),
//! which is sound because the engine writes each of those cells once:
//! a vertex's recorded depth is its depth at every instant after
//! discovery.

use bc_core::engine::{
    process_root_traced, FreeModel, RootContext, RootOutcome, SearchWorkspace, Traversal,
};
use bc_core::kernel_spec::{kernel_spec, AccessSpec, IndexExpr, KernelId, LaunchId, SegmentClass};
use bc_core::{DirectionOptimizingModel, TraversalMode};
use bc_gpusim::trace::{AccessKind, KernelArray, TraceEvent, TracePhase};
use bc_gpusim::DeviceConfig;
use bc_graph::{Csr, DatasetId};
use bc_verify::trace::{LevelTrace, RecordingSink};

/// What to record and replay.
#[derive(Clone, Debug)]
pub struct ConformanceOptions {
    /// Datasets to check (the full gate uses [`DatasetId::ALL`]).
    pub datasets: Vec<DatasetId>,
    /// Evenly-spaced roots per dataset.
    pub roots: usize,
    /// Generator seed.
    pub seed: u64,
}

impl ConformanceOptions {
    /// The full gate: every dataset analogue.
    pub fn full(roots: usize, seed: u64) -> ConformanceOptions {
        ConformanceOptions {
            datasets: DatasetId::ALL.to_vec(),
            roots,
            seed,
        }
    }
}

/// Outcome of a conformance run.
#[derive(Clone, Debug, Default)]
pub struct ConformanceReport {
    /// Datasets replayed.
    pub datasets: usize,
    /// Root searches replayed (push and pull runs counted separately).
    pub runs: usize,
    /// Kernel launches (levels) checked.
    pub levels: usize,
    /// Events validated.
    pub events: u64,
    /// Total violations found.
    pub error_count: u64,
    /// The first violations, with context (capped — see
    /// [`ConformanceReport::MAX_REPORTED`]).
    pub errors: Vec<String>,
    /// Declared specs no recorded event exercised.
    pub unhit_specs: Vec<String>,
}

impl ConformanceReport {
    /// How many violations are kept verbatim.
    pub const MAX_REPORTED: usize = 20;

    /// True when every event conformed and every spec was hit.
    pub fn is_clean(&self) -> bool {
        self.error_count == 0 && self.unhit_specs.is_empty()
    }

    fn push_error(&mut self, msg: String) {
        if self.errors.len() < Self::MAX_REPORTED {
            self.errors.push(msg);
        }
        self.error_count += 1;
    }
}

/// Per-spec hit counters, keyed by (kernel, access position).
struct HitTable {
    hits: Vec<(KernelId, AccessSpec, u64)>,
}

impl HitTable {
    fn new() -> HitTable {
        let mut hits = Vec::new();
        for id in KernelId::ALL {
            for &a in &kernel_spec(id).accesses {
                hits.push((id, a, 0));
            }
        }
        HitTable { hits }
    }

    fn hit(&mut self, kernel: KernelId, spec: &AccessSpec) {
        let row = self
            .hits
            .iter_mut()
            .find(|(k, a, _)| *k == kernel && a == spec)
            .expect("hit table covers every declared spec");
        row.2 += 1;
    }

    fn unhit(&self) -> Vec<String> {
        self.hits
            .iter()
            .filter(|(_, _, n)| *n == 0)
            .map(|(k, a, _)| format!("{k}: {a}"))
            .collect()
    }
}

/// Everything needed to validate one level's events against the IR.
struct LevelCtx<'a> {
    g: &'a Csr,
    dist: &'a [u32],
    s: &'a [u32],
    launch: LaunchId,
    depth: u32,
    /// Current stack/queue segment (slot indices).
    seg: std::ops::Range<usize>,
    /// Next segment (empty on the last forward level).
    next_seg: std::ops::Range<usize>,
    /// Pull levels only: does this level rebuild the compressed
    /// frontier (first pull level after a push, or a forced-pull
    /// start)? Only rebuild levels run [`KernelId::FrontierCompact`]
    /// lanes.
    compact: bool,
}

impl LevelCtx<'_> {
    /// Does `v/32 == word` for some neighbor of `own`? Adjacency is
    /// sorted, so the word's vertex range is one binary search.
    fn neighbor_in_word(&self, own: u32, word: u32) -> bool {
        let ns = self.g.neighbors(own);
        let lo = ns.partition_point(|&v| v < word * 32);
        ns.get(lo).is_some_and(|&v| v / 32 == word)
    }

    /// Can `kernel`'s `spec` produce `ev` for this level? Lanes are
    /// resolved per kernel: a fused launch may mix lane spaces
    /// (ForwardPull runs frontier-slot compaction lanes ahead of the
    /// unvisited-vertex scan lanes).
    fn admits(&self, kernel: KernelId, spec: &AccessSpec, ev: &TraceEvent) -> bool {
        // Resolve the lane to its vertex per the kernel's lane space.
        let own: u32 = match self.launch {
            LaunchId::ForwardPush | LaunchId::Backward => {
                let slot = self.seg.start + ev.thread as usize;
                if slot >= self.seg.end {
                    return false; // lane outside the frontier segment
                }
                self.s[slot]
            }
            LaunchId::ForwardPull if kernel == KernelId::FrontierCompact => {
                // Frontier-slot lanes, present only on rebuild levels.
                if !self.compact {
                    return false;
                }
                let slot = self.seg.start + ev.thread as usize;
                if slot >= self.seg.end {
                    return false;
                }
                self.s[slot]
            }
            LaunchId::ForwardPull => {
                if spec.index == IndexExpr::OwnWord {
                    // Word-id lane space: the visited-bitmap scan.
                    let words = (self.g.num_vertices() as u32).div_ceil(32);
                    return ev.thread < words && ev.index == ev.thread;
                }
                // Vertex lane; must have been unvisited when the level
                // began, i.e. its final depth is beyond this level.
                let w = ev.thread;
                if w as usize >= self.g.num_vertices() || self.dist[w as usize] <= self.depth {
                    return false;
                }
                w
            }
        };
        let index_ok = match spec.index {
            IndexExpr::OwnSlot => ev.index as usize == self.seg.start + ev.thread as usize,
            IndexExpr::ReservedSlot => self.next_seg.contains(&(ev.index as usize)),
            IndexExpr::OwnVertex => ev.index == own,
            IndexExpr::NeighborOfOwn => self.g.has_arc(own, ev.index),
            IndexExpr::OwnVertexWord => ev.index == own / bc_core::frontier::VERTICES_PER_WORD,
            IndexExpr::OwnVertexSummaryWord => {
                ev.index == own / bc_core::frontier::VERTICES_PER_SUMMARY_WORD
            }
            IndexExpr::NeighborWord => self.neighbor_in_word(own, ev.index),
            IndexExpr::OwnWord => unreachable!("handled in the pull lane resolution"),
            IndexExpr::QueueTail => ev.index == self.depth + 1,
        };
        index_ok && self.segment_ok(spec, ev, own)
    }

    /// Does the touched cell lie in the segment the spec promises?
    fn segment_ok(&self, spec: &AccessSpec, ev: &TraceEvent, own: u32) -> bool {
        let want_depth = match spec.segment {
            SegmentClass::Any => return true,
            SegmentClass::Current => self.depth,
            SegmentClass::Next => self.depth + 1,
        };
        match ev.array {
            // Vertex-indexed arrays: the cell's BFS depth is its final
            // recorded distance (written once, then stable).
            KernelArray::Dist | KernelArray::Sigma | KernelArray::Delta => {
                self.dist.get(ev.index as usize) == Some(&want_depth)
            }
            // Slot-indexed arrays: segment = slot range.
            KernelArray::QCurr | KernelArray::QNext | KernelArray::Stack => {
                let range = if spec.segment == SegmentClass::Current {
                    &self.seg
                } else {
                    &self.next_seg
                };
                range.contains(&(ev.index as usize))
            }
            // The queue-tail counter cell for depth d+1.
            KernelArray::Ends => ev.index == self.depth + 1,
            // Word-granular bitmaps (leaf and summary): a word spans
            // vertices of mixed depth, so the promise binds the
            // *owning vertex*.
            KernelArray::VisitedBits
            | KernelArray::FrontierBits
            | KernelArray::NextBits
            | KernelArray::SummaryBits => self.dist.get(own as usize) == Some(&want_depth),
        }
    }
}

/// Count events in `level` matching `(array, kind)`.
fn count(level: &LevelTrace, array: KernelArray, kind: AccessKind) -> usize {
    level
        .events
        .iter()
        .filter(|e| e.array == array && e.kind == kind)
        .count()
}

/// Validate one recorded level against its launch's merged specs.
fn check_level(
    ctx: &LevelCtx<'_>,
    level: &LevelTrace,
    hits: &mut HitTable,
    report: &mut ConformanceReport,
    where_: &str,
) {
    let kernels = ctx.launch.kernels();
    for ev in &level.events {
        report.events += 1;
        let mut admitted = false;
        for &k in kernels {
            for a in &kernel_spec(k).accesses {
                if a.array == ev.array && a.kind == ev.kind && ctx.admits(k, a, ev) {
                    hits.hit(k, a);
                    admitted = true;
                }
            }
        }
        if !admitted {
            report.push_error(format!(
                "{where_} depth {} ({}): unadmitted event thread={} {:?} {}[{}]",
                ctx.depth,
                ctx.launch,
                ev.thread,
                ev.kind,
                ev.array.name(),
                ev.index
            ));
        }
    }

    // Aggregate shape checks per launch kind.
    let frontier_edges: usize = ctx.s[ctx.seg.clone()]
        .iter()
        .map(|&v| ctx.g.degree(v) as usize)
        .sum();
    let discovered = ctx.next_seg.len();
    match ctx.launch {
        LaunchId::ForwardPush => {
            let cas = count(level, KernelArray::Dist, AccessKind::AtomicCas);
            if cas != frontier_edges {
                report.push_error(format!(
                    "{where_} depth {}: {} CAS events for {} frontier edges",
                    ctx.depth, cas, frontier_edges
                ));
            }
            let bumps = count(level, KernelArray::Ends, AccessKind::AtomicAdd);
            if bumps != discovered {
                report.push_error(format!(
                    "{where_} depth {}: {} queue-tail bumps for {} discoveries",
                    ctx.depth, bumps, discovered
                ));
            }
            // Reservations must cover the next segment exactly once.
            let mut written: Vec<u32> = level
                .events
                .iter()
                .filter(|e| e.array == KernelArray::QNext && e.kind == AccessKind::Write)
                .map(|e| e.index)
                .collect();
            written.sort_unstable();
            let expect: Vec<u32> = ctx.next_seg.clone().map(|i| i as u32).collect();
            if written != expect {
                report.push_error(format!(
                    "{where_} depth {}: Q_next writes {:?} do not cover segment {:?}",
                    ctx.depth, written, ctx.next_seg
                ));
            }
        }
        LaunchId::ForwardPull => {
            let words = ctx.g.num_vertices().div_ceil(32);
            let scans = count(level, KernelArray::VisitedBits, AccessKind::Read);
            if scans != words {
                report.push_error(format!(
                    "{where_} depth {}: {} visited-word scans for {} words",
                    ctx.depth, scans, words
                ));
            }
            // Frontier compaction: rebuild levels expand Q_curr into
            // the two-level bitmap — one queue read and one atomicOr
            // per bitmap level per frontier vertex. Steady-state pull
            // levels reuse the swapped F_next and run no compact
            // lanes at all.
            let expect_compact = if ctx.compact { ctx.seg.len() } else { 0 };
            for (what, array, kind) in [
                ("Q_curr compact read", KernelArray::QCurr, AccessKind::Read),
                (
                    "F_curr atomicOr",
                    KernelArray::FrontierBits,
                    AccessKind::AtomicOr,
                ),
                (
                    "F_sum atomicOr",
                    KernelArray::SummaryBits,
                    AccessKind::AtomicOr,
                ),
            ] {
                let got = count(level, array, kind);
                if got != expect_compact {
                    report.push_error(format!(
                        "{where_} depth {}: {} {what} events for {} frontier slots",
                        ctx.depth, got, expect_compact
                    ));
                }
            }
            for (what, array, kind) in [
                (
                    "F_next atomicOr",
                    KernelArray::NextBits,
                    AccessKind::AtomicOr,
                ),
                ("d store", KernelArray::Dist, AccessKind::Write),
                ("sigma store", KernelArray::Sigma, AccessKind::Write),
            ] {
                let got = count(level, array, kind);
                if got != discovered {
                    report.push_error(format!(
                        "{where_} depth {}: {} {what} events for {} discoveries",
                        ctx.depth, got, discovered
                    ));
                }
            }
        }
        LaunchId::Backward => {
            // The paper's theorem, checked dynamically once more: the
            // successor sweep emits no atomics at all.
            if level.atomic_events() != 0 {
                report.push_error(format!(
                    "{where_} depth {}: backward level has {} atomic events",
                    ctx.depth,
                    level.atomic_events()
                ));
            }
            // Exactly one δ store per lane, covering the segment.
            let mut stored: Vec<u32> = level
                .events
                .iter()
                .filter(|e| e.array == KernelArray::Delta && e.kind == AccessKind::Write)
                .map(|e| e.index)
                .collect();
            stored.sort_unstable();
            let mut expect: Vec<u32> = ctx.s[ctx.seg.clone()].to_vec();
            expect.sort_unstable();
            if stored != expect {
                report.push_error(format!(
                    "{where_} depth {}: delta stores do not cover the segment exactly once",
                    ctx.depth
                ));
            }
        }
    }
    report.levels += 1;
}

/// Record one root's trace in `mode` and check every level.
fn check_root(
    g: &Csr,
    root: u32,
    mode: TraversalMode,
    hits: &mut HitTable,
    report: &mut ConformanceReport,
    where_: &str,
) {
    let device = DeviceConfig::gtx_titan();
    let mut ws = SearchWorkspace::new(g.num_vertices());
    let mut bc = vec![0.0; g.num_vertices()];
    let mut out = RootOutcome::default();
    let mut sink = RecordingSink::default();
    let ctx = RootContext {
        g,
        root,
        device: &device,
    };
    match mode {
        TraversalMode::Push => {
            process_root_traced(&ctx, &mut ws, &mut FreeModel, &mut bc, &mut out, &mut sink);
        }
        _ => {
            let mut model = DirectionOptimizingModel::new(mode);
            process_root_traced(&ctx, &mut ws, &mut model, &mut bc, &mut out, &mut sink);
        }
    }
    report.runs += 1;

    let (s, ends, dist) = (ws.stack(), ws.ends(), ws.dist());
    let segment = |d: usize| -> std::ops::Range<usize> {
        let lo = ends.get(d).map_or(s.len(), |&e| e as usize);
        let hi = ends.get(d + 1).map_or(s.len(), |&e| e as usize);
        lo..hi
    };
    let mut forward_idx = 0usize;
    for level in &sink.trace.levels {
        let d = level.depth as usize;
        let mut compact = false;
        let launch = match level.phase {
            TracePhase::Backward => LaunchId::Backward,
            TracePhase::Forward => {
                let t = out.forward_traversals[forward_idx];
                // The engine rebuilds the compressed frontier exactly
                // when the previous forward level was not pull (or
                // there is no previous level).
                compact = t == Traversal::Pull
                    && (forward_idx == 0
                        || out.forward_traversals[forward_idx - 1] != Traversal::Pull);
                forward_idx += 1;
                match t {
                    Traversal::Push => LaunchId::ForwardPush,
                    Traversal::Pull => LaunchId::ForwardPull,
                }
            }
        };
        let ctx = LevelCtx {
            g,
            dist,
            s,
            launch,
            depth: level.depth,
            seg: segment(d),
            next_seg: segment(d + 1),
            compact,
        };
        check_level(&ctx, level, hits, report, where_);
    }
}

/// Record and replay every configured dataset. Each root is traced
/// twice — push-mode and (on symmetric adjacency) forced-pull — so
/// all three launch shapes are exercised.
pub fn check_conformance(opts: &ConformanceOptions) -> ConformanceReport {
    let mut report = ConformanceReport::default();
    let mut hits = HitTable::new();
    for &dataset in &opts.datasets {
        let g = dataset.small_instance(opts.seed);
        let n = g.num_vertices();
        report.datasets += 1;
        for i in 0..opts.roots.max(1) {
            let root = (i * n / opts.roots.max(1)) as u32;
            let where_ = format!("{} root {root} push", dataset.name());
            check_root(
                &g,
                root,
                TraversalMode::Push,
                &mut hits,
                &mut report,
                &where_,
            );
            if g.is_symmetric() {
                let where_ = format!("{} root {root} pull", dataset.name());
                check_root(
                    &g,
                    root,
                    TraversalMode::Pull,
                    &mut hits,
                    &mut report,
                    &where_,
                );
            }
        }
    }
    report.unhit_specs = hits.unhit();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::gen;

    fn one_dataset(d: DatasetId) -> ConformanceOptions {
        ConformanceOptions {
            datasets: vec![d],
            roots: 1,
            seed: 7,
        }
    }

    #[test]
    fn a_dataset_analogue_conforms() {
        let report = check_conformance(&one_dataset(DatasetId::DelaunayN20));
        assert_eq!(report.error_count, 0, "{:?}", report.errors);
        // One dataset can't hit every spec family by itself only if it
        // never pulls; forced-pull runs make coverage total.
        assert!(report.unhit_specs.is_empty(), "{:?}", report.unhit_specs);
        assert!(report.is_clean());
        assert!(report.events > 0 && report.levels > 0);
    }

    #[test]
    fn hand_graphs_conform_too() {
        // Not dataset analogues, but the checker itself is generic.
        let mut report = ConformanceReport::default();
        let mut hits = HitTable::new();
        for g in [gen::path(12), gen::star(9), gen::erdos_renyi(60, 150, 3)] {
            check_root(&g, 0, TraversalMode::Push, &mut hits, &mut report, "hand");
            check_root(&g, 0, TraversalMode::Pull, &mut hits, &mut report, "hand");
        }
        assert_eq!(report.error_count, 0, "{:?}", report.errors);
    }

    #[test]
    fn a_foreign_event_is_rejected() {
        // Inject an access no spec admits into a recorded level and
        // re-check: the checker must flag exactly that event.
        let g = gen::path(8);
        let mut ws = SearchWorkspace::new(8);
        let mut bc = vec![0.0; 8];
        let mut out = RootOutcome::default();
        let mut sink = RecordingSink::default();
        let device = DeviceConfig::gtx_titan();
        process_root_traced(
            &RootContext {
                g: &g,
                root: 0,
                device: &device,
            },
            &mut ws,
            &mut FreeModel,
            &mut bc,
            &mut out,
            &mut sink,
        );
        // A δ write into another lane's vertex during a backward level
        // — the predecessor-accumulation shape.
        let level = sink
            .trace
            .levels
            .iter_mut()
            .rev()
            .find(|l| l.phase == TracePhase::Backward)
            .expect("a path has backward levels");
        let foreign = TraceEvent {
            thread: 0,
            array: KernelArray::Delta,
            index: 0, // the root: never in a backward frontier
            kind: AccessKind::Write,
        };
        level.events.push(foreign);
        let d = level.depth as usize;
        let level = level.clone();
        let (s, ends) = (ws.stack().to_vec(), ws.ends().to_vec());
        let seg = |d: usize| {
            let lo = ends.get(d).map_or(s.len(), |&e| e as usize);
            let hi = ends.get(d + 1).map_or(s.len(), |&e| e as usize);
            lo..hi
        };
        let ctx = LevelCtx {
            g: &g,
            dist: ws.dist(),
            s: &s,
            launch: LaunchId::Backward,
            depth: level.depth,
            seg: seg(d),
            next_seg: seg(d + 1),
            compact: false,
        };
        let mut report = ConformanceReport::default();
        let mut hits = HitTable::new();
        check_level(&ctx, &level, &mut hits, &mut report, "seeded");
        // The foreign event is unadmitted AND breaks the δ-coverage
        // count.
        assert!(report.error_count >= 2, "{:?}", report.errors);
    }
}
