//! `bc-analyze` — the static-analysis gate.
//!
//! Default run: all three passes over the real kernels and scheduler —
//! the kernel-IR race prover (with atomic-set audit), the exhaustive
//! scheduler-interleaving explorer at the full 4×6 bound, and the
//! spec-vs-trace conformance replay over every dataset analogue.
//! Exit status is non-zero if any pass finds a violation.
//!
//! `--mutant NAME` seeds one bug and *inverts* the expectation: exit 0
//! iff the analyzer flags it. `--mutation-battery` does that for every
//! seeded bug at once.

#![forbid(unsafe_code)]

use bc_analyze::mutants::Mutant;
use bc_analyze::{analyze, analyze_with_mutant, mutation_battery, AnalyzeOptions};
use std::process::ExitCode;

struct Options {
    analyze: AnalyzeOptions,
    mutant: Option<Mutant>,
    battery: bool,
}

const USAGE: &str =
    "bc-analyze: prove the simulated BC kernels race-free and the shard scheduler lossless

USAGE:
    bc-analyze [--quick] [--roots N] [--seed N] [--max-states N]
               [--datasets N] [--mutant NAME | --mutation-battery]

OPTIONS:
    --quick             Quick explorer bound (3 workers x 4 shards) instead of 4x6
    --roots N           Conformance roots per dataset [default: 2]
    --seed N            Dataset generator seed [default: 7]
    --max-states N      Override the explorer's state budget
    --datasets N        Replay only the first N dataset analogues [default: all 10]
    --mutant NAME       Seed one bug; exit 0 iff the analyzer flags it.
                        Names: predecessor-accumulation, dedup-without-cas,
                        level-off-by-one, non-atomic-steal, completion-order-merge
    --mutation-battery  Seed every bug in turn; exit 0 iff all are flagged
    -h, --help          Print this help
";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        analyze: AnalyzeOptions::default(),
        mutant: None,
        battery: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--quick" => opts.analyze.quick = true,
            "--roots" => {
                opts.analyze.roots = value("--roots")?
                    .parse()
                    .map_err(|e| format!("--roots: {e}"))?;
            }
            "--seed" => {
                opts.analyze.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--max-states" => {
                opts.analyze.max_states = Some(
                    value("--max-states")?
                        .parse()
                        .map_err(|e| format!("--max-states: {e}"))?,
                );
            }
            "--datasets" => {
                opts.analyze.datasets = Some(
                    value("--datasets")?
                        .parse()
                        .map_err(|e| format!("--datasets: {e}"))?,
                );
            }
            "--mutant" => {
                let name = value("--mutant")?;
                opts.mutant =
                    Some(Mutant::parse(&name).ok_or_else(|| format!("unknown mutant: {name}"))?);
            }
            "--mutation-battery" => opts.battery = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.analyze.roots == 0 {
        return Err("--roots must be at least 1".into());
    }
    if opts.mutant.is_some() && opts.battery {
        return Err("--mutant and --mutation-battery are mutually exclusive".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bc-analyze: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.battery {
        let (all, lines) = mutation_battery(&opts.analyze);
        print!("{lines}");
        return if all {
            println!(
                "mutation battery: all {} seeded bugs flagged",
                Mutant::ALL.len()
            );
            ExitCode::SUCCESS
        } else {
            println!("mutation battery: FAILED (a seeded bug survived the analyzer)");
            ExitCode::FAILURE
        };
    }

    if let Some(m) = opts.mutant {
        let (flagged, evidence) = analyze_with_mutant(m, &opts.analyze);
        return if flagged {
            println!("mutant {m}: flagged");
            print!("{evidence}");
            ExitCode::SUCCESS
        } else {
            println!("mutant {m}: MISSED — the analyzer accepted a seeded bug");
            ExitCode::FAILURE
        };
    }

    let report = analyze(&opts.analyze);
    print!("{}", report.render());
    if report.is_clean() {
        println!("bc-analyze: all passes clean");
        ExitCode::SUCCESS
    } else {
        println!("bc-analyze: FAILED");
        ExitCode::FAILURE
    }
}
