//! `bc-analyze` — the static-analysis gate over the simulated BC
//! kernels and their scheduler.
//!
//! Three passes, one verdict:
//!
//! 1. **Prover** ([`prover`]): abstract-interprets the symbolic
//!    kernel IR ([`bc_core::kernel_spec`]) and proves per-launch
//!    write-disjointness for *all* inputs — the paper's "the
//!    successor-based accumulation needs no atomics" as a theorem —
//!    and derives each kernel's minimal atomic set, which must equal
//!    both the declared and the priced set.
//! 2. **Explorer** ([`model`]): a bounded exhaustive interleaving
//!    exploration of the shard scheduler (steal/claim/steal-back-half
//!    and the guided cursor), asserting no shard is lost, duplicated,
//!    or merged out of root-index order under *any* schedule of
//!    worker steps.
//! 3. **Conformance** ([`conformance`]): replays recorded engine
//!    traces from the dataset analogues against the IR, so the specs
//!    the prover trusts can never drift from the engine that emits
//!    the accesses.
//!
//! The [`mutants`] battery seeds classic BC bugs (predecessor-style
//! accumulation, CAS-less dedup, an off-by-one level segment, a racy
//! steal, completion-order merging) and demands the gate reject every
//! one — the analyzer's own regression suite.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod conformance;
pub mod model;
pub mod mutants;
pub mod prover;

use bc_core::Schedule;
use conformance::{check_conformance, ConformanceOptions, ConformanceReport};
use model::{explore, ModelConfig, ModelError, SchedulerMutant};
use mutants::Mutant;
use prover::{prove, ProverReport, SpecSet};

/// Knobs for one full analysis run.
#[derive(Clone, Debug)]
pub struct AnalyzeOptions {
    /// Roots per dataset in the conformance pass.
    pub roots: usize,
    /// Dataset generator seed.
    pub seed: u64,
    /// Use the quick explorer bound (3×4) instead of the full 4×6.
    pub quick: bool,
    /// Override the explorer's state budget.
    pub max_states: Option<usize>,
    /// Restrict conformance to this many datasets (None = all ten).
    pub datasets: Option<usize>,
}

impl Default for AnalyzeOptions {
    fn default() -> AnalyzeOptions {
        AnalyzeOptions {
            roots: 2,
            seed: 7,
            quick: false,
            max_states: None,
            datasets: None,
        }
    }
}

impl AnalyzeOptions {
    /// The CLI smoke configuration: quick bound, one root, a couple
    /// of datasets — seconds, not minutes.
    pub fn smoke() -> AnalyzeOptions {
        AnalyzeOptions {
            roots: 1,
            quick: true,
            datasets: Some(2),
            ..AnalyzeOptions::default()
        }
    }

    fn model_config(&self) -> ModelConfig {
        let mut cfg = if self.quick {
            ModelConfig::quick()
        } else {
            ModelConfig::full()
        };
        if let Some(m) = self.max_states {
            cfg.max_states = m;
        }
        cfg
    }

    fn conformance_options(&self) -> ConformanceOptions {
        let mut opts = ConformanceOptions::full(self.roots, self.seed);
        if let Some(k) = self.datasets {
            opts.datasets.truncate(k);
        }
        opts
    }
}

/// Outcome of one scheduler exploration.
#[derive(Clone, Debug)]
pub struct ExplorationOutcome {
    /// The schedule explored.
    pub schedule: Schedule,
    /// Whether the cost vector was skewed (vs unit).
    pub skewed: bool,
    /// `Ok` = exhausted clean; `Err` = violation or budget.
    pub result: Result<model::Exploration, ModelError>,
}

/// The combined verdict of all three passes.
#[derive(Debug)]
pub struct AnalysisReport {
    /// The prover's launch proofs and atomic audits.
    pub prover: ProverReport,
    /// One exploration per schedule × cost shape.
    pub explorations: Vec<ExplorationOutcome>,
    /// The trace-replay verdict.
    pub conformance: ConformanceReport,
}

impl AnalysisReport {
    /// True when every pass is clean.
    pub fn is_clean(&self) -> bool {
        self.prover.is_clean()
            && self.explorations.iter().all(|e| e.result.is_ok())
            && self.conformance.is_clean()
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== kernel IR prover ==\n");
        for l in &self.prover.launches {
            let axioms: Vec<String> = l.axioms_used.iter().map(|a| a.to_string()).collect();
            if l.is_race_free() {
                out.push_str(&format!(
                    "  {:<13} race-free for all inputs (axioms: {})\n",
                    l.launch.to_string(),
                    if axioms.is_empty() {
                        "none".to_string()
                    } else {
                        axioms.join(", ")
                    }
                ));
            } else {
                out.push_str(&format!("  {:<13} RACY:\n", l.launch.to_string()));
                for r in &l.races {
                    out.push_str(&format!("    {r}\n"));
                }
            }
        }
        for a in &self.prover.audits {
            let show = |v: &Vec<_>| format!("{v:?}");
            if a.agrees() {
                out.push_str(&format!(
                    "  {:<15} minimal atomics = declared = priced: {}\n",
                    a.kernel.to_string(),
                    show(&a.required)
                ));
            } else {
                out.push_str(&format!(
                    "  {:<15} ATOMIC DRIFT: declared {} required {} priced {}\n",
                    a.kernel.to_string(),
                    show(&a.declared),
                    show(&a.required),
                    show(&a.priced)
                ));
            }
        }
        out.push_str("== scheduler interleaving explorer ==\n");
        for e in &self.explorations {
            let costs = if e.skewed { "skewed" } else { "unit" };
            match &e.result {
                Ok(x) => out.push_str(&format!(
                    "  {:<13} {costs:<6} exhausted: {} states, {} terminals, 0 violations\n",
                    e.schedule.to_string(),
                    x.states,
                    x.terminals
                )),
                Err(err) => out.push_str(&format!(
                    "  {:<13} {costs:<6} FAILED: {err}\n",
                    e.schedule.to_string()
                )),
            }
        }
        out.push_str("== spec-vs-trace conformance ==\n");
        out.push_str(&format!(
            "  {} datasets, {} runs, {} levels, {} events, {} violations\n",
            self.conformance.datasets,
            self.conformance.runs,
            self.conformance.levels,
            self.conformance.events,
            self.conformance.error_count
        ));
        for e in &self.conformance.errors {
            out.push_str(&format!("    {e}\n"));
        }
        if self.conformance.error_count > self.conformance.errors.len() as u64 {
            out.push_str(&format!(
                "    … and {} more\n",
                self.conformance.error_count - self.conformance.errors.len() as u64
            ));
        }
        for u in &self.conformance.unhit_specs {
            out.push_str(&format!("    UNHIT SPEC: {u}\n"));
        }
        out
    }
}

fn run_explorations(cfg: &ModelConfig, mutant: Option<SchedulerMutant>) -> Vec<ExplorationOutcome> {
    let mut out = Vec::new();
    for schedule in Schedule::ALL {
        for cfg in [cfg.clone(), cfg.skewed()] {
            out.push(ExplorationOutcome {
                schedule,
                skewed: cfg.costs.is_some(),
                result: explore(schedule, &cfg, mutant),
            });
        }
    }
    out
}

/// Run all three passes over the *real* kernel specs and scheduler.
pub fn analyze(opts: &AnalyzeOptions) -> AnalysisReport {
    AnalysisReport {
        prover: prove(&SpecSet::real()),
        explorations: run_explorations(&opts.model_config(), None),
        conformance: check_conformance(&opts.conformance_options()),
    }
}

/// Run the pass responsible for `mutant` with the bug seeded.
/// Returns `true` when the analyzer **flagged** the bug (the desired
/// outcome) and the rendered evidence.
pub fn analyze_with_mutant(mutant: Mutant, opts: &AnalyzeOptions) -> (bool, String) {
    match mutant {
        Mutant::Spec(m) => {
            let report = prove(&m.apply());
            let mut evidence = String::new();
            for l in report.launches.iter().filter(|l| !l.is_race_free()) {
                for r in &l.races {
                    evidence.push_str(&format!("  {}: {r}\n", l.launch));
                }
            }
            for a in report.audits.iter().filter(|a| !a.agrees()) {
                evidence.push_str(&format!(
                    "  {}: declared {:?} != required {:?}\n",
                    a.kernel, a.declared, a.required
                ));
            }
            (!report.is_clean(), evidence)
        }
        Mutant::Scheduler(m) => {
            let failures: Vec<String> = run_explorations(&opts.model_config(), Some(m))
                .into_iter()
                .filter_map(|e| match e.result {
                    // Budget exhaustion is not a caught bug.
                    Err(ModelError::Violation(v)) => Some(format!(
                        "  {} ({}): {} via [{}]\n",
                        e.schedule,
                        if e.skewed { "skewed" } else { "unit" },
                        v.kind,
                        v.steps.join(", ")
                    )),
                    _ => None,
                })
                .collect();
            (!failures.is_empty(), failures.concat())
        }
    }
}

/// Run the whole mutation battery: every seeded bug must be flagged.
/// Returns `(all_flagged, per-mutant lines)`.
pub fn mutation_battery(opts: &AnalyzeOptions) -> (bool, String) {
    let mut all = true;
    let mut out = String::new();
    for m in Mutant::ALL {
        let (flagged, evidence) = analyze_with_mutant(m, opts);
        all &= flagged;
        out.push_str(&format!(
            "{:<24} {}\n",
            m.to_string(),
            if flagged { "flagged" } else { "MISSED" }
        ));
        if flagged {
            let first = evidence.lines().next().unwrap_or("");
            out.push_str(&format!("  {}\n", first.trim_start()));
        }
    }
    (all, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_analysis_is_clean() {
        let report = analyze(&AnalyzeOptions::smoke());
        assert!(report.is_clean(), "{}", report.render());
        let rendered = report.render();
        assert!(rendered.contains("race-free for all inputs"));
        assert!(rendered.contains("0 violations"));
    }

    #[test]
    fn battery_flags_every_mutant_at_smoke_bounds() {
        let (all, lines) = mutation_battery(&AnalyzeOptions::smoke());
        assert!(all, "{lines}");
        for m in Mutant::ALL {
            assert!(lines.contains(m.name()), "{lines}");
        }
    }
}
