//! Serving observability records.
//!
//! The query server (`bc-serve`) emits one [`ServeRow`] per executed
//! batch and one per applied edge edit: batch sizes, cache
//! hit/miss/evict counts, invalidated-root counts on edits, queue
//! depth, and per-request latency. Like every other record in this
//! crate the rows are pure observations — two runs of the same
//! workload produce identical rows, which the verification layer's
//! stage-5 replay check enforces.

use serde::Serialize;

/// Completion record of one request within a batch row.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct RequestLatency {
    /// Caller-assigned request id.
    pub id: u64,
    /// Simulated arrival time (seconds).
    pub arrival: f64,
    /// Simulated completion time (seconds).
    pub completed: f64,
    /// `completed - arrival`, stored so a consumer never re-derives
    /// it with different rounding.
    pub latency: f64,
}

/// One serving event: an executed batch (`event == "batch"`) or an
/// applied edge edit (`event == "edit"`). Rendered to JSONL as a
/// `{"kind":"serve", ...}` line.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct ServeRow {
    /// `"batch"` or `"edit"`.
    pub event: String,
    /// Row sequence number within the server's lifetime.
    pub seq: u64,
    /// Resident graph the event targeted.
    pub graph: String,
    /// Graph epoch the event executed against (for edits: the epoch
    /// *after* the bump).
    pub epoch: u64,
    /// Simulated time the batch started executing / the edit applied.
    pub at: f64,
    /// Requests answered by this batch (0 for edits).
    pub batch_size: u64,
    /// Pending requests across all graphs when the batch flushed.
    pub queue_depth: u64,
    /// Unique roots the batch's queries coalesced to (0 for edits).
    pub requested_roots: u64,
    /// Roots answered from cache.
    pub cache_hits: u64,
    /// Roots that had to be computed.
    pub cache_misses: u64,
    /// Entries evicted while inserting this batch's results.
    pub cache_evictions: u64,
    /// Edits: cached roots dropped by the invalidation test (or all
    /// of them on a full-invalidation fallback).
    pub invalidated_roots: u64,
    /// Edits: cached roots whose BFS DAG the edit provably does not
    /// touch, re-keyed forward to the new epoch.
    pub carried_roots: u64,
    /// Whether an edit fell back to full invalidation (touched set
    /// exceeded the configured threshold).
    pub full_invalidation: bool,
    /// Simulated device seconds this batch cost (0 for edits and for
    /// fully cache-served batches).
    pub priced_seconds: f64,
    /// Per-request completion records, in request-id order.
    pub latencies: Vec<RequestLatency>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_row_serializes() {
        let row = ServeRow {
            event: "batch".to_owned(),
            seq: 3,
            graph: "default".to_owned(),
            batch_size: 2,
            latencies: vec![RequestLatency {
                id: 7,
                arrival: 1.0,
                completed: 1.5,
                latency: 0.5,
            }],
            ..Default::default()
        };
        let json = serde_json::to_string(&row).unwrap();
        assert!(json.contains("\"event\":\"batch\""));
        assert!(json.contains("\"id\":7"));
    }
}
