//! # bc-metrics — structured metrics & observability
//!
//! The quantitative counterpart to the trace layer: where
//! `bc_gpusim::trace` records every simulated memory access for race
//! detection, this crate records the *aggregates* the paper argues
//! with — per-level frontier sizes (`Q_curr`/`Q_next`), edges
//! inspected, dedup-CAS outcomes, priced atomics, and the direction
//! automaton's push/pull decisions — plus whole-run hardware
//! summaries (warp efficiency, memory transactions, kernel launches)
//! and per-GPU cluster phase timelines.
//!
//! The hook family mirrors `bc_gpusim::trace::TraceSink`: a
//! [`MetricsSink`] trait with an associated `const ENABLED`, a
//! [`NullMetrics`] no-op whose `ENABLED = false` lets every emission
//! site compile away, and a [`MetricsRecorder`] that keeps everything.
//! Because the sinks observe values the engine has already computed,
//! enabling them cannot perturb scores or priced timings: recorders
//! only copy, never reorder.
//!
//! Everything is serializable through the vendored `serde` stub and
//! renders to JSONL via [`jsonl`] — one self-describing `{"kind":
//! ..., "data": ...}` object per line.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cluster;
pub mod jsonl;
pub mod record;
pub mod serve;
pub mod sink;
pub mod summary;
pub mod worker;

pub use cluster::{ClusterMetrics, ClusterMetricsSummary, GpuTimeline};
pub use jsonl::{cluster_to_jsonl, run_to_jsonl, serve_to_jsonl};
pub use record::{LevelMetrics, MetricPhase, MetricTraversal, RootMetrics, SwitchReason};
pub use serve::{RequestLatency, ServeRow};
pub use sink::{MetricsRecorder, MetricsSink, NullMetrics};
pub use summary::{HardwareSummary, MetricsSummary, RunMetrics};
pub use worker::WorkerMetrics;
