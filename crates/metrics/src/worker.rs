//! Per-worker scheduling metrics: what each host thread of a
//! scheduled multi-root run claimed, stole, and waited for.
//!
//! Unlike the per-root records, these are *wall-clock* observations —
//! busy and idle seconds vary run to run — so they live in the
//! exported [`crate::RunMetrics`] stream (`kind: worker` JSONL lines)
//! but deliberately **not** in [`crate::MetricsSummary`], which is
//! embedded in `RunReport` and compared bitwise by the determinism
//! batteries. The structural fields (`shards`, `roots_processed`,
//! `phase_roots`, `shard_size`) are enough for `bc-verify` to replay
//! the assignment and check that the workers' claims partition the
//! shard space exactly once.

use serde::Serialize;

/// One worker thread's scheduling record for one solver phase.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct WorkerMetrics {
    /// Worker index within the phase (`0..workers`).
    pub worker: u64,
    /// Solver phase this record belongs to (methods that run several
    /// root batches, like Sampling, emit one group per batch).
    pub phase: u64,
    /// The schedule that drove the assignment, in kebab-case
    /// (`static`, `guided`, or `work-stealing`).
    pub schedule: String,
    /// Roots in this phase (across all workers).
    pub phase_roots: u64,
    /// Roots per shard in this phase (the last shard may be short).
    pub shard_size: u64,
    /// Shard indices this worker processed, in claim order.
    pub shards: Vec<u32>,
    /// Roots this worker processed (the sizes of its shards summed).
    pub roots_processed: u64,
    /// Successful steals (work-stealing only; zero otherwise).
    pub steals: u64,
    /// Steal attempts that lost the race to a drained victim.
    pub failed_steal_attempts: u64,
    /// Deepest claim source this worker observed at claim time.
    pub max_queue_depth: u64,
    /// Wall-clock seconds spent processing shards.
    pub busy_seconds: f64,
    /// Wall-clock seconds spent claiming (queue contention, steal
    /// scans, and the final failed claim).
    pub idle_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_metrics_serialize_to_json() {
        let w = WorkerMetrics {
            worker: 1,
            schedule: "work-stealing".to_owned(),
            phase_roots: 64,
            shard_size: 1,
            shards: vec![3, 7],
            roots_processed: 2,
            steals: 1,
            ..Default::default()
        };
        let json = serde_json::to_string(&w).expect("total renderer");
        assert!(json.contains("\"schedule\":\"work-stealing\""));
        assert!(json.contains("\"shards\":[3,7]"));
        assert!(json.contains("\"steals\":1"));
    }
}
