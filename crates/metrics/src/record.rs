//! Per-level and per-root metric records.

use serde::Serialize;

/// Which half of Brandes' algorithm a level belongs to. Mirrors the
/// engine's phase without depending on `bc-core` (this crate is a
/// leaf; the engine converts).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum MetricPhase {
    /// BFS / shortest-path counting sweep.
    Forward,
    /// Dependency-accumulation sweep.
    Backward,
}

/// The traversal direction a forward level executed with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum MetricTraversal {
    /// Queue-based top-down kernel.
    Push,
    /// Bitmap-based bottom-up kernel.
    Pull,
}

/// Why the direction automaton chose a forward level's traversal,
/// recorded alongside the decision so switch levels are auditable
/// from the metrics stream alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum SwitchReason {
    /// Depth 0: every search starts in push from the root.
    Start,
    /// Stayed top-down; the frontier never crossed the α threshold
    /// (or the graph/mode only supports push).
    StayPush,
    /// Crossed α: the frontier's edges outweigh the unexplored ones,
    /// so the level flipped to the bottom-up kernel.
    SwitchToPull,
    /// Stayed bottom-up; the frontier is still above the β threshold.
    StayPull,
    /// Shrank below β: the level flipped back to top-down.
    SwitchToPush,
}

/// One simulated kernel launch's counters: everything Figures 3–5 of
/// the paper plot per level, captured after the level was priced.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct LevelMetrics {
    /// Forward or backward sweep.
    pub phase: MetricPhase,
    /// BFS depth of the processed vertices.
    pub depth: u32,
    /// Direction the level ran in (backward levels report push).
    pub traversal: MetricTraversal,
    /// `|Q_curr|` — vertices dequeued this level.
    pub q_curr: u64,
    /// `|Q_next|` — vertices discovered this level (0 backward).
    pub q_next: u64,
    /// Edges the kernel actually inspected: the frontier's out-edges
    /// in push, the unvisited vertices' probes in pull.
    pub edges_inspected: u64,
    /// σ (forward) or δ (backward) accumulations performed.
    pub updates: u64,
    /// Depth-dedup compare-and-swap attempts (push forward levels:
    /// one per inspected edge; 0 elsewhere).
    pub cas_attempts: u64,
    /// CAS attempts that won and discovered a vertex.
    pub cas_wins: u64,
    /// Atomic operations the cost model priced for this level.
    pub priced_atomics: u64,
    /// Occupied 32-bit leaf words of the compressed frontier bitmap
    /// this level probed (pull levels; 0 elsewhere).
    pub frontier_words: u64,
    /// Occupied summary words of the compressed frontier — one bit
    /// per 32 leaf words, i.e. per 1024 vertices (pull levels; 0
    /// elsewhere).
    pub summary_words: u64,
    /// Simulated seconds the device spent on this launch.
    pub seconds: f64,
    /// Direction decision provenance (forward levels only).
    pub switch: Option<SwitchReason>,
}

/// All levels of one root's search, in execution order: forward
/// levels by increasing depth, then backward levels descending.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RootMetrics {
    /// The source vertex.
    pub root: u32,
    /// Per-kernel-launch counters.
    pub levels: Vec<LevelMetrics>,
}

impl RootMetrics {
    /// Number of forward levels (== 1 + max BFS depth reached).
    pub fn forward_levels(&self) -> usize {
        self.levels
            .iter()
            .filter(|l| l.phase == MetricPhase::Forward)
            .count()
    }

    /// Maximum BFS depth this root's search reached.
    pub fn max_depth(&self) -> u32 {
        self.levels
            .iter()
            .filter(|l| l.phase == MetricPhase::Forward)
            .map(|l| l.depth)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(phase: MetricPhase, depth: u32) -> LevelMetrics {
        LevelMetrics {
            phase,
            depth,
            traversal: MetricTraversal::Push,
            q_curr: 1,
            q_next: 0,
            edges_inspected: 0,
            updates: 0,
            cas_attempts: 0,
            cas_wins: 0,
            priced_atomics: 0,
            frontier_words: 0,
            summary_words: 0,
            seconds: 0.0,
            switch: None,
        }
    }

    #[test]
    fn root_metrics_shape_helpers() {
        let r = RootMetrics {
            root: 7,
            levels: vec![
                level(MetricPhase::Forward, 0),
                level(MetricPhase::Forward, 1),
                level(MetricPhase::Forward, 2),
                level(MetricPhase::Backward, 1),
            ],
        };
        assert_eq!(r.forward_levels(), 3);
        assert_eq!(r.max_depth(), 2);
    }

    #[test]
    fn level_metrics_serialize_to_json() {
        let mut l = level(MetricPhase::Forward, 0);
        l.switch = Some(SwitchReason::Start);
        let s = serde_json::to_string(&l).unwrap();
        assert!(s.contains("\"phase\":\"Forward\""), "{s}");
        assert!(s.contains("\"switch\":\"Start\""), "{s}");
    }
}
