//! The metrics hook family: a sink trait the engine emits into, a
//! no-op that compiles away, and a recorder that keeps everything.

use crate::record::{LevelMetrics, RootMetrics};

/// Receiver for the engine's per-level metric records.
///
/// Same contract as `bc_gpusim::trace::TraceSink`: the engine
/// guards every emission site with `if M::ENABLED`, so a sink whose
/// `ENABLED` is `false` (the [`NullMetrics`] default) makes record
/// construction — including the counter arithmetic feeding it —
/// compile out entirely. Sinks observe values the engine already
/// computed for pricing; they must not (and cannot, through this
/// interface) influence the search or the cost model.
pub trait MetricsSink {
    /// Whether this sink wants records. Emission sites are guarded
    /// with `if Self::ENABLED`, letting the null sink vanish at
    /// compile time.
    const ENABLED: bool = true;

    /// A new root's search is starting.
    fn begin_root(&mut self, root: u32);

    /// One kernel launch (forward or backward level) finished and was
    /// priced; `level` carries its counters.
    fn record_level(&mut self, level: LevelMetrics);
}

/// The disabled sink: `ENABLED = false`, so the engine skips every
/// emission site and the metered code path is bitwise identical to
/// the unmetered one.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullMetrics;

impl MetricsSink for NullMetrics {
    const ENABLED: bool = false;

    fn begin_root(&mut self, _root: u32) {}

    fn record_level(&mut self, _level: LevelMetrics) {}
}

/// A [`MetricsSink`] that keeps every record, grouped per root in
/// emission order.
#[derive(Clone, Debug, Default)]
pub struct MetricsRecorder {
    /// The recorded roots, in the order their searches ran.
    pub roots: Vec<RootMetrics>,
}

impl MetricsRecorder {
    /// Total levels recorded across all roots.
    pub fn num_levels(&self) -> u64 {
        self.roots.iter().map(|r| r.levels.len() as u64).sum()
    }
}

impl MetricsSink for MetricsRecorder {
    fn begin_root(&mut self, root: u32) {
        self.roots.push(RootMetrics {
            root,
            levels: Vec::new(),
        });
    }

    fn record_level(&mut self, level: LevelMetrics) {
        let root = self
            .roots
            .last_mut()
            .expect("the engine begins a root before recording levels");
        root.levels.push(level);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{MetricPhase, MetricTraversal};

    #[test]
    fn null_sink_is_disabled() {
        // Read through a generic bound (not the literal constants) so
        // the check exercises what the engine's `if M::ENABLED`
        // guards actually see.
        fn enabled<M: MetricsSink>() -> bool {
            M::ENABLED
        }
        assert!(!enabled::<NullMetrics>());
        assert!(enabled::<MetricsRecorder>());
    }

    #[test]
    fn recorder_groups_levels_under_roots() {
        let mut rec = MetricsRecorder::default();
        rec.begin_root(3);
        rec.record_level(LevelMetrics {
            phase: MetricPhase::Forward,
            depth: 0,
            traversal: MetricTraversal::Push,
            q_curr: 1,
            q_next: 2,
            edges_inspected: 2,
            updates: 2,
            cas_attempts: 2,
            cas_wins: 2,
            priced_atomics: 4,
            frontier_words: 0,
            summary_words: 0,
            seconds: 1e-6,
            switch: None,
        });
        rec.begin_root(9);
        assert_eq!(rec.roots.len(), 2);
        assert_eq!(rec.roots[0].root, 3);
        assert_eq!(rec.roots[0].levels.len(), 1);
        assert_eq!(rec.roots[1].levels.len(), 0);
        assert_eq!(rec.num_levels(), 1);
    }
}
