//! Whole-run aggregates: the hardware roll-up and the summary that
//! rides inside `RunReport`.

use crate::record::{MetricPhase, MetricTraversal, RootMetrics, SwitchReason};
use serde::Serialize;

/// Checked counter accumulation: panics on u64 overflow instead of
/// wrapping, so a summary over the planned 10–100x graphs can never
/// silently report a wrapped-around small number.
fn tally(acc: &mut u64, delta: u64, what: &str) {
    *acc = acc
        .checked_add(delta)
        .unwrap_or_else(|| panic!("metrics summary {what} overflows u64"));
}

/// Simulated-hardware statistics for a whole run, rolled up from the
/// device model's kernel counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct HardwareSummary {
    /// Simulated kernel launches (one per processed level).
    pub kernel_launches: u64,
    /// Warp execution steps across all launches.
    pub warp_steps: u64,
    /// Useful lanes per warp step, in `[0, 1]`: edge inspections
    /// divided by `warp_steps × 32`.
    pub warp_efficiency: f64,
    /// Modeled DRAM transactions (coalesced segments + uncoalesced
    /// and bitmap accesses).
    pub memory_transactions: u64,
    /// Priced atomic operations.
    pub atomics: u64,
    /// Total simulated seconds across the run's launches.
    pub seconds: f64,
}

/// The aggregated metrics embedded in a `RunReport` when a run is
/// metered; `None` there means metrics were disabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct MetricsSummary {
    /// Roots whose searches were recorded.
    pub roots: u64,
    /// Kernel launches recorded (forward + backward levels).
    pub levels: u64,
    /// Largest `|Q_curr|` any level saw.
    pub max_frontier: u64,
    /// Edges inspected across all levels.
    pub edges_inspected: u64,
    /// σ/δ accumulations across all levels.
    pub updates: u64,
    /// Depth-dedup CAS attempts (push forward levels).
    pub cas_attempts: u64,
    /// CAS attempts that discovered a vertex.
    pub cas_wins: u64,
    /// Atomics the cost model priced across all levels.
    pub priced_atomics: u64,
    /// Forward levels run top-down.
    pub push_levels: u64,
    /// Forward levels run bottom-up.
    pub pull_levels: u64,
    /// Push→pull direction switches.
    pub switches_to_pull: u64,
    /// Pull→push direction switches.
    pub switches_to_push: u64,
    /// Device-model roll-up.
    pub hardware: HardwareSummary,
}

impl MetricsSummary {
    /// Aggregate `roots` under the given hardware roll-up.
    pub fn from_roots(roots: &[RootMetrics], hardware: HardwareSummary) -> Self {
        let mut s = MetricsSummary {
            roots: roots.len() as u64,
            hardware,
            ..Default::default()
        };
        for root in roots {
            for l in &root.levels {
                tally(&mut s.levels, 1, "levels");
                s.max_frontier = s.max_frontier.max(l.q_curr);
                tally(&mut s.edges_inspected, l.edges_inspected, "edges_inspected");
                tally(&mut s.updates, l.updates, "updates");
                tally(&mut s.cas_attempts, l.cas_attempts, "cas_attempts");
                tally(&mut s.cas_wins, l.cas_wins, "cas_wins");
                tally(&mut s.priced_atomics, l.priced_atomics, "priced_atomics");
                if l.phase == MetricPhase::Forward {
                    match l.traversal {
                        MetricTraversal::Push => tally(&mut s.push_levels, 1, "push_levels"),
                        MetricTraversal::Pull => tally(&mut s.pull_levels, 1, "pull_levels"),
                    }
                }
                match l.switch {
                    Some(SwitchReason::SwitchToPull) => {
                        tally(&mut s.switches_to_pull, 1, "switches_to_pull")
                    }
                    Some(SwitchReason::SwitchToPush) => {
                        tally(&mut s.switches_to_push, 1, "switches_to_push")
                    }
                    _ => {}
                }
            }
        }
        s
    }
}

/// Everything a metered run produced: the full per-root stream (the
/// JSONL payload), per-worker scheduling records, and the aggregate.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Per-root level records, in global root order.
    pub per_root: Vec<RootMetrics>,
    /// Per-worker scheduling records, ordered by phase then worker
    /// index. Wall-clock observations — intentionally kept out of
    /// [`MetricsSummary`] so the summary stays reproducible.
    pub per_worker: Vec<crate::worker::WorkerMetrics>,
    /// The roll-up embedded in the run's report.
    pub summary: MetricsSummary,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LevelMetrics;

    fn level(traversal: MetricTraversal, switch: Option<SwitchReason>) -> LevelMetrics {
        LevelMetrics {
            phase: MetricPhase::Forward,
            depth: 0,
            traversal,
            q_curr: 5,
            q_next: 3,
            edges_inspected: 10,
            updates: 4,
            cas_attempts: 10,
            cas_wins: 3,
            priced_atomics: 13,
            frontier_words: 1,
            summary_words: 1,
            seconds: 1e-6,
            switch,
        }
    }

    #[test]
    fn summary_aggregates_levels_and_switches() {
        let roots = vec![RootMetrics {
            root: 0,
            levels: vec![
                level(MetricTraversal::Push, Some(SwitchReason::Start)),
                level(MetricTraversal::Pull, Some(SwitchReason::SwitchToPull)),
                level(MetricTraversal::Push, Some(SwitchReason::SwitchToPush)),
            ],
        }];
        let s = MetricsSummary::from_roots(&roots, HardwareSummary::default());
        assert_eq!(s.roots, 1);
        assert_eq!(s.levels, 3);
        assert_eq!(s.max_frontier, 5);
        assert_eq!(s.edges_inspected, 30);
        assert_eq!(s.push_levels, 2);
        assert_eq!(s.pull_levels, 1);
        assert_eq!(s.switches_to_pull, 1);
        assert_eq!(s.switches_to_push, 1);
        assert_eq!(s.cas_attempts, 30);
        assert_eq!(s.cas_wins, 9);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = MetricsSummary::from_roots(&[], HardwareSummary::default());
        assert_eq!(s, MetricsSummary::default());
    }
}
