//! JSONL rendering: one self-describing `{"kind": ..., "data": ...}`
//! object per line, so a stream mixes record types without a schema
//! side channel. The `summary` / `cluster_summary` line is always
//! last, mirroring how the aggregate is derived from the stream.

use crate::cluster::ClusterMetrics;
use crate::summary::RunMetrics;
use serde::Serialize;

fn line<T: Serialize>(kind: &str, data: &T, out: &mut String) {
    out.push_str("{\"kind\":\"");
    out.push_str(kind);
    out.push_str("\",\"data\":");
    // The vendored renderer is total over these derive-serialized
    // records, but a metrics line is not worth dying for either way:
    // degrade to an explicit error object that keeps the stream
    // machine-parseable.
    match serde_json::to_string(data) {
        Ok(json) => out.push_str(&json),
        Err(e) => {
            out.push_str("{\"error\":\"");
            out.push_str(&e.to_string().replace('\\', "\\\\").replace('"', "\\\""));
            out.push_str("\"}");
        }
    }
    out.push_str("}\n");
}

/// Render a metered solver run: one `root` line per source vertex in
/// global root order, one `worker` line per scheduler worker, then
/// the `summary` line.
pub fn run_to_jsonl(metrics: &RunMetrics) -> String {
    let mut out = String::new();
    for root in &metrics.per_root {
        line("root", root, &mut out);
    }
    for worker in &metrics.per_worker {
        line("worker", worker, &mut out);
    }
    line("summary", &metrics.summary, &mut out);
    out
}

/// Render a serving session: one `serve` line per batch or edit row,
/// in emission (sequence) order.
pub fn serve_to_jsonl(rows: &[crate::serve::ServeRow]) -> String {
    let mut out = String::new();
    for row in rows {
        line("serve", row, &mut out);
    }
    out
}

/// Render a metered cluster run: one `gpu` timeline line per
/// surviving device, then the `cluster_summary` line.
pub fn cluster_to_jsonl(metrics: &ClusterMetrics) -> String {
    let mut out = String::new();
    for gpu in &metrics.per_gpu {
        line("gpu", gpu, &mut out);
    }
    line("cluster_summary", &metrics.summary, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterMetricsSummary, GpuTimeline};
    use crate::record::RootMetrics;
    use crate::summary::MetricsSummary;

    #[test]
    fn run_jsonl_has_one_object_per_line() {
        let metrics = RunMetrics {
            per_root: vec![
                RootMetrics {
                    root: 0,
                    levels: Vec::new(),
                },
                RootMetrics {
                    root: 5,
                    levels: Vec::new(),
                },
            ],
            per_worker: vec![crate::worker::WorkerMetrics {
                worker: 0,
                schedule: "guided".to_owned(),
                shards: vec![0, 1],
                ..Default::default()
            }],
            summary: MetricsSummary::default(),
        };
        let text = run_to_jsonl(&metrics);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"kind\":\"root\""));
        assert!(lines[1].contains("\"root\":5"));
        assert!(lines[2].starts_with("{\"kind\":\"worker\""));
        assert!(lines[2].contains("\"schedule\":\"guided\""));
        assert!(lines[3].starts_with("{\"kind\":\"summary\""));
        for l in &lines {
            assert!(l.ends_with('}'), "each line is a complete object: {l}");
        }
    }

    #[test]
    fn cluster_jsonl_ends_with_the_summary() {
        let metrics = ClusterMetrics {
            per_gpu: vec![GpuTimeline::default()],
            summary: ClusterMetricsSummary::default(),
        };
        let text = cluster_to_jsonl(&metrics);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"kind\":\"gpu\""));
        assert!(lines[1].starts_with("{\"kind\":\"cluster_summary\""));
    }
}
