//! Per-GPU cluster timelines: where each device's wall-clock went,
//! phase by phase, under the fault runner.

use serde::Serialize;

/// One GPU's phase breakdown for a cluster run. Every field is a
/// duration the runner already computed while assembling the device's
/// makespan, so recording the timeline cannot change the timing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct GpuTimeline {
    /// Global GPU index (`node * gpus_per_node + local`).
    pub gpu: usize,
    /// Roots this GPU finished (including adopted orphans).
    pub roots_done: u64,
    /// Orphan roots adopted from dead GPUs.
    pub adoptions: u64,
    /// Transient-fault retries this GPU absorbed.
    pub retries: u64,
    /// Host→device setup plus final device→host copy.
    pub setup_seconds: f64,
    /// Useful compute: the priced per-root block time at this GPU's
    /// share of the roots (before fault overheads).
    pub compute_seconds: f64,
    /// Exponential-backoff time spent re-running transient faults.
    pub retry_seconds: f64,
    /// Work-migration cost of adopting orphans over the interconnect.
    pub migration_seconds: f64,
    /// Extra time a straggler slowdown added on top of compute.
    pub straggler_seconds: f64,
    /// Deadline budget burned by roots the watchdog cancelled on this
    /// GPU before migrating them to a healthy device.
    pub watchdog_seconds: f64,
    /// This run's reduction tree time (shared across GPUs).
    pub reduce_seconds: f64,
}

impl GpuTimeline {
    /// The timeline's total: what this GPU contributed to the
    /// cluster's critical path if it was the slowest device.
    pub fn total_seconds(&self) -> f64 {
        self.setup_seconds
            + self.compute_seconds
            + self.retry_seconds
            + self.migration_seconds
            + self.straggler_seconds
            + self.watchdog_seconds
            + self.reduce_seconds
    }
}

/// The aggregated cluster metrics embedded in a `ClusterReport` when
/// a run is metered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct ClusterMetricsSummary {
    /// GPUs that survived to the reduction.
    pub gpus: u64,
    /// GPUs the fault plan killed.
    pub dead_gpus: u64,
    /// Roots completed across the cluster.
    pub roots_done: u64,
    /// Orphan adoptions across the cluster.
    pub adoptions: u64,
    /// Transient retries across the cluster.
    pub retries: u64,
    /// Index of the GPU with the largest timeline total.
    pub slowest_gpu: usize,
    /// Sum of per-GPU compute phases.
    pub compute_seconds: f64,
    /// Sum of per-GPU retry-backoff phases.
    pub retry_seconds: f64,
    /// Sum of per-GPU migration phases.
    pub migration_seconds: f64,
    /// Sum of per-GPU straggler overheads.
    pub straggler_seconds: f64,
    /// Sum of per-GPU watchdog-cancellation overheads.
    pub watchdog_seconds: f64,
    /// The reduction tree's time (counted once).
    pub reduce_seconds: f64,
}

impl ClusterMetricsSummary {
    /// Aggregate per-GPU timelines.
    pub fn from_timelines(timelines: &[GpuTimeline], dead_gpus: u64) -> Self {
        let mut s = ClusterMetricsSummary {
            gpus: timelines.len() as u64,
            dead_gpus,
            ..Default::default()
        };
        let mut slowest = f64::NEG_INFINITY;
        for t in timelines {
            s.roots_done += t.roots_done;
            s.adoptions += t.adoptions;
            s.retries += t.retries;
            s.compute_seconds += t.compute_seconds;
            s.retry_seconds += t.retry_seconds;
            s.migration_seconds += t.migration_seconds;
            s.straggler_seconds += t.straggler_seconds;
            s.watchdog_seconds += t.watchdog_seconds;
            s.reduce_seconds = t.reduce_seconds;
            if t.total_seconds() > slowest {
                slowest = t.total_seconds();
                s.slowest_gpu = t.gpu;
            }
        }
        s
    }
}

/// Everything a metered cluster run produced.
#[derive(Clone, Debug, Default)]
pub struct ClusterMetrics {
    /// One timeline per GPU (dead ones included — they may have
    /// finished work before dying), in GPU-index order.
    pub per_gpu: Vec<GpuTimeline>,
    /// The roll-up embedded in the cluster report.
    pub summary: ClusterMetricsSummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_finds_the_slowest_gpu() {
        let timelines = vec![
            GpuTimeline {
                gpu: 0,
                roots_done: 8,
                compute_seconds: 1.0,
                reduce_seconds: 0.25,
                ..Default::default()
            },
            GpuTimeline {
                gpu: 1,
                roots_done: 8,
                retries: 3,
                compute_seconds: 1.0,
                retry_seconds: 0.5,
                reduce_seconds: 0.25,
                ..Default::default()
            },
        ];
        let s = ClusterMetricsSummary::from_timelines(&timelines, 1);
        assert_eq!(s.gpus, 2);
        assert_eq!(s.dead_gpus, 1);
        assert_eq!(s.roots_done, 16);
        assert_eq!(s.retries, 3);
        assert_eq!(s.slowest_gpu, 1);
        assert_eq!(s.reduce_seconds, 0.25);
        assert!((timelines[1].total_seconds() - 1.75).abs() < 1e-12);
    }
}
