//! Degree-ordered vertex relabeling.
//!
//! GPU adjacency streaming is a coalescing story: when high-degree
//! vertices own low ids, the hot adjacency rows pack into a dense
//! prefix of `adj`, consecutive frontier lanes read consecutive
//! 128-byte lines, and the transaction count drops — the same
//! memory-throughput argument behind the paper's edge-parallel versus
//! work-efficient comparison. This module relabels a graph by
//! descending degree while carrying both direction maps so every
//! consumer can translate roots *into* the relabeled space and gather
//! scores *back out*, making the emitted scores bitwise identical to
//! an unrelabeled run (see `bc-verify`'s relabel-equivalence battery).

use crate::builder;
use crate::csr::{Csr, VertexId};

/// Which vertex-relabeling pass to apply at load.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Relabeling {
    /// Keep the input labels.
    #[default]
    None,
    /// Sort vertices by descending degree (ties by ascending original
    /// id, so the permutation is deterministic).
    DegreeDesc,
}

impl Relabeling {
    /// CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            Relabeling::None => "none",
            Relabeling::DegreeDesc => "degree",
        }
    }
}

/// A relabeled graph plus the maps between label spaces.
///
/// `old_to_new[v]` is the relabeled id of original vertex `v`;
/// `new_to_old[w]` inverts it. Both are identities under
/// [`Relabeling::None`].
#[derive(Clone, Debug)]
pub struct RelabeledCsr {
    /// The permuted graph (same index width as the input).
    pub graph: Csr,
    old_to_new: Vec<VertexId>,
    new_to_old: Vec<VertexId>,
    relabeling: Relabeling,
}

/// The degree-descending permutation of `g` as a `new_to_old` order:
/// entry `i` is the original vertex ranked `i`-th by `(degree desc,
/// id asc)`.
pub fn degree_desc_order(g: &Csr) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = g.vertices().collect();
    // Stable by construction: the key is unique (id breaks ties).
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    order
}

/// Apply a relabeling pass to a symmetric graph.
///
/// # Panics
/// Panics if `g` is directed — every BC method here consumes the
/// symmetric CSR, and the permutation rebuild goes through the
/// undirected constructor.
pub fn apply(g: &Csr, relabeling: Relabeling) -> RelabeledCsr {
    assert!(
        g.is_symmetric() || g.num_directed_edges() == 0,
        "relabeling is defined on symmetric graphs"
    );
    let n = g.num_vertices();
    match relabeling {
        Relabeling::None => RelabeledCsr {
            graph: g.clone(),
            old_to_new: (0..n as VertexId).collect(),
            new_to_old: (0..n as VertexId).collect(),
            relabeling,
        },
        Relabeling::DegreeDesc => {
            let new_to_old = degree_desc_order(g);
            let mut old_to_new = vec![0 as VertexId; n];
            for (new, &old) in new_to_old.iter().enumerate() {
                old_to_new[old as usize] = new as VertexId;
            }
            let width = g.index_width();
            let graph = builder::relabel(g, &old_to_new).with_index_width(width);
            RelabeledCsr {
                graph,
                old_to_new,
                new_to_old,
                relabeling,
            }
        }
    }
}

impl RelabeledCsr {
    /// Which pass produced this graph.
    pub fn relabeling(&self) -> Relabeling {
        self.relabeling
    }

    /// Relabeled id of original vertex `old`.
    #[inline]
    pub fn to_new(&self, old: VertexId) -> VertexId {
        self.old_to_new[old as usize]
    }

    /// Original id of relabeled vertex `new`.
    #[inline]
    pub fn to_old(&self, new: VertexId) -> VertexId {
        self.new_to_old[new as usize]
    }

    /// The full `old -> new` map.
    pub fn old_to_new(&self) -> &[VertexId] {
        &self.old_to_new
    }

    /// The full `new -> old` map.
    pub fn new_to_old(&self) -> &[VertexId] {
        &self.new_to_old
    }

    /// Translate a root list from the original space into the
    /// relabeled space, preserving order (root processing order is
    /// part of the bitwise contract).
    pub fn map_roots(&self, roots: &[VertexId]) -> Vec<VertexId> {
        roots.iter().map(|&r| self.to_new(r)).collect()
    }

    /// Gather per-vertex scores computed in the relabeled space back
    /// into original-label order. A pure permutation gather: each
    /// output slot copies exactly one input `f64` bit pattern, so this
    /// cannot perturb scores.
    pub fn restore_scores(&self, scores: &[f64]) -> Vec<f64> {
        assert_eq!(scores.len(), self.old_to_new.len());
        self.old_to_new
            .iter()
            .map(|&new| scores[new as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn none_is_identity() {
        let g = gen::star(8);
        let r = apply(&g, Relabeling::None);
        assert_eq!(r.graph, g);
        for v in g.vertices() {
            assert_eq!(r.to_new(v), v);
            assert_eq!(r.to_old(v), v);
        }
    }

    #[test]
    fn degree_desc_sorts_degrees_monotonically() {
        let g = gen::watts_strogatz(512, 6, 0.2, 9);
        let r = apply(&g, Relabeling::DegreeDesc);
        let degs: Vec<u32> = r.graph.vertices().map(|v| r.graph.degree(v)).collect();
        assert!(
            degs.windows(2).all(|w| w[0] >= w[1]),
            "degrees must be non-increasing after relabeling"
        );
        // The maps invert each other and preserve degree.
        for v in g.vertices() {
            assert_eq!(r.to_old(r.to_new(v)), v);
            assert_eq!(g.degree(v), r.graph.degree(r.to_new(v)));
        }
    }

    #[test]
    fn degree_desc_is_deterministic_on_ties() {
        // A cycle: all degrees equal, so the order must fall back to
        // ascending original ids (the identity permutation).
        let g = gen::cycle(16);
        assert_eq!(
            degree_desc_order(&g),
            (0..16).collect::<Vec<VertexId>>(),
            "equal degrees tie-break by original id"
        );
        let r = apply(&g, Relabeling::DegreeDesc);
        assert_eq!(r.graph, g);
    }

    #[test]
    fn relabeling_preserves_structure() {
        let g = gen::barabasi_albert(300, 3, 4);
        let r = apply(&g, Relabeling::DegreeDesc);
        assert_eq!(r.graph.num_vertices(), g.num_vertices());
        assert_eq!(r.graph.num_undirected_edges(), g.num_undirected_edges());
        for (u, v) in g.arcs() {
            assert!(r.graph.has_arc(r.to_new(u), r.to_new(v)));
        }
    }

    #[test]
    fn restore_scores_is_a_permutation_gather() {
        let g = gen::star(5);
        let r = apply(&g, Relabeling::DegreeDesc);
        // Scores in the relabeled space: value = relabeled id.
        let scores: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let restored = r.restore_scores(&scores);
        for old in 0..5u32 {
            assert_eq!(restored[old as usize], r.to_new(old) as f64);
        }
        // Star center (original 0 in gen::star) has max degree → new id 0.
        assert_eq!(restored[0], 0.0);
    }

    #[test]
    fn map_roots_preserves_order() {
        let g = gen::star(6);
        let r = apply(&g, Relabeling::DegreeDesc);
        let roots = [3u32, 1, 5];
        let mapped = r.map_roots(&roots);
        assert_eq!(mapped.len(), 3);
        for (i, &root) in roots.iter().enumerate() {
            assert_eq!(mapped[i], r.to_new(root));
        }
    }

    #[test]
    fn index_width_survives_relabeling() {
        use crate::csr::CsrIndex;
        let g = gen::star(8).with_index_width(CsrIndex::U64);
        let r = apply(&g, Relabeling::DegreeDesc);
        assert_eq!(r.graph.index_width(), CsrIndex::U64);
    }
}
