//! Structural analysis beyond the Table II basics: triangles,
//! clustering, and degree assortativity. These separate the
//! generator classes on axes the diameter alone misses (e.g. web
//! crawls vs router topologies are both power-law but differ wildly
//! in clustering), and back the class assertions in the test suite.

use crate::csr::Csr;

/// Count triangles (3-cycles) in a symmetric graph, each counted
/// once. Uses the standard forward/degree-ordered merge, O(Σ d(v)²)
/// worst case but fast on sparse graphs.
pub fn triangle_count(g: &Csr) -> u64 {
    assert!(
        g.is_symmetric(),
        "triangle counting expects an undirected graph"
    );
    let mut count = 0u64;
    for u in g.vertices() {
        let nu = g.neighbors(u);
        for &v in nu {
            if v <= u {
                continue;
            }
            // Merge-intersect neighbors(u) and neighbors(v), counting
            // common w > v to count each triangle once (u < v < w).
            let nv = g.neighbors(v);
            let (mut i, mut j) = (0usize, 0usize);
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if nu[i] > v {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// Global clustering coefficient (transitivity): 3 × triangles /
/// open-plus-closed wedges.
pub fn global_clustering(g: &Csr) -> f64 {
    let wedges: u64 = g
        .vertices()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * triangle_count(g) as f64 / wedges as f64
}

/// Average local clustering coefficient (Watts–Strogatz's C): mean
/// over vertices of (closed wedges at v) / (wedges at v), skipping
/// degree-<2 vertices.
pub fn average_local_clustering(g: &Csr) -> f64 {
    let mut sum = 0.0f64;
    let mut counted = 0usize;
    for v in g.vertices() {
        let nb = g.neighbors(v);
        if nb.len() < 2 {
            continue;
        }
        let mut closed = 0u64;
        for (i, &a) in nb.iter().enumerate() {
            for &b in &nb[i + 1..] {
                if g.has_arc(a, b) {
                    closed += 1;
                }
            }
        }
        let wedges = (nb.len() * (nb.len() - 1) / 2) as u64;
        sum += closed as f64 / wedges as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        sum / counted as f64
    }
}

/// Degree assortativity (Pearson correlation of endpoint degrees over
/// edges). Positive: hubs attach to hubs (social networks); negative:
/// hubs attach to leaves (internet topologies). Returns 0 for
/// degenerate graphs.
pub fn degree_assortativity(g: &Csr) -> f64 {
    let mut n = 0.0f64;
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for (u, v) in g.arcs() {
        let x = g.degree(u) as f64;
        let y = g.degree(v) as f64;
        n += 1.0;
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
    }
    if n == 0.0 {
        return 0.0;
    }
    let cov = sxy / n - (sx / n) * (sy / n);
    let vx = sxx / n - (sx / n) * (sx / n);
    let vy = syy / n - (sy / n) * (sy / n);
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn triangles_in_known_shapes() {
        assert_eq!(triangle_count(&gen::complete(4)), 4);
        assert_eq!(triangle_count(&gen::complete(5)), 10);
        assert_eq!(triangle_count(&gen::cycle(5)), 0);
        assert_eq!(triangle_count(&gen::star(10)), 0);
        // A triangulated grid cell pair: (w-1)(h-1) triangles per
        // diagonal... just check positivity and determinism.
        let g = gen::triangulated_grid(5, 5, 1);
        assert!(
            triangle_count(&g) >= 16,
            "each cell contributes 2 triangles"
        );
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        let g = gen::complete(6);
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
        assert!((average_local_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_tree_is_zero() {
        let g = gen::balanced_tree(3, 3);
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(average_local_clustering(&g), 0.0);
    }

    #[test]
    fn lattice_clustering_beats_random() {
        // Watts–Strogatz's founding observation: the (slightly
        // rewired) ring lattice keeps high clustering, a same-size ER
        // graph has almost none.
        let ws = gen::watts_strogatz(800, 8, 0.05, 1);
        let er = gen::erdos_renyi(800, ws.num_undirected_edges() as usize, 1);
        let c_ws = average_local_clustering(&ws);
        let c_er = average_local_clustering(&er);
        assert!(c_ws > 5.0 * c_er, "WS {c_ws:.3} vs ER {c_er:.3}");
    }

    #[test]
    fn star_is_disassortative() {
        let g = gen::star(20);
        assert!(degree_assortativity(&g) <= 0.0);
        // Regular graphs have undefined (0 by convention) assortativity.
        assert_eq!(degree_assortativity(&gen::cycle(10)), 0.0);
    }

    #[test]
    fn preferential_attachment_is_disassortative() {
        let g = gen::barabasi_albert(2000, 3, 2);
        assert!(
            degree_assortativity(&g) < 0.05,
            "BA graphs are (weakly) disassortative: {}",
            degree_assortativity(&g)
        );
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = crate::Csr::from_undirected_edges(3, []);
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(average_local_clustering(&g), 0.0);
        assert_eq!(degree_assortativity(&g), 0.0);
    }
}
