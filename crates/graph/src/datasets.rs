//! Catalog of the paper's ten benchmark datasets (Table II), mapped to
//! structurally matched generator parameterizations.
//!
//! Each entry records the published statistics and can generate an
//! analogue at the paper's scale or any power-of-two reduction of it
//! (`reduction` halves `n` per step) — the scaling experiments of
//! Figure 5 / Figure 6 sweep exactly such families.

use crate::csr::Csr;
use crate::gen;
use serde::{Deserialize, Serialize};

/// The published Table II row for a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PaperRow {
    /// Published vertex count `n`.
    pub vertices: u64,
    /// Published undirected edge count `m`.
    pub edges: u64,
    /// Published maximum degree.
    pub max_degree: u32,
    /// Published diameter.
    pub diameter: u32,
    /// Table II description column.
    pub description: &'static str,
}

/// Identifier for each dataset evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// `af_shell9` — sheet-metal-forming FEM mesh (UFL collection).
    AfShell9,
    /// `caidaRouterLevel` — internet router-level topology (DIMACS).
    CaidaRouterLevel,
    /// `cnr-2000` — web crawl (DIMACS).
    Cnr2000,
    /// `com-amazon` — product co-purchasing network (SNAP).
    ComAmazon,
    /// `delaunay_n20` — random triangulation (DIMACS).
    DelaunayN20,
    /// `kron_g500-logn20` — Graph500 Kronecker graph.
    KronG500Logn20,
    /// `loc-gowalla` — geosocial network (SNAP).
    LocGowalla,
    /// `luxembourg.osm` — road map (DIMACS).
    LuxembourgOsm,
    /// `rgg_n_2_20` — random geometric graph (DIMACS).
    RggN2_20,
    /// `smallworld` — Watts–Strogatz instance.
    Smallworld,
}

/// Structural class of a dataset, as the paper discusses them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphClass {
    /// Meshes / numerical simulation (af_shell9, delaunay).
    Mesh,
    /// Road networks (luxembourg.osm).
    Road,
    /// Random geometric (rgg).
    Geometric,
    /// Scale-free / power-law (kron, caida, cnr, gowalla).
    ScaleFree,
    /// Small-world (smallworld).
    SmallWorld,
    /// Community-structured with bounded tail (com-amazon).
    Community,
}

impl DatasetId {
    /// All ten datasets, in Table II order.
    pub const ALL: [DatasetId; 10] = [
        DatasetId::AfShell9,
        DatasetId::CaidaRouterLevel,
        DatasetId::Cnr2000,
        DatasetId::ComAmazon,
        DatasetId::DelaunayN20,
        DatasetId::KronG500Logn20,
        DatasetId::LocGowalla,
        DatasetId::LuxembourgOsm,
        DatasetId::RggN2_20,
        DatasetId::Smallworld,
    ];

    /// The eight graphs of Table III (those small enough for the
    /// edge-parallel reference yet too large for GPU-FAN).
    pub const TABLE3: [DatasetId; 8] = [
        DatasetId::AfShell9,
        DatasetId::CaidaRouterLevel,
        DatasetId::Cnr2000,
        DatasetId::ComAmazon,
        DatasetId::DelaunayN20,
        DatasetId::LocGowalla,
        DatasetId::LuxembourgOsm,
        DatasetId::Smallworld,
    ];

    /// Dataset name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::AfShell9 => "af_shell9",
            DatasetId::CaidaRouterLevel => "caidaRouterLevel",
            DatasetId::Cnr2000 => "cnr-2000",
            DatasetId::ComAmazon => "com-amazon",
            DatasetId::DelaunayN20 => "delaunay_n20",
            DatasetId::KronG500Logn20 => "kron_g500-logn20",
            DatasetId::LocGowalla => "loc-gowalla",
            DatasetId::LuxembourgOsm => "luxembourg.osm",
            DatasetId::RggN2_20 => "rgg_n_2_20",
            DatasetId::Smallworld => "smallworld",
        }
    }

    /// Parse a paper dataset name.
    pub fn from_name(name: &str) -> Option<DatasetId> {
        DatasetId::ALL.iter().copied().find(|d| d.name() == name)
    }

    /// The published Table II statistics.
    pub fn paper_row(self) -> PaperRow {
        match self {
            DatasetId::AfShell9 => PaperRow {
                vertices: 504_855,
                edges: 8_542_010,
                max_degree: 39,
                diameter: 497,
                description: "Sheet metal forming",
            },
            DatasetId::CaidaRouterLevel => PaperRow {
                vertices: 192_244,
                edges: 609_066,
                max_degree: 1_071,
                diameter: 25,
                description: "Internet router-level topology",
            },
            DatasetId::Cnr2000 => PaperRow {
                vertices: 325_527,
                edges: 2_738_969,
                max_degree: 18_236,
                diameter: 33,
                description: "Web crawl",
            },
            DatasetId::ComAmazon => PaperRow {
                vertices: 334_863,
                edges: 925_872,
                max_degree: 549,
                diameter: 46,
                description: "Amazon product co-purchasing",
            },
            DatasetId::DelaunayN20 => PaperRow {
                vertices: 1_048_576,
                edges: 3_145_686,
                max_degree: 23,
                diameter: 444,
                description: "Random triangulation",
            },
            DatasetId::KronG500Logn20 => PaperRow {
                vertices: 1_048_576,
                edges: 44_619_402,
                max_degree: 131_503,
                diameter: 6,
                description: "Kronecker",
            },
            DatasetId::LocGowalla => PaperRow {
                vertices: 196_591,
                edges: 1_900_654,
                max_degree: 29_460,
                diameter: 15,
                description: "Geosocial",
            },
            DatasetId::LuxembourgOsm => PaperRow {
                vertices: 114_599,
                edges: 119_666,
                max_degree: 6,
                diameter: 1_336,
                description: "Road map",
            },
            DatasetId::RggN2_20 => PaperRow {
                vertices: 1_048_576,
                edges: 6_891_620,
                max_degree: 36,
                diameter: 864,
                description: "Random geometric",
            },
            DatasetId::Smallworld => PaperRow {
                vertices: 100_000,
                edges: 499_998,
                max_degree: 17,
                diameter: 9,
                description: "Small world phenomenon",
            },
        }
    }

    /// Structural class (used by expectations in tests and benches).
    pub fn class(self) -> GraphClass {
        match self {
            DatasetId::AfShell9 | DatasetId::DelaunayN20 => GraphClass::Mesh,
            DatasetId::LuxembourgOsm => GraphClass::Road,
            DatasetId::RggN2_20 => GraphClass::Geometric,
            DatasetId::KronG500Logn20
            | DatasetId::CaidaRouterLevel
            | DatasetId::Cnr2000
            | DatasetId::LocGowalla => GraphClass::ScaleFree,
            DatasetId::Smallworld => GraphClass::SmallWorld,
            DatasetId::ComAmazon => GraphClass::Community,
        }
    }

    /// Whether the paper expects the *work-efficient* strategy to win
    /// on this graph (high-diameter classes), as opposed to
    /// edge-parallel iterations being useful (scale-free/small-world).
    pub fn prefers_work_efficient(self) -> bool {
        matches!(
            self.class(),
            GraphClass::Mesh | GraphClass::Road | GraphClass::Geometric
        )
    }

    /// Generate the analogue at the paper's published size reduced by
    /// `reduction` powers of two (0 = full Table II scale). Density
    /// (m/n) is preserved across reductions.
    pub fn generate(self, reduction: u32, seed: u64) -> Csr {
        let row = self.paper_row();
        let n = (row.vertices >> reduction).max(64) as usize;
        match self {
            DatasetId::AfShell9 => {
                // Sheet with 2:1 aspect and a Chebyshev radius-2
                // stencil (interior degree 24 ~ paper's uniform 34);
                // at full scale the 994×508 sheet reproduces the
                // published diameter of ~500.
                let h = ((n as f64 / 2.0).sqrt().round() as usize).max(8);
                let w = (n / h).max(8);
                gen::sheet_mesh(w, h, 2)
            }
            DatasetId::CaidaRouterLevel => gen::router_topology(n, seed),
            DatasetId::Cnr2000 => {
                let out_links = (row.edges / row.vertices) as usize; // 8
                gen::web_copy_model(n, out_links.max(2), 0.7, seed)
            }
            DatasetId::ComAmazon => gen::co_purchase(
                n,
                gen::CommunityParams {
                    mean_size: 12,
                    intra_p: 0.3,
                    bridges: 3,
                },
                seed,
            ),
            DatasetId::DelaunayN20 => {
                let side = (n as f64).sqrt().round() as usize;
                gen::delaunay_like(side.max(2), side.max(2), seed)
            }
            DatasetId::KronG500Logn20 => {
                let scale = (63 - (n as u64).leading_zeros()).max(6);
                let ef = (row.edges / row.vertices) as usize; // ~42
                gen::kronecker(scale, ef, seed)
            }
            DatasetId::LocGowalla => {
                let avg = 2.0 * row.edges as f64 / row.vertices as f64; // ~19.3
                gen::geosocial(n, avg, seed)
            }
            DatasetId::LuxembourgOsm => gen::road_network(n, seed),
            DatasetId::RggN2_20 => {
                let deg = 2.0 * row.edges as f64 / row.vertices as f64; // ~13.1
                gen::random_geometric(n, gen::rgg_radius_for_degree(n, deg), seed)
            }
            DatasetId::Smallworld => {
                // k = 10 reproduces m = 5n (paper: 499,998 ≈ 5 * 100,000).
                gen::watts_strogatz(n, 10, 0.1, seed)
            }
        }
    }

    /// Convenience: a small instance suitable for unit tests
    /// (n in the low thousands).
    pub fn small_instance(self, seed: u64) -> Csr {
        let row = self.paper_row();
        let reduction = (64 - row.vertices.leading_zeros() as u64).saturating_sub(14) as u32;
        self.generate(reduction, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn names_round_trip() {
        for d in DatasetId::ALL {
            assert_eq!(DatasetId::from_name(d.name()), Some(d));
        }
        assert_eq!(DatasetId::from_name("nope"), None);
    }

    #[test]
    fn paper_rows_match_table2_totals() {
        let total_edges: u64 = DatasetId::ALL.iter().map(|d| d.paper_row().edges).sum();
        assert_eq!(total_edges, 69_992_943);
        assert_eq!(DatasetId::LuxembourgOsm.paper_row().diameter, 1_336);
    }

    #[test]
    fn small_instances_generate() {
        for d in DatasetId::ALL {
            let g = d.small_instance(7);
            assert!(
                g.num_vertices() >= 64,
                "{}: n = {}",
                d.name(),
                g.num_vertices()
            );
            assert!(g.num_undirected_edges() > 0, "{}", d.name());
        }
    }

    #[test]
    fn density_tracks_paper_density() {
        for d in DatasetId::ALL {
            let row = d.paper_row();
            let g = d.small_instance(3);
            let paper_avg = 2.0 * row.edges as f64 / row.vertices as f64;
            let ours = 2.0 * g.num_undirected_edges() as f64 / g.num_vertices() as f64;
            // Within 2.5x either way: the class matters, not the decimals.
            assert!(
                ours > paper_avg / 2.5 && ours < paper_avg * 2.5,
                "{}: paper avg degree {paper_avg:.1}, generated {ours:.1}",
                d.name()
            );
        }
    }

    #[test]
    fn high_diameter_datasets_generate_high_diameter_graphs() {
        for d in [
            DatasetId::LuxembourgOsm,
            DatasetId::RggN2_20,
            DatasetId::DelaunayN20,
        ] {
            let g = d.small_instance(11);
            let s = GraphStats::compute_with_limit(&g, 0);
            let n = g.num_vertices() as f64;
            // High-diameter classes scale like Θ(√n), far above the
            // Θ(log n) of the small-world classes.
            assert!(
                (s.diameter as f64) > n.sqrt() / 2.0,
                "{} should be high-diameter: diameter {} for n {}",
                d.name(),
                s.diameter,
                n
            );
            assert!(d.prefers_work_efficient());
        }
    }

    #[test]
    fn low_diameter_datasets_generate_low_diameter_graphs() {
        for d in [
            DatasetId::KronG500Logn20,
            DatasetId::Smallworld,
            DatasetId::LocGowalla,
        ] {
            let g = d.small_instance(13);
            let s = GraphStats::compute_with_limit(&g, 0);
            let n = g.num_vertices() as f64;
            assert!(
                (s.diameter as f64) < 3.0 * n.log2(),
                "{} should be low-diameter: diameter {} for n {}",
                d.name(),
                s.diameter,
                n
            );
            assert!(!d.prefers_work_efficient());
        }
    }

    #[test]
    fn reduction_halves_vertices() {
        let g0 = DatasetId::Smallworld.generate(7, 1);
        let g1 = DatasetId::Smallworld.generate(8, 1);
        let ratio = g0.num_vertices() as f64 / g1.num_vertices() as f64;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn deterministic_generation() {
        for d in [DatasetId::KronG500Logn20, DatasetId::RggN2_20] {
            assert_eq!(d.small_instance(3), d.small_instance(3));
        }
    }
}
