//! # bc-graph — graph substrate for hybrid betweenness centrality
//!
//! This crate provides everything the BC algorithms need from a graph
//! library:
//!
//! * [`Csr`] — compressed sparse row storage with `u32` indices;
//! * [`builder`] — edge-list accumulation, relabeling, component
//!   extraction;
//! * [`gen`] — deterministic generators covering every structural
//!   class in the paper's evaluation (meshes, roads, random geometric,
//!   Kronecker/R-MAT, small-world, scale-free, web, community);
//! * [`datasets`] — the ten Table II datasets mapped to generator
//!   parameterizations at any scale;
//! * [`io`] — METIS/DIMACS, Matrix Market, SNAP edge-list, and binary
//!   CSR readers/writers;
//! * [`relabel`] — degree-ordered vertex relabeling with inverse maps
//!   (coalesced adjacency layout, bitwise-identical scores);
//! * [`stats`] / [`traversal`] — structural statistics and reference
//!   BFS utilities.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod builder;
mod csr;
pub mod datasets;
pub mod gen;
pub mod io;
pub mod relabel;
pub mod stats;
pub mod traversal;
pub mod weighted;

pub use csr::{Csr, CsrIndex, EdgeId, VertexId};
pub use datasets::{DatasetId, GraphClass};
pub use relabel::{RelabeledCsr, Relabeling};
pub use stats::GraphStats;
pub use weighted::WeightedCsr;
