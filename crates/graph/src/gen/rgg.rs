//! Random geometric graphs (the `rgg_n_2_*` family of the 10th DIMACS
//! challenge): `n` points uniform on the unit square, an edge between
//! every pair within Euclidean distance `r`.
//!
//! Neighbor search uses a uniform grid with cell size `r`, so
//! generation is O(n) for the near-threshold radii these benchmarks
//! use. The DIMACS family sets `r` slightly above the connectivity
//! threshold `sqrt(ln n / (π n))`, producing high-diameter,
//! uniform-degree graphs — the structure where the paper's
//! work-efficient method shines.

use crate::csr::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Radius that yields an expected average degree of `deg` for `n`
/// uniform points on the unit square: `E[deg] ≈ n π r²`.
pub fn rgg_radius_for_degree(n: usize, deg: f64) -> f64 {
    (deg / (n as f64 * std::f64::consts::PI)).sqrt()
}

/// Generate a random geometric graph with `n` points and connection
/// radius `radius`.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Csr {
    assert!(radius > 0.0 && radius <= 1.0, "radius must be in (0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();

    // Bucket points into a grid of cell size >= radius.
    let cells = ((1.0 / radius).floor() as usize).clamp(1, 4096);
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in pts.iter().enumerate() {
        grid[cell_of(y) * cells + cell_of(x)].push(i as u32);
    }

    let r2 = radius * radius;
    let mut edges = Vec::new();
    for cy in 0..cells {
        for cx in 0..cells {
            for &i in &grid[cy * cells + cx] {
                let (xi, yi) = pts[i as usize];
                // Scan this cell and forward neighbors to visit each
                // pair once.
                for (dy, dx) in [(0isize, 0isize), (0, 1), (1, -1), (1, 0), (1, 1)] {
                    let ny = cy as isize + dy;
                    let nx = cx as isize + dx;
                    if ny < 0 || nx < 0 || ny >= cells as isize || nx >= cells as isize {
                        continue;
                    }
                    for &j in &grid[ny as usize * cells + nx as usize] {
                        // Within the same cell only look at larger ids.
                        if dy == 0 && dx == 0 && j <= i {
                            continue;
                        }
                        let (xj, yj) = pts[j as usize];
                        let (ddx, ddy) = (xi - xj, yi - yj);
                        if ddx * ddx + ddy * ddy <= r2 {
                            edges.push((i, j));
                        }
                    }
                }
            }
        }
    }
    Csr::from_undirected_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic() {
        let a = random_geometric(500, 0.06, 42);
        let b = random_geometric(500, 0.06, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn degree_matches_expectation() {
        let n = 4000;
        let r = rgg_radius_for_degree(n, 12.0);
        let g = random_geometric(n, r, 1);
        let avg = 2.0 * g.num_undirected_edges() as f64 / n as f64;
        assert!(
            (avg - 12.0).abs() < 2.0,
            "expected average degree near 12, got {avg}"
        );
    }

    #[test]
    fn high_diameter_class() {
        let n = 4096;
        let g = random_geometric(n, rgg_radius_for_degree(n, 13.0), 3);
        let s = GraphStats::compute_with_limit(&g, 0); // estimate only
                                                       // A near-threshold RGG on 4k points has diameter on the order
                                                       // of sqrt(n)/deg ~ tens; certainly far above log2(n) ≈ 12.
        assert!(
            s.diameter > 20,
            "rgg should be high-diameter, got {}",
            s.diameter
        );
        assert!(
            s.largest_component_frac > 0.9,
            "rgg should be mostly connected"
        );
    }

    #[test]
    fn no_long_edges() {
        let g = random_geometric(300, 0.08, 9);
        // Regenerate points with the same seed to validate edge lengths.
        let mut rng = SmallRng::seed_from_u64(9);
        let pts: Vec<(f64, f64)> = (0..300)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        for (u, v) in g.arcs() {
            let (x1, y1) = pts[u as usize];
            let (x2, y2) = pts[v as usize];
            let d2 = (x1 - x2).powi(2) + (y1 - y2).powi(2);
            assert!(d2 <= 0.08f64 * 0.08 + 1e-12);
        }
    }

    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
}
