//! Watts–Strogatz small-world generator — the paper's `smallworld`
//! dataset (n = 100,000, m ≈ 500,000, diameter 9) is exactly this
//! model: a ring lattice with degree `k` whose edges are rewired with
//! probability `p`.

use crate::csr::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Watts–Strogatz graph: ring of `n` vertices, each connected to its
/// `k/2` nearest neighbors on each side, each edge rewired to a
/// uniform random endpoint with probability `p`.
///
/// `k` must be even and `< n`.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> Csr {
    assert!(k % 2 == 0, "k must be even");
    assert!(k < n, "k must be smaller than n");
    assert!((0.0..=1.0).contains(&p));
    let mut rng = SmallRng::seed_from_u64(seed);
    let half = (k / 2) as u32;
    let n32 = n as u32;
    let mut edges = Vec::with_capacity(n * k / 2);
    for u in 0..n32 {
        for j in 1..=half {
            let v = (u + j) % n32;
            if rng.gen::<f64>() < p {
                // Rewire the far endpoint; avoid self-loops. Possible
                // duplicates are collapsed by the CSR builder, which
                // loses a few edges — the same behavior as the
                // reference NetworkX implementation.
                let mut w = rng.gen_range(0..n32);
                while w == u {
                    w = rng.gen_range(0..n32);
                }
                edges.push((u, w));
            } else {
                edges.push((u, v));
            }
        }
    }
    Csr::from_undirected_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;
    use crate::traversal;

    #[test]
    fn lattice_when_p_zero() {
        let g = watts_strogatz(20, 4, 0.0, 1);
        assert_eq!(g.num_undirected_edges(), 40);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        // Ring lattice n=20, k=4: diameter = ceil((n/2)/ (k/2)) = 5.
        assert_eq!(traversal::exact_diameter(&g), 5);
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        let lattice = watts_strogatz(1000, 10, 0.0, 2);
        let rewired = watts_strogatz(1000, 10, 0.1, 2);
        let d0 = traversal::diameter_estimate(&lattice, 4);
        let d1 = traversal::diameter_estimate(&rewired, 4);
        assert!(
            d1 < d0 / 2,
            "rewiring should collapse the diameter ({d0} -> {d1})"
        );
    }

    #[test]
    fn small_world_class() {
        let g = watts_strogatz(4096, 10, 0.1, 3);
        let s = GraphStats::compute_with_limit(&g, 0);
        assert!(
            s.diameter <= 12,
            "small-world diameter should be ~log n, got {}",
            s.diameter
        );
        assert!(s.largest_component_frac > 0.99);
        // Degrees stay near-uniform (unlike scale-free graphs).
        assert!(
            s.max_degree < 25,
            "WS max degree stays small, got {}",
            s.max_degree
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            watts_strogatz(128, 6, 0.2, 9),
            watts_strogatz(128, 6, 0.2, 9)
        );
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn odd_k_rejected() {
        let _ = watts_strogatz(10, 3, 0.1, 0);
    }
}
