//! Deterministic elementary graphs with closed-form BC scores, used
//! throughout the test suites, plus the Erdős–Rényi baseline.

use crate::csr::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Path graph `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> Csr {
    Csr::from_undirected_edges(n, (1..n as u32).map(|i| (i - 1, i)))
}

/// Cycle graph on `n` vertices (requires `n >= 3` to avoid a
/// degenerate multi-edge; smaller n yields a path).
pub fn cycle(n: usize) -> Csr {
    if n < 3 {
        return path(n);
    }
    Csr::from_undirected_edges(n, (0..n as u32).map(|i| (i, (i + 1) % n as u32)))
}

/// Star graph: vertex 0 is the hub, vertices `1..n` are leaves.
pub fn star(n: usize) -> Csr {
    Csr::from_undirected_edges(n, (1..n as u32).map(|i| (0, i)))
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> Csr {
    let edges = (0..n as u32).flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)));
    Csr::from_undirected_edges(n, edges)
}

/// 2-D grid graph of `w × h` vertices with 4-neighbor connectivity.
pub fn grid(w: usize, h: usize) -> Csr {
    let idx = |x: usize, y: usize| (y * w + x) as u32;
    let mut edges = Vec::with_capacity(2 * w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }
    Csr::from_undirected_edges(w * h, edges)
}

/// Balanced tree with branching factor `b` and `depth` levels below
/// the root (depth 0 is a single vertex).
pub fn balanced_tree(b: usize, depth: usize) -> Csr {
    assert!(b >= 1);
    // n = 1 + b + b^2 + ... + b^depth
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= b;
        n += level;
    }
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for child in 1..n {
        let parent = (child - 1) / b;
        edges.push((parent as u32, child as u32));
    }
    Csr::from_undirected_edges(n, edges)
}

/// Erdős–Rényi `G(n, m)` graph: `m` edges drawn uniformly without
/// replacement (rejection-sampled).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Csr {
    assert!(n >= 2 || m == 0, "need at least 2 vertices to place edges");
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "requested more edges than the complete graph holds"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            edges.push(key);
        }
    }
    Csr::from_undirected_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn path_shape() {
        let g = path(6);
        assert_eq!(g.num_undirected_edges(), 5);
        assert_eq!(traversal::exact_diameter(&g), 5);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(7);
        assert_eq!(g.num_undirected_edges(), 7);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
        assert_eq!(traversal::exact_diameter(&g), 3);
    }

    #[test]
    fn tiny_cycle_degenerates_to_path() {
        assert_eq!(cycle(2).num_undirected_edges(), 1);
        assert_eq!(cycle(1).num_undirected_edges(), 0);
    }

    #[test]
    fn star_shape() {
        let g = star(9);
        assert_eq!(g.degree(0), 8);
        assert_eq!(g.num_undirected_edges(), 8);
        assert_eq!(traversal::exact_diameter(&g), 2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.num_undirected_edges(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
        assert_eq!(traversal::exact_diameter(&g), 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 3);
        assert_eq!(g.num_vertices(), 12);
        // edges: 3*3 horizontal rows? horizontal: (4-1)*3 = 9; vertical: 4*(3-1) = 8.
        assert_eq!(g.num_undirected_edges(), 17);
        assert_eq!(traversal::exact_diameter(&g), 5);
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_tree(2, 3); // 1 + 2 + 4 + 8 = 15
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_undirected_edges(), 14);
        assert!(traversal::is_connected(&g));
        assert_eq!(traversal::exact_diameter(&g), 6);
    }

    #[test]
    fn erdos_renyi_counts_and_determinism() {
        let g1 = erdos_renyi(64, 128, 7);
        let g2 = erdos_renyi(64, 128, 7);
        assert_eq!(g1.num_undirected_edges(), 128);
        assert_eq!(g1, g2, "same seed must reproduce the same graph");
        let g3 = erdos_renyi(64, 128, 8);
        assert_ne!(g1, g3, "different seed should differ");
    }

    #[test]
    fn erdos_renyi_dense_limit() {
        let g = erdos_renyi(5, 10, 1); // complete graph
        assert_eq!(g.num_undirected_edges(), 10);
    }
}
