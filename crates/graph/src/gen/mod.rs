//! Graph generators.
//!
//! The paper evaluates on ten DIMACS / UFL / SNAP datasets (Table II).
//! Those files are not redistributable here, so each dataset is
//! replaced by a generator producing the same *structural class* —
//! the property that actually drives the paper's results (frontier
//! evolution, degree skew, diameter). See DESIGN.md §2 for the
//! mapping and [`crate::datasets`] for parameterizations matched to
//! Table II.
//!
//! All generators are deterministic functions of their explicit
//! `seed`; re-running an experiment reproduces the same graph.

mod community;
mod delaunay;
mod kronecker;
mod mesh;
mod preferential;
mod rgg;
mod road;
mod shapes;
mod small_world;

pub use community::{co_purchase, web_copy_model, CommunityParams};
pub use delaunay::{delaunay_random, delaunay_triangulation};
pub use kronecker::{kronecker, rmat_edges, RmatParams};
pub use mesh::{delaunay_like, sheet_mesh, triangulated_grid};
pub use preferential::{barabasi_albert, geosocial, router_topology};
pub use rgg::{random_geometric, rgg_radius_for_degree};
pub use road::road_network;
pub use shapes::{balanced_tree, complete, cycle, erdos_renyi, grid, path, star};
pub use small_world::watts_strogatz;
