//! Mesh generators standing in for the paper's `delaunay_n*` (random
//! triangulations) and `af_shell9` (sheet-metal FEM) inputs.
//!
//! * [`triangulated_grid`] — a planar triangulation of a jittered
//!   point grid. Average degree ≈ 6, max degree small, diameter
//!   Θ(√n): the same structural class as the DIMACS `delaunay_n*`
//!   instances (which average 5.99 and have diameter in the hundreds
//!   at n = 2²⁰).
//! * [`sheet_mesh`] — a wide-stencil quasi-2D lattice: every vertex
//!   couples to all grid neighbors within Chebyshev radius `r`, like
//!   a higher-order FEM discretization of a thin shell. With r = 2
//!   the stencil has 24 neighbors, landing in `af_shell9`'s class
//!   (uniform degree ≈ 34, tiny max degree, diameter ≈ 500).

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Triangulation of a `w × h` jittered grid: grid edges plus one
/// (randomly oriented) diagonal per cell. Planar, avg degree ≈ 6.
pub fn triangulated_grid(w: usize, h: usize, seed: u64) -> Csr {
    assert!(
        w >= 2 && h >= 2,
        "triangulated grid needs at least 2x2 points"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let idx = |x: usize, y: usize| (y * w + x) as u32;
    let mut b = GraphBuilder::with_capacity(w * h, 3 * w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(idx(x, y), idx(x + 1, y));
            }
            if y + 1 < h {
                b.add_edge(idx(x, y), idx(x, y + 1));
            }
            if x + 1 < w && y + 1 < h {
                // Randomly orient each cell's diagonal, like a
                // Delaunay triangulation of jittered points would.
                if rng.gen::<bool>() {
                    b.add_edge(idx(x, y), idx(x + 1, y + 1));
                } else {
                    b.add_edge(idx(x + 1, y), idx(x, y + 1));
                }
            }
        }
    }
    b.build()
}

/// Delaunay-like triangulation: a [`triangulated_grid`] plus the
/// *long-edge tail* real Delaunay triangulations of non-uniform
/// points exhibit (edges spanning sparse regions). A small fraction
/// of vertices gain one edge to a point several cells away, which is
/// what pulls the DIMACS `delaunay_n20` diameter down to ~0.43× the
/// grid side while leaving the average degree near 6 and the
/// frontier evolution gradual.
pub fn delaunay_like(w: usize, h: usize, seed: u64) -> Csr {
    let base = triangulated_grid(w, h, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD31A_0145);
    let idx = |x: usize, y: usize| (y * w + x) as u32;
    let mut extra: Vec<(u32, u32)> = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if rng.gen::<f64>() < 0.10 {
                let span = rng.gen_range(2..=8usize);
                let (dx, dy) = match rng.gen_range(0..4u8) {
                    0 => (span as isize, 0isize),
                    1 => (0, span as isize),
                    2 => (span as isize, span as isize),
                    _ => (span as isize, -(span as isize)),
                };
                let (nx, ny) = (x as isize + dx, y as isize + dy);
                if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                    extra.push((idx(x, y), idx(nx as usize, ny as usize)));
                }
            }
        }
    }
    let edges = base.arcs().filter(|&(u, v)| u < v).chain(extra);
    Csr::from_undirected_edges(w * h, edges)
}

/// Quasi-2D shell mesh: `w × h` lattice, every vertex adjacent to all
/// lattice points within Chebyshev distance `radius`.
pub fn sheet_mesh(w: usize, h: usize, radius: usize) -> Csr {
    assert!(radius >= 1, "stencil radius must be at least 1");
    let idx = |x: usize, y: usize| (y * w + x) as u32;
    let r = radius as isize;
    // Each vertex emits edges only to "forward" stencil offsets so
    // each undirected edge is generated once.
    let mut offsets = Vec::new();
    for dy in 0..=r {
        for dx in -r..=r {
            if dy == 0 && dx <= 0 {
                continue;
            }
            offsets.push((dx, dy));
        }
    }
    let mut b = GraphBuilder::with_capacity(w * h, w * h * offsets.len());
    for y in 0..h as isize {
        for x in 0..w as isize {
            for &(dx, dy) in &offsets {
                let (nx, ny) = (x + dx, y + dy);
                if nx >= 0 && ny >= 0 && nx < w as isize && ny < h as isize {
                    b.add_edge(idx(x as usize, y as usize), idx(nx as usize, ny as usize));
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{degree_gini, GraphStats};
    use crate::traversal;

    #[test]
    fn triangulated_grid_counts() {
        let (w, h) = (10, 8);
        let g = triangulated_grid(w, h, 1);
        assert_eq!(g.num_vertices(), 80);
        // (w-1)*h horizontal + w*(h-1) vertical + (w-1)*(h-1) diagonals.
        let expect = (w - 1) * h + w * (h - 1) + (w - 1) * (h - 1);
        assert_eq!(g.num_undirected_edges() as usize, expect);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn triangulated_grid_is_delaunay_class() {
        let g = triangulated_grid(48, 48, 2);
        let s = GraphStats::compute_with_limit(&g, 0);
        assert!(
            s.avg_degree > 5.0 && s.avg_degree < 6.2,
            "avg degree {}",
            s.avg_degree
        );
        assert!(s.max_degree <= 8);
        // Diameter scales like sqrt(n): for 48x48 it's near 48..96.
        assert!(s.diameter >= 47, "diameter {}", s.diameter);
        assert!(degree_gini(&g) < 0.15, "mesh degrees must be near-uniform");
    }

    #[test]
    fn triangulated_grid_deterministic() {
        assert_eq!(triangulated_grid(12, 12, 5), triangulated_grid(12, 12, 5));
        assert_ne!(triangulated_grid(12, 12, 5), triangulated_grid(12, 12, 6));
    }

    #[test]
    fn delaunay_like_keeps_class_but_shrinks_diameter() {
        let base = triangulated_grid(96, 96, 4);
        let dl = delaunay_like(96, 96, 4);
        let s = GraphStats::compute_with_limit(&dl, 0);
        // Degree stays in the planar-triangulation band.
        assert!(
            s.avg_degree > 5.9 && s.avg_degree < 6.6,
            "avg degree {}",
            s.avg_degree
        );
        assert!(s.max_degree <= 12);
        assert!(traversal::is_connected(&dl));
        // The long-edge tail cuts the diameter roughly in half.
        let d_base = traversal::diameter_estimate(&base, 4);
        let d_dl = traversal::diameter_estimate(&dl, 4);
        assert!(
            (d_dl as f64) < 0.75 * d_base as f64,
            "shortcuts should shrink the diameter: {d_base} -> {d_dl}"
        );
        assert!(
            (d_dl as f64) > 0.25 * d_base as f64,
            "but not collapse it: {d_base} -> {d_dl}"
        );
    }

    #[test]
    fn sheet_mesh_interior_degree() {
        let g = sheet_mesh(20, 20, 2);
        // Interior vertices have the full 24-neighbor stencil.
        let interior = (10usize * 20 + 10) as u32;
        assert_eq!(g.degree(interior), 24);
        assert!(traversal::is_connected(&g));
        // Corner has the quarter stencil: (r+1)^2 - 1 = 8.
        assert_eq!(g.degree(0), 8);
    }

    #[test]
    fn sheet_mesh_diameter_scales_with_span() {
        let g = sheet_mesh(60, 6, 2);
        // BFS distance = ceil(Chebyshev / r); farthest pair spans 59
        // columns -> about 30 hops.
        let d = traversal::exact_diameter(&g);
        assert!((28..=32).contains(&d), "diameter {d}");
    }

    #[test]
    fn sheet_mesh_radius_one_is_king_graph() {
        let g = sheet_mesh(5, 5, 1);
        let center = (2 * 5 + 2) as u32;
        assert_eq!(g.degree(center), 8);
    }
}
