//! Stochastic Kronecker (R-MAT) generator — the `kron_g500-logn*`
//! family (Graph500 reference inputs).
//!
//! Each edge is placed by descending `scale` levels of a 2×2
//! probability matrix `[[a, b], [c, d]]`; the Graph500 parameters
//! (a = 0.57, b = c = 0.19, d = 0.05) produce heavily skewed degree
//! distributions, diameter ~6, and a sizable population of isolated
//! vertices — exactly the properties the paper leans on when it
//! discusses the inflated TEPS of `kron_g500-logn20` (Table IV).

use crate::csr::{Csr, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// R-MAT quadrant probabilities. Must sum to 1.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
    /// Per-level probability noise, as used by Graph500 to avoid
    /// exact self-similarity ("smoothing"). 0 disables.
    pub noise: f64,
}

impl RmatParams {
    /// Graph500 reference parameters.
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
        noise: 0.1,
    };

    fn validate(&self) {
        let s = self.a + self.b + self.c + self.d;
        assert!(
            (s - 1.0).abs() < 1e-9,
            "R-MAT quadrant probabilities must sum to 1, got {s}"
        );
        assert!(self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0);
        assert!((0.0..=0.5).contains(&self.noise));
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        Self::GRAPH500
    }
}

/// Sample `count` raw R-MAT directed edge endpoints at `2^scale`
/// vertices. Duplicates and self-loops are *not* filtered here.
pub fn rmat_edges(
    scale: u32,
    count: usize,
    params: RmatParams,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    params.validate();
    assert!(scale <= 31, "scale must keep vertex ids within u32");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(count);
    for _ in 0..count {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            // Per-level noisy copy of the quadrant probabilities.
            let jitter = |p: f64, rng: &mut SmallRng| {
                if params.noise == 0.0 {
                    p
                } else {
                    p * (1.0 + params.noise * (rng.gen::<f64>() - 0.5))
                }
            };
            let (a, b, c, d) = (
                jitter(params.a, &mut rng),
                jitter(params.b, &mut rng),
                jitter(params.c, &mut rng),
                jitter(params.d, &mut rng),
            );
            let total = a + b + c + d;
            let r = rng.gen::<f64>() * total;
            u <<= 1;
            v <<= 1;
            if r < a {
                // top-left quadrant
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u, v));
    }
    edges
}

/// Generate an undirected Kronecker graph with `2^scale` vertices and
/// `edge_factor * 2^scale` sampled edges (before dedup, matching
/// Graph500 conventions — the deduplicated count is lower).
pub fn kronecker(scale: u32, edge_factor: usize, seed: u64) -> Csr {
    kronecker_with(scale, edge_factor, RmatParams::GRAPH500, seed)
}

/// As [`kronecker`], with explicit R-MAT parameters.
pub fn kronecker_with(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Csr {
    let n = 1usize << scale;
    let raw = rmat_edges(scale, edge_factor * n, params, seed);
    Csr::from_undirected_edges(n, raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{degree_gini, GraphStats};

    #[test]
    fn vertex_count_is_power_of_two() {
        let g = kronecker(10, 8, 1);
        assert_eq!(g.num_vertices(), 1024);
    }

    #[test]
    fn deterministic() {
        assert_eq!(kronecker(9, 8, 3), kronecker(9, 8, 3));
        assert_ne!(kronecker(9, 8, 3), kronecker(9, 8, 4));
    }

    #[test]
    fn skewed_degrees_and_isolated_vertices() {
        let g = kronecker(12, 16, 7);
        let s = GraphStats::compute_with_limit(&g, 0);
        assert!(
            s.isolated > 0,
            "kronecker graphs should have isolated vertices"
        );
        assert!(
            s.max_degree as f64 > 10.0 * s.avg_degree,
            "kronecker max degree ({}) should dwarf the mean ({})",
            s.max_degree,
            s.avg_degree
        );
        assert!(
            degree_gini(&g) > 0.4,
            "kronecker degrees should be heavily skewed"
        );
    }

    #[test]
    fn small_diameter_class() {
        let g = kronecker(12, 16, 5);
        let s = GraphStats::compute_with_limit(&g, 0);
        // Small-world: diameter within a small multiple of log2(n) = 12.
        assert!(
            s.diameter <= 16,
            "kron diameter should be tiny, got {}",
            s.diameter
        );
    }

    #[test]
    fn edge_budget_respected() {
        let g = kronecker(10, 16, 2);
        // After dedup/self-loop removal m is below the raw budget but
        // still a large fraction of it.
        assert!(g.num_undirected_edges() <= 16 * 1024);
        assert!(g.num_undirected_edges() > 8 * 1024);
    }

    #[test]
    fn zero_noise_supported() {
        let p = RmatParams {
            noise: 0.0,
            ..RmatParams::GRAPH500
        };
        let g = kronecker_with(8, 8, p, 11);
        assert_eq!(g.num_vertices(), 256);
    }

    #[test]
    fn raw_edge_arithmetic_matches_graph500_convention() {
        // `edge_factor * 2^scale` raw samples, each within `2^scale`.
        for (scale, ef) in [(6u32, 4usize), (9, 8), (11, 16)] {
            let n = 1usize << scale;
            let raw = rmat_edges(scale, ef * n, RmatParams::GRAPH500, 13);
            assert_eq!(raw.len(), ef * n);
            assert!(raw
                .iter()
                .all(|&(u, v)| (u as usize) < n && (v as usize) < n));
            let g = kronecker(scale, ef, 13);
            assert_eq!(g.num_vertices(), n);
        }
    }

    #[test]
    fn raw_edges_are_seed_deterministic() {
        let a = rmat_edges(10, 4096, RmatParams::GRAPH500, 21);
        let b = rmat_edges(10, 4096, RmatParams::GRAPH500, 21);
        assert_eq!(a, b);
        let c = rmat_edges(10, 4096, RmatParams::GRAPH500, 22);
        assert_ne!(a, c, "distinct seeds must draw distinct samples");
    }

    #[test]
    fn csr_invariants_hold_no_loop_or_multi_edge_leaks() {
        // The raw R-MAT stream contains self-loops and duplicates by
        // construction; none may survive into the CSR (the same
        // invariants bc-verify replays over every dataset analogue).
        let raw = rmat_edges(9, 8 * 512, RmatParams::GRAPH500, 3);
        assert!(
            raw.iter().any(|&(u, v)| u == v),
            "test premise: raw stream should contain self-loops"
        );
        let g = kronecker(9, 8, 3);
        assert!(g.is_symmetric());
        for v in g.vertices() {
            let row = g.neighbors(v);
            assert!(!row.contains(&v), "self-loop leaked at vertex {v}");
            assert!(
                row.windows(2).all(|w| w[0] < w[1]),
                "row {v} must be strictly sorted (no multi-edges)"
            );
            for &u in row {
                assert!(g.has_arc(u, v), "missing reverse arc {u}->{v}");
            }
        }
        assert_eq!(g.num_directed_edges() as u64, 2 * g.num_undirected_edges());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn invalid_params_rejected() {
        let p = RmatParams {
            a: 0.9,
            b: 0.3,
            c: 0.1,
            d: 0.1,
            noise: 0.0,
        };
        let _ = rmat_edges(4, 10, p, 0);
    }
}
