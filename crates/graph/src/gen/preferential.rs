//! Preferential-attachment generators for the paper's scale-free
//! real-world datasets:
//!
//! * [`barabasi_albert`] — the classic BA model (power-law degrees).
//! * [`router_topology`] — `caidaRouterLevel` analogue: BA growth with
//!   a sparse attachment count and extra random "peering" links,
//!   giving a power-law internet-like topology with moderate maximum
//!   degree and diameter ≈ 25.
//! * [`geosocial`] — `loc-gowalla` analogue: preferential attachment
//!   blended with spatially local links (users befriend both hubs and
//!   geographic neighbors), yielding a heavy-tailed degree
//!   distribution with very large hubs and a small diameter.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Barabási–Albert preferential attachment: starts from a small
/// clique, every new vertex attaches to `m_attach` existing vertices
/// chosen proportionally to degree.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Csr {
    assert!(m_attach >= 1, "attachment count must be positive");
    assert!(n > m_attach, "need more vertices than attachments");
    let mut rng = SmallRng::seed_from_u64(seed);
    // `targets` holds one entry per edge endpoint; uniform sampling
    // from it is degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);
    let mut b = GraphBuilder::with_capacity(n, n * m_attach);
    // Seed clique over the first m_attach + 1 vertices.
    let seed_n = m_attach + 1;
    for u in 0..seed_n as u32 {
        for v in (u + 1)..seed_n as u32 {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for u in seed_n as u32..n as u32 {
        let mut picked = Vec::with_capacity(m_attach);
        while picked.len() < m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != u && !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            b.add_edge(u, t);
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Router-level internet topology analogue: sparse preferential
/// attachment (1–2 upstream links per new router) plus a fraction of
/// uniform peering links.
pub fn router_topology(n: usize, seed: u64) -> Csr {
    assert!(n >= 8);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut endpoints: Vec<VertexId> = Vec::new();
    let mut b = GraphBuilder::with_capacity(n, n * 3);
    // Small seed ring.
    for u in 0..4u32 {
        let v = (u + 1) % 4;
        b.add_edge(u, v);
        endpoints.push(u);
        endpoints.push(v);
    }
    for u in 4..n as u32 {
        // 1 or 2 preferential upstreams (expected ~1.5).
        let ups = if rng.gen::<f64>() < 0.5 { 1 } else { 2 };
        for _ in 0..ups {
            let mut t = endpoints[rng.gen_range(0..endpoints.len())];
            while t == u {
                t = endpoints[rng.gen_range(0..endpoints.len())];
            }
            b.add_edge(u, t);
            endpoints.push(u);
            endpoints.push(t);
        }
        // Occasional uniform peering link between random routers.
        if rng.gen::<f64>() < 0.35 {
            let a = rng.gen_range(0..=u);
            let c = rng.gen_range(0..=u);
            if a != c {
                b.add_edge(a, c);
                endpoints.push(a);
                endpoints.push(c);
            }
        }
    }
    b.build()
}

/// Geosocial network analogue (gowalla-like): vertices carry 2-D
/// positions; each new vertex splits its links between preferential
/// attachment (celebrity effect) and its nearest spatial bucket
/// (local friends).
pub fn geosocial(n: usize, avg_degree: f64, seed: u64) -> Csr {
    assert!(n >= 16);
    assert!(avg_degree >= 2.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let links_per_vertex = (avg_degree / 2.0).round() as usize;
    let buckets = ((n as f64).sqrt() as usize).clamp(4, 512);
    let mut bucket_members: Vec<Vec<VertexId>> = vec![Vec::new(); buckets];
    let mut endpoints: Vec<VertexId> = Vec::new();
    let mut b = GraphBuilder::with_capacity(n, n * links_per_vertex);

    // Seed path through the first few vertices scattered in buckets.
    for u in 0..8u32.min(n as u32) {
        let bu = rng.gen_range(0..buckets);
        bucket_members[bu].push(u);
        if u > 0 {
            b.add_edge(u - 1, u);
            endpoints.push(u - 1);
            endpoints.push(u);
        }
    }
    for u in 8..n as u32 {
        let bu = rng.gen_range(0..buckets);
        for _ in 0..links_per_vertex {
            let local = rng.gen::<f64>() < 0.5 && !bucket_members[bu].is_empty();
            let t = if local {
                bucket_members[bu][rng.gen_range(0..bucket_members[bu].len())]
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if t != u {
                b.add_edge(u, t);
                endpoints.push(u);
                endpoints.push(t);
            }
        }
        bucket_members[bu].push(u);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{degree_gini, GraphStats};

    #[test]
    fn ba_edge_count() {
        let g = barabasi_albert(500, 3, 1);
        // Seed clique C(4,2)=6 edges + 496*3 attachments (deduped, so <=).
        assert!(g.num_undirected_edges() <= 6 + 496 * 3);
        assert!(g.num_undirected_edges() >= 6 + 450 * 3);
    }

    #[test]
    fn ba_is_scale_free() {
        let g = barabasi_albert(4096, 4, 2);
        let s = GraphStats::compute_with_limit(&g, 0);
        assert!(
            s.max_degree > 80,
            "BA hubs should dominate, got {}",
            s.max_degree
        );
        assert!(degree_gini(&g) > 0.3);
        assert!(
            s.diameter <= 10,
            "BA diameter should be small, got {}",
            s.diameter
        );
        assert_eq!(s.components, 1);
    }

    #[test]
    fn router_topology_class() {
        let g = router_topology(8192, 3);
        let s = GraphStats::compute_with_limit(&g, 0);
        // caida-like: sparse (avg deg ~6 in the paper graph is 6.3;
        // ours ~3.7-4), skewed, small diameter.
        assert!(
            s.avg_degree > 2.5 && s.avg_degree < 8.0,
            "avg {}",
            s.avg_degree
        );
        assert!(s.max_degree as f64 > 15.0 * s.avg_degree);
        assert!(s.diameter <= 30);
        assert_eq!(s.components, 1);
    }

    #[test]
    fn geosocial_class() {
        let g = geosocial(8192, 10.0, 4);
        let s = GraphStats::compute_with_limit(&g, 0);
        assert!(
            s.avg_degree > 6.0 && s.avg_degree < 12.0,
            "avg {}",
            s.avg_degree
        );
        assert!(
            s.max_degree > 100,
            "geosocial hubs expected, got {}",
            s.max_degree
        );
        assert!(s.diameter <= 20);
        assert!(s.largest_component_frac > 0.99);
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(256, 3, 9), barabasi_albert(256, 3, 9));
        assert_eq!(router_topology(256, 9), router_topology(256, 9));
        assert_eq!(geosocial(256, 8.0, 9), geosocial(256, 8.0, 9));
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn ba_rejects_tiny_n() {
        let _ = barabasi_albert(3, 3, 0);
    }
}
