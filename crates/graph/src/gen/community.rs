//! Community-structured generators for the paper's web-crawl
//! (`cnr-2000`) and product co-purchasing (`com-amazon`) datasets.
//!
//! * [`web_copy_model`] — the Kleinberg/Kumar *copy model*: each new
//!   page copies a fraction of a random prototype's links. Produces
//!   power-law in-degrees with extreme hubs and the locally dense,
//!   globally shallow shape of web crawls.
//! * [`co_purchase`] — overlapping small communities (products bought
//!   together) stitched by a sparse global backbone; degree tail is
//!   bounded (amazon's max degree is only 549) and the diameter sits
//!   in the tens.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for [`co_purchase`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CommunityParams {
    /// Mean community size (communities are uniform in
    /// `[size/2, 3*size/2]`).
    pub mean_size: usize,
    /// Probability of each intra-community pair being connected.
    pub intra_p: f64,
    /// Number of inter-community bridge edges per community.
    pub bridges: usize,
}

impl Default for CommunityParams {
    fn default() -> Self {
        CommunityParams {
            mean_size: 12,
            intra_p: 0.35,
            bridges: 3,
        }
    }
}

/// Copy-model web graph: vertex `u` links to `out_links` targets; with
/// probability `copy_p` each target is copied from a random earlier
/// vertex's adjacency, otherwise chosen uniformly at random.
///
/// A small fraction of pages form *navigation tendrils* — linear
/// chains of pages reachable only sequentially (paginated archives,
/// calendars), which is what gives real crawls like `cnr-2000` a
/// diameter in the tens despite their dense hub core.
pub fn web_copy_model(n: usize, out_links: usize, copy_p: f64, seed: u64) -> Csr {
    assert!(n >= out_links + 2);
    assert!((0.0..=1.0).contains(&copy_p));
    let mut rng = SmallRng::seed_from_u64(seed);
    // Adjacency-so-far, used as the prototype pool.
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut b = GraphBuilder::with_capacity(n, n * out_links);
    // Seed: a small cycle so early prototypes have links.
    let seed_n = (out_links + 2).min(n);
    for u in 0..seed_n as u32 {
        let v = (u + 1) % seed_n as u32;
        b.add_edge(u, v);
        adj[u as usize].push(v);
        adj[v as usize].push(u);
    }
    // Tendril sizing: ~0.2% of pages start a chain whose length grows
    // slowly with n (the deepest archive on a bigger site is deeper).
    let chain_len = ((n as f64).log2() * 0.75).round().max(2.0) as u32;
    let mut u = seed_n as u32;
    while u < n as u32 {
        if rng.gen::<f64>() < 0.002 && u + chain_len < n as u32 {
            // A navigation tendril hanging off a random earlier page.
            let mut prev = rng.gen_range(0..u);
            for c in 0..chain_len {
                b.add_edge(prev, u + c);
                adj[prev as usize].push(u + c);
                adj[(u + c) as usize].push(prev);
                prev = u + c;
            }
            u += chain_len;
            continue;
        }
        let proto = rng.gen_range(0..u);
        for k in 0..out_links {
            let t = if rng.gen::<f64>() < copy_p && !adj[proto as usize].is_empty() {
                let pl = &adj[proto as usize];
                pl[k % pl.len()]
            } else {
                rng.gen_range(0..u)
            };
            if t != u {
                b.add_edge(u, t);
                adj[u as usize].push(t);
                adj[t as usize].push(u);
            }
        }
        u += 1;
    }
    b.build()
}

/// Product co-purchasing network: dense communities plus sparse
/// random bridges.
pub fn co_purchase(n: usize, params: CommunityParams, seed: u64) -> Csr {
    assert!(n >= params.mean_size * 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * 4);
    let mut community_starts: Vec<u32> = Vec::new();
    let mut start = 0usize;
    while start < n {
        let lo = (params.mean_size / 2).max(2);
        let hi = params.mean_size + params.mean_size / 2;
        let size = rng.gen_range(lo..=hi).min(n - start);
        community_starts.push(start as u32);
        // Intra-community Bernoulli edges, with a guaranteed spanning
        // path so each community is internally connected.
        for i in 0..size {
            if i + 1 < size {
                b.add_edge((start + i) as u32, (start + i + 1) as u32);
            }
            for j in (i + 2)..size {
                if rng.gen::<f64>() < params.intra_p {
                    b.add_edge((start + i) as u32, (start + j) as u32);
                }
            }
        }
        start += size;
    }
    // Bridges: each community connects to `bridges` random earlier
    // communities (preferentially recent, like related products).
    for (ci, &cs) in community_starts.iter().enumerate().skip(1) {
        for _ in 0..params.bridges {
            let other = rng.gen_range(0..ci);
            let os = community_starts[other];
            let oe = if other + 1 < community_starts.len() {
                community_starts[other + 1]
            } else {
                n as u32
            };
            let ce = if ci + 1 < community_starts.len() {
                community_starts[ci + 1]
            } else {
                n as u32
            };
            let a = rng.gen_range(cs..ce);
            let c = rng.gen_range(os..oe);
            b.add_edge(a, c);
        }
    }
    // Bestsellers: a few products are co-purchased across the whole
    // catalog, giving the bounded-but-heavy degree tail of
    // `com-amazon` (max degree 549 at n = 335k — roughly √n).
    let bestseller_links = ((n as f64).sqrt() * 0.9) as usize;
    for &cs in community_starts.iter() {
        if rng.gen::<f64>() < 0.02 {
            for _ in 0..bestseller_links {
                let other = rng.gen_range(0..n as u32);
                b.add_edge(cs, other);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{degree_gini, GraphStats};

    #[test]
    fn web_copy_model_class() {
        let g = web_copy_model(8192, 8, 0.7, 1);
        let s = GraphStats::compute_with_limit(&g, 0);
        assert!(
            s.max_degree > 150,
            "web hubs expected, got {}",
            s.max_degree
        );
        assert!(degree_gini(&g) > 0.3);
        assert!(s.diameter <= 30, "web diameter small, got {}", s.diameter);
        assert!(s.largest_component_frac > 0.99);
    }

    #[test]
    fn co_purchase_class() {
        let g = co_purchase(8192, CommunityParams::default(), 2);
        let s = GraphStats::compute_with_limit(&g, 0);
        // Bounded tail: bestsellers reach ~√n, nothing like the
        // 10%-of-n hubs of scale-free graphs.
        assert!(
            s.max_degree < 400,
            "co-purchase max degree bounded, got {}",
            s.max_degree
        );
        assert!(
            (s.max_degree as f64) < 0.05 * s.vertices as f64,
            "no giant hubs: {} of {}",
            s.max_degree,
            s.vertices
        );
        assert!(
            s.avg_degree > 3.0 && s.avg_degree < 10.0,
            "avg {}",
            s.avg_degree
        );
        // Moderate diameter (tens), larger than scale-free graphs of
        // the same size.
        assert!(s.diameter >= 8, "community diameter {}", s.diameter);
        assert_eq!(s.components, 1);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            web_copy_model(512, 6, 0.6, 5),
            web_copy_model(512, 6, 0.6, 5)
        );
        let p = CommunityParams::default();
        assert_eq!(co_purchase(512, p, 5), co_purchase(512, p, 5));
    }

    #[test]
    fn communities_are_connected() {
        let g = co_purchase(
            2048,
            CommunityParams {
                bridges: 2,
                ..Default::default()
            },
            9,
        );
        let s = GraphStats::compute(&g);
        assert_eq!(
            s.components, 1,
            "bridged communities must form one component"
        );
    }
}
