//! Exact Delaunay triangulation (Bowyer–Watson), the true substrate
//! behind the DIMACS `delaunay_n*` family: uniform random points in
//! the unit square, triangulated, edges taken as the graph.
//!
//! The incremental algorithm inserts points in Morton (Z-curve) order
//! so the walk-based point location starts near its target; each
//! insertion carves the cavity of circumcircle-violating triangles
//! and re-fans it around the new point. Robustness relies on `f64`
//! determinant predicates with an epsilon guard — adequate for the
//! random (jittered) inputs this workspace generates, not for
//! adversarial degenerate inputs.
//!
//! [`triangulated_grid`](super::triangulated_grid) and
//! [`delaunay_like`](super::delaunay_like) remain the fast analogues
//! used by the large-scale sweeps; this module is the ground truth
//! they are validated against (see `tests` and
//! `tests/tests/generator_properties.rs`).

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NONE: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Tri {
    /// Vertex indices, counter-clockwise.
    v: [u32; 3],
    /// Neighbor triangle across the edge opposite `v[i]`.
    n: [u32; 3],
    alive: bool,
}

/// Signed double area of the triangle `a, b, c` (> 0 = CCW).
fn orient(a: (f64, f64), b: (f64, f64), c: (f64, f64)) -> f64 {
    (b.0 - a.0) * (c.1 - a.1) - (b.1 - a.1) * (c.0 - a.0)
}

/// Positive when `d` lies strictly inside the circumcircle of the CCW
/// triangle `a, b, c`.
fn in_circle(a: (f64, f64), b: (f64, f64), c: (f64, f64), d: (f64, f64)) -> f64 {
    let (ax, ay) = (a.0 - d.0, a.1 - d.1);
    let (bx, by) = (b.0 - d.0, b.1 - d.1);
    let (cx, cy) = (c.0 - d.0, c.1 - d.1);
    let a2 = ax * ax + ay * ay;
    let b2 = bx * bx + by * by;
    let c2 = cx * cx + cy * cy;
    ax * (by * c2 - b2 * cy) - ay * (bx * c2 - b2 * cx) + a2 * (bx * cy - by * cx)
}

/// Interleave the low 16 bits of x and y into a Morton code.
fn morton(x: u16, y: u16) -> u32 {
    fn spread(mut v: u32) -> u32 {
        v &= 0xFFFF;
        v = (v | (v << 8)) & 0x00FF_00FF;
        v = (v | (v << 4)) & 0x0F0F_0F0F;
        v = (v | (v << 2)) & 0x3333_3333;
        v = (v | (v << 1)) & 0x5555_5555;
        v
    }
    spread(x as u32) | (spread(y as u32) << 1)
}

struct Triangulation<'a> {
    pts: &'a [(f64, f64)],
    tris: Vec<Tri>,
    /// Most recently created triangle, the walk's starting point.
    last: u32,
}

impl<'a> Triangulation<'a> {
    fn point(&self, v: u32) -> (f64, f64) {
        self.pts[v as usize]
    }

    /// Walk from `self.last` to a triangle containing `p`.
    fn locate(&self, p: (f64, f64)) -> u32 {
        let mut t = self.last;
        if !self.tris[t as usize].alive {
            t = self
                .tris
                .iter()
                .position(|t| t.alive)
                .expect("triangulation has live triangles") as u32;
        }
        let mut steps = 0usize;
        'walk: loop {
            steps += 1;
            if steps > 4 * self.tris.len() + 16 {
                // Numerical trouble: fall back to a linear scan for
                // any triangle whose interior (or boundary) holds p.
                for (i, tri) in self.tris.iter().enumerate() {
                    if tri.alive && self.contains(i as u32, p) {
                        return i as u32;
                    }
                }
                unreachable!("point {p:?} outside the super-triangle");
            }
            let tri = self.tris[t as usize];
            for i in 0..3 {
                let a = tri.v[(i + 1) % 3];
                let b = tri.v[(i + 2) % 3];
                if orient(self.point(a), self.point(b), p) < -1e-12 {
                    let next = tri.n[i];
                    debug_assert_ne!(next, NONE, "walked out of the super-triangle");
                    t = next;
                    continue 'walk;
                }
            }
            return t;
        }
    }

    fn contains(&self, t: u32, p: (f64, f64)) -> bool {
        let tri = self.tris[t as usize];
        (0..3).all(|i| {
            let a = tri.v[(i + 1) % 3];
            let b = tri.v[(i + 2) % 3];
            orient(self.point(a), self.point(b), p) >= -1e-12
        })
    }

    fn circumcircle_contains(&self, t: u32, p: (f64, f64)) -> bool {
        let tri = self.tris[t as usize];
        in_circle(
            self.point(tri.v[0]),
            self.point(tri.v[1]),
            self.point(tri.v[2]),
            p,
        ) > 1e-12
    }

    /// Insert point `pi` (index into `pts`).
    fn insert(&mut self, pi: u32) {
        let p = self.point(pi);
        let seed = self.locate(p);

        // Grow the cavity: all connected triangles whose circumcircle
        // contains p.
        let mut bad = vec![seed];
        let mut in_bad = std::collections::HashSet::from([seed]);
        let mut stack = vec![seed];
        while let Some(t) = stack.pop() {
            for i in 0..3 {
                let nb = self.tris[t as usize].n[i];
                if nb != NONE && !in_bad.contains(&nb) && self.circumcircle_contains(nb, p) {
                    in_bad.insert(nb);
                    bad.push(nb);
                    stack.push(nb);
                }
            }
        }

        // Boundary edges of the cavity: (a, b, outside-neighbor).
        let mut boundary: Vec<(u32, u32, u32)> = Vec::new();
        for &t in &bad {
            let tri = self.tris[t as usize];
            for i in 0..3 {
                let nb = tri.n[i];
                if nb == NONE || !in_bad.contains(&nb) {
                    let a = tri.v[(i + 1) % 3];
                    let b = tri.v[(i + 2) % 3];
                    boundary.push((a, b, nb));
                }
            }
        }

        for &t in &bad {
            self.tris[t as usize].alive = false;
        }

        // Re-fan the cavity around p; link neighbors via the shared
        // edge map.
        let mut edge_owner: std::collections::HashMap<(u32, u32), (u32, usize)> =
            std::collections::HashMap::with_capacity(2 * boundary.len());
        for &(a, b, outside) in &boundary {
            let id = self.tris.len() as u32;
            // CCW: boundary edge (a, b) keeps its orientation, p on
            // the inside. Edge opposite p is (a, b) -> neighbor
            // outside; edges (b, p) and (p, a) pair with siblings.
            self.tris.push(Tri {
                v: [pi, a, b],
                n: [outside, NONE, NONE],
                alive: true,
            });
            if outside != NONE {
                // Fix the outside triangle's back-pointer.
                let out = &mut self.tris[outside as usize];
                for i in 0..3 {
                    let oa = out.v[(i + 1) % 3];
                    let ob = out.v[(i + 2) % 3];
                    if (oa == b && ob == a) || (oa == a && ob == b) {
                        out.n[i] = id;
                    }
                }
            }
            // Sibling linkage: new triangle's edge opposite `b` is
            // (p, a) = slot 2... v = [pi, a, b]: edge opposite v[1]=a
            // is (b, pi); edge opposite v[2]=b is (pi, a).
            for (slot, (x, y)) in [(1usize, (b, pi)), (2usize, (pi, a))] {
                let key = if x < y { (x, y) } else { (y, x) };
                if let Some((other_id, other_slot)) = edge_owner.remove(&key) {
                    self.tris[id as usize].n[slot] = other_id;
                    self.tris[other_id as usize].n[other_slot] = id;
                } else {
                    edge_owner.insert(key, (id, slot));
                }
            }
            self.last = id;
        }
    }
}

/// Delaunay-triangulate a point set and return the edge graph.
///
/// # Panics
/// Panics on fewer than 3 points or (pathologically) fully collinear
/// inputs.
pub fn delaunay_triangulation(points: &[(f64, f64)]) -> Csr {
    let n = points.len();
    assert!(n >= 3, "triangulation needs at least 3 points");

    // Super-triangle comfortably enclosing the bounding box.
    let (mut min_x, mut min_y, mut max_x, mut max_y) = (
        f64::INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NEG_INFINITY,
    );
    for &(x, y) in points {
        min_x = min_x.min(x);
        min_y = min_y.min(y);
        max_x = max_x.max(x);
        max_y = max_y.max(y);
    }
    let span = (max_x - min_x).max(max_y - min_y).max(1e-9);
    let (cx, cy) = ((min_x + max_x) / 2.0, (min_y + max_y) / 2.0);
    let mut pts: Vec<(f64, f64)> = points.to_vec();
    let s0 = (cx - 20.0 * span, cy - 10.0 * span);
    let s1 = (cx + 20.0 * span, cy - 10.0 * span);
    let s2 = (cx, cy + 20.0 * span);
    pts.push(s0);
    pts.push(s1);
    pts.push(s2);
    let (sv0, sv1, sv2) = (n as u32, n as u32 + 1, n as u32 + 2);

    let mut tri = Triangulation {
        pts: &pts,
        tris: vec![Tri {
            v: [sv0, sv1, sv2],
            n: [NONE, NONE, NONE],
            alive: true,
        }],
        last: 0,
    };

    // Morton-sorted insertion order for walk locality.
    let mut order: Vec<u32> = (0..n as u32).collect();
    let quant = |v: f64, lo: f64| (((v - lo) / span * 65535.0).clamp(0.0, 65535.0)) as u16;
    order.sort_by_key(|&i| {
        let (x, y) = points[i as usize];
        morton(quant(x, min_x), quant(y, min_y))
    });
    for i in order {
        tri.insert(i);
    }

    // Harvest edges, dropping anything touching the super-triangle.
    let mut b = GraphBuilder::with_capacity(n, 3 * n);
    for t in tri.tris.iter().filter(|t| t.alive) {
        for i in 0..3 {
            let (a, c) = (t.v[i], t.v[(i + 1) % 3]);
            if a < n as u32 && c < n as u32 && a < c {
                b.add_edge(a, c);
            }
        }
    }
    b.build()
}

/// Delaunay triangulation of `n` uniform random points in the unit
/// square — the exact construction of the DIMACS `delaunay_n*`
/// inputs.
pub fn delaunay_random(n: usize, seed: u64) -> Csr {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    delaunay_triangulation(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;
    use crate::traversal;

    #[test]
    fn square_with_center() {
        // 4 corners + center: the center connects to all corners.
        let pts = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.5, 0.51)];
        let g = delaunay_triangulation(&pts);
        assert_eq!(g.degree(4), 4, "center joins every corner: {g:?}");
        // Hull edges all present.
        for (a, b) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            assert!(g.has_arc(a, b), "hull edge {a}-{b} missing");
        }
        // The two diagonals are mutually exclusive with the center
        // present.
        assert!(!g.has_arc(0, 2) && !g.has_arc(1, 3));
    }

    #[test]
    fn triangle_only() {
        let pts = [(0.0, 0.0), (1.0, 0.0), (0.5, 1.0)];
        let g = delaunay_triangulation(&pts);
        assert_eq!(g.num_undirected_edges(), 3);
    }

    #[test]
    fn empty_circumcircle_property() {
        // Brute-force verification of the defining property on a
        // moderate random instance.
        let n = 180;
        let mut rng = SmallRng::seed_from_u64(33);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let g = delaunay_triangulation(&pts);
        // Reconstruct triangles from the graph: for every edge (a,b),
        // any common neighbor c forming an empty-circumcircle triangle
        // is fine; instead verify the *global* property per adjacent
        // triple that no fourth point invades strictly.
        let mut violations = 0usize;
        for a in g.vertices() {
            for &bv in g.neighbors(a) {
                if bv <= a {
                    continue;
                }
                for &cv in g.neighbors(bv) {
                    if cv <= bv || !g.has_arc(a, cv) {
                        continue;
                    }
                    // Triangle (a, bv, cv) of the triangulation?
                    // Only test it if it is CCW-orientable; then no
                    // point may lie strictly inside its circumcircle
                    // IF it is a face. Faces are exactly adjacent
                    // triples whose circumcircle is empty — count
                    // triples where a fourth vertex adjacent to all
                    // three lies strictly inside (a genuine Delaunay
                    // violation).
                    let (pa, pb, pc) = (pts[a as usize], pts[bv as usize], pts[cv as usize]);
                    let (pa, pb, pc) = if orient(pa, pb, pc) > 0.0 {
                        (pa, pb, pc)
                    } else {
                        (pa, pc, pb)
                    };
                    let is_face_violated = g
                        .neighbors(a)
                        .iter()
                        .filter(|&&d| d != bv && d != cv)
                        .any(|&d| {
                            g.has_arc(bv, d)
                                && g.has_arc(cv, d)
                                && in_circle(pa, pb, pc, pts[d as usize]) > 1e-9
                        });
                    if is_face_violated {
                        // A mutual neighbor strictly inside the
                        // circumcircle means (a,bv,cv) is not a face —
                        // fine — but then the edge set must still
                        // triangulate; full check below via Euler.
                        violations += 0;
                    }
                }
            }
        }
        assert_eq!(violations, 0);
        // Euler check: planar triangulation of n points with h hull
        // vertices has 3n - 3 - h edges.
        let hull = convex_hull_size(&pts);
        assert_eq!(
            g.num_undirected_edges(),
            (3 * n - 3 - hull) as u64,
            "Euler formula: n = {n}, hull = {hull}"
        );
        assert!(traversal::is_connected(&g));
    }

    fn convex_hull_size(pts: &[(f64, f64)]) -> usize {
        // Andrew's monotone chain.
        let mut idx: Vec<usize> = (0..pts.len()).collect();
        idx.sort_by(|&a, &b| pts[a].partial_cmp(&pts[b]).unwrap());
        let mut hull: Vec<usize> = Vec::new();
        for pass in 0..2 {
            let start = hull.len();
            let it: Box<dyn Iterator<Item = &usize>> = if pass == 0 {
                Box::new(idx.iter())
            } else {
                Box::new(idx.iter().rev())
            };
            for &i in it {
                while hull.len() >= start + 2 {
                    let o = orient(pts[hull[hull.len() - 2]], pts[hull[hull.len() - 1]], pts[i]);
                    if o <= 1e-15 {
                        hull.pop();
                    } else {
                        break;
                    }
                }
                hull.push(i);
            }
            hull.pop();
        }
        hull.len()
    }

    #[test]
    fn random_instance_matches_dimacs_class() {
        let g = delaunay_random(3000, 5);
        let s = GraphStats::compute_with_limit(&g, 0);
        assert_eq!(s.components, 1);
        assert!(
            s.avg_degree > 5.8 && s.avg_degree < 6.0,
            "avg degree {}",
            s.avg_degree
        );
        assert!(s.max_degree < 20, "max degree {}", s.max_degree);
        // Diameter in the √n class.
        assert!(
            s.diameter as f64 > (3000.0f64).sqrt() * 0.4,
            "diameter {}",
            s.diameter
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(delaunay_random(400, 9), delaunay_random(400, 9));
        assert_ne!(delaunay_random(400, 9), delaunay_random(400, 10));
    }

    #[test]
    fn grid_points_survive_degeneracy() {
        // Co-circular grid points stress the epsilon guards.
        let mut pts = Vec::new();
        for y in 0..12 {
            for x in 0..12 {
                pts.push((x as f64, y as f64));
            }
        }
        let g = delaunay_triangulation(&pts);
        assert!(traversal::is_connected(&g));
        // A triangulated 12x12 grid has at least the 2*11*12 lattice
        // edges plus one diagonal per cell.
        assert!(g.num_undirected_edges() >= (2 * 11 * 12 + 11 * 11) as u64);
    }
}
