//! Road-network generator — the `luxembourg.osm` analogue.
//!
//! Real road networks are almost 1-dimensional: average degree ≈ 2.1,
//! maximum degree ≤ 6, and an enormous diameter (1,336 at n =
//! 114,599). We reproduce that class with a sparse junction grid
//! whose surviving edges are subdivided into long degree-2 chains:
//! junctions look like intersections, chains look like roads.

use crate::csr::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate a road-network-like graph with approximately `target_n`
/// vertices.
///
/// Construction: a `j × j` grid of junctions keeps each grid edge
/// with probability 0.8 (dead ends and missing links), then each kept
/// edge is subdivided into a chain whose length is chosen so the
/// total vertex count lands near `target_n`.
pub fn road_network(target_n: usize, seed: u64) -> Csr {
    assert!(target_n >= 64, "road networks need at least 64 vertices");
    let mut rng = SmallRng::seed_from_u64(seed);

    // Pick junction grid side j so the diameter lands in the road-
    // network class: diameter ≈ 2j · chain_len with chain_len ≈
    // n/(1.6 j²), so j ∝ √n. The constant is fitted to
    // luxembourg.osm (n = 114,599, diameter 1,336 → j ≈ 107).
    let j = ((0.317 * (target_n as f64).sqrt()).round() as usize).max(3);
    let keep_p = 0.8;

    // Enumerate kept grid edges first so we can budget chain lengths.
    let idx = |x: usize, y: usize| y * j + x;
    let mut grid_edges = Vec::new();
    for y in 0..j {
        for x in 0..j {
            if x + 1 < j && rng.gen::<f64>() < keep_p {
                grid_edges.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < j && rng.gen::<f64>() < keep_p {
                grid_edges.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }
    let junctions = j * j;
    let interior_budget = target_n.saturating_sub(junctions);
    let base_len = interior_budget / grid_edges.len().max(1);

    // Jittered chain lengths can exceed the nominal budget, so collect
    // raw edges and size the vertex set afterwards.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(interior_budget + grid_edges.len() * 2);
    let mut next = junctions as u32;
    for &(u, v) in &grid_edges {
        // Jitter each road's length by ±25%.
        let jitter = if base_len >= 4 {
            rng.gen_range(0..=base_len / 2) as isize - (base_len / 4) as isize
        } else {
            0
        };
        let len = (base_len as isize + jitter).max(0) as usize;
        let mut prev = u as u32;
        for _ in 0..len {
            edges.push((prev, next));
            prev = next;
            next += 1;
        }
        edges.push((prev, v as u32));
    }
    Csr::from_undirected_edges(next as usize, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn road_class_properties() {
        let g = road_network(20_000, 1);
        let s = GraphStats::compute_with_limit(&g, 0);
        // Vertex budget within 30%.
        assert!(
            (s.vertices as f64 - 20_000.0).abs() / 20_000.0 < 0.3,
            "vertex count {} too far from target",
            s.vertices
        );
        assert!(
            s.avg_degree > 1.7 && s.avg_degree < 2.6,
            "avg degree {}",
            s.avg_degree
        );
        assert!(
            s.max_degree <= 6,
            "road max degree {} exceeds 6",
            s.max_degree
        );
        // Massive diameter relative to log2(n) ≈ 14.
        assert!(
            s.diameter > 200,
            "road diameter should be huge, got {}",
            s.diameter
        );
        assert!(s.largest_component_frac > 0.85, "roads mostly connected");
    }

    #[test]
    fn deterministic() {
        assert_eq!(road_network(5_000, 7), road_network(5_000, 7));
        assert_ne!(road_network(5_000, 7), road_network(5_000, 8));
    }

    #[test]
    fn small_instance_works() {
        let g = road_network(64, 3);
        assert!(g.num_vertices() >= 9);
        assert!(g.num_undirected_edges() > 0);
    }
}
