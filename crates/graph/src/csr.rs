//! Compressed Sparse Row (CSR) graph storage.
//!
//! All algorithms in this workspace consume graphs in CSR form: an
//! `offsets` array of length `n + 1` and an `adj` array holding the
//! concatenated adjacency lists. Vertex and edge indices are `u32`
//! (the paper's largest instance has 44.6 M directed edges, far below
//! `u32::MAX`), which halves memory traffic relative to `usize`
//! indices — the dominant cost in graph traversal.

use std::fmt;

/// Vertex identifier. Dense, `0..n`.
pub type VertexId = u32;

/// Index into the adjacency (edge) array.
pub type EdgeId = u32;

/// An immutable graph in CSR form.
///
/// For undirected graphs every edge `{u, v}` is stored twice (as
/// `u -> v` and `v -> u`), mirroring how GPU BC implementations store
/// symmetric adjacency. [`Csr::num_undirected_edges`] reports the
/// logical (deduplicated) edge count used by the TEPS metric.
#[derive(Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<EdgeId>,
    adj: Vec<VertexId>,
    /// Number of logical undirected edges (half the directed count for
    /// symmetric graphs).
    undirected_edges: u64,
    /// Whether the adjacency structure is symmetric.
    symmetric: bool,
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Csr")
            .field("num_vertices", &self.num_vertices())
            .field("num_directed_edges", &self.num_directed_edges())
            .field("undirected_edges", &self.undirected_edges)
            .field("symmetric", &self.symmetric)
            .finish()
    }
}

impl Csr {
    /// Build a CSR directly from raw parts.
    ///
    /// # Panics
    /// Panics if the offsets array is malformed (non-monotone, wrong
    /// terminal value) or if any adjacency entry is out of range.
    pub fn from_raw_parts(offsets: Vec<EdgeId>, adj: Vec<VertexId>, symmetric: bool) -> Self {
        assert!(!offsets.is_empty(), "offsets must have length n + 1 >= 1");
        assert_eq!(
            *offsets.last().unwrap() as usize,
            adj.len(),
            "offsets must terminate at adj.len()"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        let n = (offsets.len() - 1) as u32;
        assert!(
            adj.iter().all(|&v| v < n),
            "adjacency entry out of range (n = {n})"
        );
        let undirected_edges = if symmetric {
            debug_assert_eq!(
                adj.len() % 2,
                0,
                "symmetric graph with odd directed edge count"
            );
            (adj.len() / 2) as u64
        } else {
            adj.len() as u64
        };
        Self {
            offsets,
            adj,
            undirected_edges,
            symmetric,
        }
    }

    /// Build an undirected CSR from an edge list.
    ///
    /// Self-loops are dropped and duplicate edges are collapsed; each
    /// surviving edge `{u, v}` is stored in both directions.
    pub fn from_undirected_edges(
        num_vertices: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Self {
        let mut dir: Vec<(VertexId, VertexId)> = Vec::new();
        for (u, v) in edges {
            assert!((u as usize) < num_vertices && (v as usize) < num_vertices);
            if u == v {
                continue;
            }
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            dir.push((a, b));
        }
        dir.sort_unstable();
        dir.dedup();
        let mut both = Vec::with_capacity(dir.len() * 2);
        for &(a, b) in &dir {
            both.push((a, b));
            both.push((b, a));
        }
        Self::from_directed_pairs(num_vertices, both, true)
    }

    /// Build a directed CSR from an arc list. Self-loops are dropped
    /// and duplicate arcs collapsed.
    pub fn from_directed_edges(
        num_vertices: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Self {
        let mut dir: Vec<(VertexId, VertexId)> = edges
            .into_iter()
            .inspect(|&(u, v)| assert!((u as usize) < num_vertices && (v as usize) < num_vertices))
            .filter(|&(u, v)| u != v)
            .collect();
        dir.sort_unstable();
        dir.dedup();
        Self::from_directed_pairs(num_vertices, dir, false)
    }

    fn from_directed_pairs(
        num_vertices: usize,
        mut pairs: Vec<(VertexId, VertexId)>,
        symmetric: bool,
    ) -> Self {
        pairs.sort_unstable();
        let mut offsets = vec![0u32; num_vertices + 1];
        for &(u, _) in &pairs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            offsets[i + 1] += offsets[i];
        }
        let adj: Vec<VertexId> = pairs.iter().map(|&(_, v)| v).collect();
        Self::from_raw_parts(offsets, adj, symmetric)
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed adjacency entries (2m for symmetric graphs).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.adj.len()
    }

    /// Number of logical undirected edges `m` (as used by TEPS).
    #[inline]
    pub fn num_undirected_edges(&self) -> u64 {
        self.undirected_edges
    }

    /// Whether the adjacency is symmetric (undirected).
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbors of `v` as a slice of the adjacency array.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Range of edge ids out of `v` (indices into [`Csr::adj_array`]).
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }

    /// The raw offsets array (`n + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[EdgeId] {
        &self.offsets
    }

    /// The raw adjacency array.
    #[inline]
    pub fn adj_array(&self) -> &[VertexId] {
        &self.adj
    }

    /// Iterate over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as u32
    }

    /// Iterate over all directed arcs `(source, target)`.
    pub fn arcs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// For each directed arc index `e`, the source vertex of that arc.
    ///
    /// Edge-parallel GPU kernels need this reverse map; building it
    /// once mirrors the `sources` array those kernels keep in device
    /// memory.
    pub fn arc_sources(&self) -> Vec<VertexId> {
        let mut src = vec![0u32; self.adj.len()];
        for u in self.vertices() {
            for e in self.edge_range(u) {
                src[e] = u;
            }
        }
        src
    }

    /// Maximum out-degree across all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> u32 {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Number of isolated (degree-zero) vertices.
    pub fn num_isolated(&self) -> usize {
        self.vertices().filter(|&v| self.degree(v) == 0).count()
    }

    /// True if an arc `u -> v` exists (binary search; adjacency lists
    /// are sorted by construction).
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Total bytes of the CSR arrays, as a device-memory footprint
    /// estimate for the GPU simulator.
    pub fn storage_bytes(&self) -> u64 {
        (self.offsets.len() * 4 + self.adj.len() * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 - 1
        // |   |
        // 2 - 3
        Csr::from_undirected_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_directed_edges(), 8);
        assert_eq!(g.num_undirected_edges(), 4);
        assert!(g.is_symmetric());
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = diamond();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[1, 2]);
        for (u, v) in g.arcs() {
            assert!(g.has_arc(v, u), "missing reverse arc {v}->{u}");
        }
    }

    #[test]
    fn self_loops_dropped() {
        let g = Csr::from_undirected_edges(3, [(0, 0), (0, 1), (1, 1), (1, 2)]);
        assert_eq!(g.num_undirected_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn duplicates_collapsed() {
        let g = Csr::from_undirected_edges(2, [(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_undirected_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn directed_graph() {
        let g = Csr::from_directed_edges(3, [(0, 1), (1, 2), (2, 0), (0, 1)]);
        assert_eq!(g.num_directed_edges(), 3);
        assert_eq!(g.num_undirected_edges(), 3);
        assert!(!g.is_symmetric());
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = Csr::from_undirected_edges(5, [(0, 1)]);
        assert_eq!(g.num_isolated(), 3);
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    fn arc_sources_inverts_offsets() {
        let g = diamond();
        let src = g.arc_sources();
        for (e, (u, _)) in g.arcs().enumerate() {
            assert_eq!(src[e], u);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_undirected_edges(0, []);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_directed_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn degree_and_max_degree() {
        let g = Csr::from_undirected_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_vertex_panics() {
        let _ = Csr::from_undirected_edges(2, [(0, 2)]);
    }

    #[test]
    fn storage_bytes_counts_arrays() {
        let g = diamond();
        assert_eq!(g.storage_bytes(), (5 * 4 + 8 * 4) as u64);
    }
}
