//! Compressed Sparse Row (CSR) graph storage.
//!
//! All algorithms in this workspace consume graphs in CSR form: an
//! `offsets` array of length `n + 1` and an `adj` array holding the
//! concatenated adjacency lists. Vertex and edge indices are `u32`
//! (the paper's largest instance has 44.6 M directed edges, far below
//! `u32::MAX`), which halves memory traffic relative to `usize`
//! indices — the dominant cost in graph traversal.

use std::fmt;

/// Vertex identifier. Dense, `0..n`.
pub type VertexId = u32;

/// Index into the adjacency (edge) array.
pub type EdgeId = u32;

/// Simulated width of the CSR index arrays.
///
/// The host always stores indices as `u32` (no in-memory graph here
/// exceeds `u32` range), but the *simulated device layout* may be
/// half- or full-width: the width scales every byte the cost models
/// charge for streaming `offsets`/`adj`, which is exactly the
/// "half-width traffic" win the paper's `u32` choice buys. Graphs
/// whose index space would overflow `u32` on a real device select
/// [`CsrIndex::U64`] automatically at load; everything else keeps
/// [`CsrIndex::U32`], and benches may force either width to measure
/// the traffic delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CsrIndex {
    /// 4-byte indices — the paper's layout (44.6 M directed edges max).
    #[default]
    U32,
    /// 8-byte indices for graphs beyond `u32` addressing.
    U64,
}

impl CsrIndex {
    /// Bytes per index under this width.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            CsrIndex::U32 => 4,
            CsrIndex::U64 => 8,
        }
    }

    /// CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            CsrIndex::U32 => "u32",
            CsrIndex::U64 => "u64",
        }
    }

    /// Deterministic width selection for a graph with `n` vertices and
    /// `arcs` directed adjacency entries: full width exactly when
    /// either index space would overflow `u32`.
    pub fn for_counts(n: usize, arcs: usize) -> Self {
        if n >= u32::MAX as usize || arcs >= u32::MAX as usize {
            CsrIndex::U64
        } else {
            CsrIndex::U32
        }
    }
}

/// An immutable graph in CSR form.
///
/// For undirected graphs every edge `{u, v}` is stored twice (as
/// `u -> v` and `v -> u`), mirroring how GPU BC implementations store
/// symmetric adjacency. [`Csr::num_undirected_edges`] reports the
/// logical (deduplicated) edge count used by the TEPS metric.
#[derive(Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<EdgeId>,
    adj: Vec<VertexId>,
    /// Number of logical undirected edges (half the directed count for
    /// symmetric graphs).
    undirected_edges: u64,
    /// Whether the adjacency structure is symmetric.
    symmetric: bool,
    /// Simulated device-layout index width (see [`CsrIndex`]).
    index: CsrIndex,
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Csr")
            .field("num_vertices", &self.num_vertices())
            .field("num_directed_edges", &self.num_directed_edges())
            .field("undirected_edges", &self.undirected_edges)
            .field("symmetric", &self.symmetric)
            .field("index", &self.index)
            .finish()
    }
}

impl Csr {
    /// Build a CSR directly from raw parts.
    ///
    /// # Panics
    /// Panics if the offsets array is malformed (non-monotone, wrong
    /// terminal value) or if any adjacency entry is out of range.
    pub fn from_raw_parts(offsets: Vec<EdgeId>, adj: Vec<VertexId>, symmetric: bool) -> Self {
        assert!(!offsets.is_empty(), "offsets must have length n + 1 >= 1");
        assert_eq!(
            *offsets.last().unwrap() as usize,
            adj.len(),
            "offsets must terminate at adj.len()"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        let n = (offsets.len() - 1) as u32;
        assert!(
            adj.iter().all(|&v| v < n),
            "adjacency entry out of range (n = {n})"
        );
        let undirected_edges = if symmetric {
            debug_assert_eq!(
                adj.len() % 2,
                0,
                "symmetric graph with odd directed edge count"
            );
            (adj.len() / 2) as u64
        } else {
            adj.len() as u64
        };
        let index = CsrIndex::for_counts(offsets.len() - 1, adj.len());
        Self {
            offsets,
            adj,
            undirected_edges,
            symmetric,
            index,
        }
    }

    /// Build an undirected CSR from an edge list.
    ///
    /// Self-loops are dropped and duplicate edges are collapsed; each
    /// surviving edge `{u, v}` is stored in both directions.
    pub fn from_undirected_edges(
        num_vertices: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Self {
        let mut dir: Vec<(VertexId, VertexId)> = Vec::new();
        for (u, v) in edges {
            assert!((u as usize) < num_vertices && (v as usize) < num_vertices);
            if u == v {
                continue;
            }
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            dir.push((a, b));
        }
        dir.sort_unstable();
        dir.dedup();
        let mut both = Vec::with_capacity(dir.len() * 2);
        for &(a, b) in &dir {
            both.push((a, b));
            both.push((b, a));
        }
        Self::from_directed_pairs(num_vertices, both, true)
    }

    /// Build an undirected CSR from an owned edge buffer **without
    /// intermediate copies**: the buffer is canonicalized, sorted, and
    /// deduplicated in place, and the symmetric adjacency is filled by
    /// a counting sort that never materializes the doubled arc list.
    ///
    /// Semantically identical to [`Csr::from_undirected_edges`]; the
    /// difference is peak footprint — beyond the consumed buffer, only
    /// the final `offsets`/`adj` arrays (plus one `n + 1` cursor) are
    /// allocated, which is what lets multi-million-edge loads fit.
    pub fn from_undirected_edges_in_place(
        num_vertices: usize,
        mut edges: Vec<(VertexId, VertexId)>,
    ) -> Self {
        let mut w = 0;
        for i in 0..edges.len() {
            let (u, v) = edges[i];
            assert!((u as usize) < num_vertices && (v as usize) < num_vertices);
            if u == v {
                continue;
            }
            edges[w] = if u < v { (u, v) } else { (v, u) };
            w += 1;
        }
        edges.truncate(w);
        edges.sort_unstable();
        edges.dedup();
        let mut offsets = vec![0u32; num_vertices + 1];
        for &(a, b) in &edges {
            offsets[a as usize + 1] += 1;
            offsets[b as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            offsets[i + 1] += offsets[i];
        }
        // One pass over the sorted unique edges fills each row in
        // ascending neighbor order: row `v` first receives the
        // sources of edges `(a, v)` with `a < v` (ascending in the
        // sorted order), then the targets of edges `(v, c)` with
        // `c > v` (also ascending).
        let mut cursor: Vec<u32> = offsets[..num_vertices].to_vec();
        let mut adj = vec![0u32; edges.len() * 2];
        for &(a, b) in &edges {
            adj[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            adj[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        drop(edges);
        Self::from_raw_parts(offsets, adj, true)
    }

    /// Build a directed CSR from an arc list. Self-loops are dropped
    /// and duplicate arcs collapsed.
    pub fn from_directed_edges(
        num_vertices: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Self {
        let mut dir: Vec<(VertexId, VertexId)> = edges
            .into_iter()
            .inspect(|&(u, v)| assert!((u as usize) < num_vertices && (v as usize) < num_vertices))
            .filter(|&(u, v)| u != v)
            .collect();
        dir.sort_unstable();
        dir.dedup();
        Self::from_directed_pairs(num_vertices, dir, false)
    }

    fn from_directed_pairs(
        num_vertices: usize,
        mut pairs: Vec<(VertexId, VertexId)>,
        symmetric: bool,
    ) -> Self {
        pairs.sort_unstable();
        let mut offsets = vec![0u32; num_vertices + 1];
        for &(u, _) in &pairs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            offsets[i + 1] += offsets[i];
        }
        let adj: Vec<VertexId> = pairs.iter().map(|&(_, v)| v).collect();
        Self::from_raw_parts(offsets, adj, symmetric)
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed adjacency entries (2m for symmetric graphs).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.adj.len()
    }

    /// Number of logical undirected edges `m` (as used by TEPS).
    #[inline]
    pub fn num_undirected_edges(&self) -> u64 {
        self.undirected_edges
    }

    /// Whether the adjacency is symmetric (undirected).
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbors of `v` as a slice of the adjacency array.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Range of edge ids out of `v` (indices into [`Csr::adj_array`]).
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }

    /// The raw offsets array (`n + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[EdgeId] {
        &self.offsets
    }

    /// The raw adjacency array.
    #[inline]
    pub fn adj_array(&self) -> &[VertexId] {
        &self.adj
    }

    /// Iterate over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as u32
    }

    /// Iterate over all directed arcs `(source, target)`.
    pub fn arcs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// For each directed arc index `e`, the source vertex of that arc.
    ///
    /// Edge-parallel GPU kernels need this reverse map; building it
    /// once mirrors the `sources` array those kernels keep in device
    /// memory.
    pub fn arc_sources(&self) -> Vec<VertexId> {
        let mut src = vec![0u32; self.adj.len()];
        for u in self.vertices() {
            for e in self.edge_range(u) {
                src[e] = u;
            }
        }
        src
    }

    /// Maximum out-degree across all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> u32 {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Number of isolated (degree-zero) vertices.
    pub fn num_isolated(&self) -> usize {
        self.vertices().filter(|&v| self.degree(v) == 0).count()
    }

    /// True if an arc `u -> v` exists (binary search; adjacency lists
    /// are sorted by construction).
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The simulated index width of this graph's device layout.
    #[inline]
    pub fn index_width(&self) -> CsrIndex {
        self.index
    }

    /// Bytes per index under the simulated layout — the multiplier
    /// the cost models apply to every streamed `offsets`/`adj` entry.
    #[inline]
    pub fn index_bytes(&self) -> u64 {
        self.index.bytes()
    }

    /// The same graph with an explicit simulated index width (benches
    /// force [`CsrIndex::U64`] to measure the wide-layout traffic; IO
    /// restores the width a binary file was written with).
    pub fn with_index_width(mut self, index: CsrIndex) -> Self {
        self.index = index;
        self
    }

    /// Total bytes of the CSR arrays under the simulated index width,
    /// as a device-memory footprint estimate for the GPU simulator.
    pub fn storage_bytes(&self) -> u64 {
        (self.offsets.len() + self.adj.len()) as u64 * self.index.bytes()
    }

    /// Device bytes of the resident slice for the vertex range
    /// `[lo, hi)`: its `hi - lo + 1` offsets plus the adjacency rows
    /// they bound, under the simulated index width.
    pub fn slice_bytes(&self, lo: VertexId, hi: VertexId) -> u64 {
        assert!(lo <= hi && (hi as usize) <= self.num_vertices());
        let rows = (self.offsets[hi as usize] - self.offsets[lo as usize]) as u64;
        (hi - lo + 1) as u64 * self.index.bytes() + rows * self.index.bytes()
    }

    /// Split the vertex space into the minimal number of contiguous
    /// ranges whose resident slices each fit `budget` bytes (greedy
    /// left-to-right, which is optimal for contiguous partitions).
    /// Returns `None` when some single vertex's row alone exceeds the
    /// budget — such a graph cannot be partitioned at this grain.
    pub fn vertex_slices(&self, budget: u64) -> Option<Vec<(VertexId, VertexId)>> {
        let n = self.num_vertices() as VertexId;
        if n == 0 {
            return Some(vec![]);
        }
        let mut slices = Vec::new();
        let mut lo = 0;
        let mut hi = 0;
        while hi < n {
            if self.slice_bytes(lo, hi + 1) <= budget {
                hi += 1;
            } else if hi == lo {
                return None;
            } else {
                slices.push((lo, hi));
                lo = hi;
            }
        }
        slices.push((lo, hi));
        Some(slices)
    }

    /// The same graph with the edge `{u, v}` inserted — both arcs for
    /// a symmetric graph, the single arc `u -> v` for a directed one.
    /// Inserting an edge that already exists returns the graph
    /// unchanged (the same idempotence the constructors' dedup gives).
    ///
    /// The rebuild splices the affected rows in one pass, so the
    /// adjacency stays sorted and every other row is byte-identical.
    /// The simulated index width is preserved: the new width is
    /// re-selected through [`CsrIndex::for_counts`] and then clamped
    /// up to the old one, so a forced or promoted [`CsrIndex::U64`]
    /// layout survives the edit.
    ///
    /// # Panics
    /// Panics on an out-of-range endpoint or a self-loop.
    pub fn with_edge_inserted(&self, u: VertexId, v: VertexId) -> Csr {
        self.check_edit_endpoints(u, v);
        if self.has_arc(u, v) {
            return self.clone();
        }
        let adds: &[(VertexId, VertexId)] = if self.symmetric {
            &[(u, v), (v, u)]
        } else {
            &[(u, v)]
        };
        self.rebuild_with_row_edits(adds, &[])
    }

    /// The same graph with the edge `{u, v}` removed — both arcs for a
    /// symmetric graph, the single arc `u -> v` for a directed one.
    /// Removing an absent edge returns the graph unchanged. Index
    /// width is preserved exactly as in [`Csr::with_edge_inserted`].
    ///
    /// # Panics
    /// Panics on an out-of-range endpoint or a self-loop.
    pub fn with_edge_removed(&self, u: VertexId, v: VertexId) -> Csr {
        self.check_edit_endpoints(u, v);
        if !self.has_arc(u, v) {
            return self.clone();
        }
        let removes: &[(VertexId, VertexId)] = if self.symmetric {
            &[(u, v), (v, u)]
        } else {
            &[(u, v)]
        };
        self.rebuild_with_row_edits(&[], removes)
    }

    fn check_edit_endpoints(&self, u: VertexId, v: VertexId) {
        let n = self.num_vertices();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge edit endpoint out of range (n = {n})"
        );
        assert_ne!(
            u, v,
            "self-loops are not representable (constructors drop them)"
        );
    }

    /// Rebuild with the given arcs spliced in/out of their rows. Both
    /// lists must be disjoint from / present in the adjacency
    /// respectively (the public wrappers guarantee it), with at most
    /// one edit per row.
    fn rebuild_with_row_edits(
        &self,
        add: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
    ) -> Csr {
        let n = self.num_vertices();
        let mut offsets: Vec<EdgeId> = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut adj: Vec<VertexId> = Vec::with_capacity(self.adj.len() + add.len() - remove.len());
        for x in 0..n as VertexId {
            let mut pending = add.iter().find(|&&(a, _)| a == x).map(|&(_, b)| b);
            for &nb in self.neighbors(x) {
                if remove.iter().any(|&(a, b)| a == x && b == nb) {
                    continue;
                }
                if let Some(p) = pending {
                    if p < nb {
                        adj.push(p);
                        pending = None;
                    }
                }
                adj.push(nb);
            }
            if let Some(p) = pending {
                adj.push(p);
            }
            offsets.push(adj.len() as EdgeId);
        }
        let mut out = Csr::from_raw_parts(offsets, adj, self.symmetric);
        // Width re-selection never narrows: a graph already simulated
        // (or forced) at u64 keeps the wide layout across edits.
        out.index = out.index.max(self.index);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 - 1
        // |   |
        // 2 - 3
        Csr::from_undirected_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_directed_edges(), 8);
        assert_eq!(g.num_undirected_edges(), 4);
        assert!(g.is_symmetric());
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = diamond();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[1, 2]);
        for (u, v) in g.arcs() {
            assert!(g.has_arc(v, u), "missing reverse arc {v}->{u}");
        }
    }

    #[test]
    fn self_loops_dropped() {
        let g = Csr::from_undirected_edges(3, [(0, 0), (0, 1), (1, 1), (1, 2)]);
        assert_eq!(g.num_undirected_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn duplicates_collapsed() {
        let g = Csr::from_undirected_edges(2, [(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_undirected_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn directed_graph() {
        let g = Csr::from_directed_edges(3, [(0, 1), (1, 2), (2, 0), (0, 1)]);
        assert_eq!(g.num_directed_edges(), 3);
        assert_eq!(g.num_undirected_edges(), 3);
        assert!(!g.is_symmetric());
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = Csr::from_undirected_edges(5, [(0, 1)]);
        assert_eq!(g.num_isolated(), 3);
        assert_eq!(g.degree(4), 0);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    fn arc_sources_inverts_offsets() {
        let g = diamond();
        let src = g.arc_sources();
        for (e, (u, _)) in g.arcs().enumerate() {
            assert_eq!(src[e], u);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_undirected_edges(0, []);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_directed_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn degree_and_max_degree() {
        let g = Csr::from_undirected_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_vertex_panics() {
        let _ = Csr::from_undirected_edges(2, [(0, 2)]);
    }

    #[test]
    fn storage_bytes_counts_arrays() {
        let g = diamond();
        assert_eq!(g.storage_bytes(), (5 * 4 + 8 * 4) as u64);
    }

    #[test]
    fn in_place_builder_matches_copying_builder() {
        // Same cleanup semantics: self-loops dropped, duplicates (in
        // either orientation) collapsed, rows sorted.
        let raw = vec![(3u32, 1u32), (1, 3), (0, 0), (2, 3), (0, 1), (1, 0), (3, 2)];
        let a = Csr::from_undirected_edges(4, raw.clone());
        let b = Csr::from_undirected_edges_in_place(4, raw);
        assert_eq!(a, b);
        assert_eq!(b.neighbors(3), &[1, 2]);
        let empty = Csr::from_undirected_edges_in_place(3, vec![]);
        assert_eq!(empty.num_directed_edges(), 0);
        assert_eq!(empty.num_vertices(), 3);
    }

    #[test]
    #[should_panic]
    fn in_place_builder_rejects_out_of_range() {
        let _ = Csr::from_undirected_edges_in_place(2, vec![(0, 2)]);
    }

    #[test]
    fn index_width_defaults_narrow_and_scales_storage() {
        let g = diamond();
        assert_eq!(g.index_width(), CsrIndex::U32);
        assert_eq!(g.index_bytes(), 4);
        let wide = g.clone().with_index_width(CsrIndex::U64);
        assert_eq!(wide.storage_bytes(), 2 * g.storage_bytes());
        // Width participates in equality: a wide layout is a distinct
        // simulated graph even over identical topology.
        assert_ne!(g, wide);
        assert_eq!(CsrIndex::for_counts(100, 100), CsrIndex::U32);
        assert_eq!(CsrIndex::for_counts(u32::MAX as usize, 1), CsrIndex::U64);
        assert_eq!(CsrIndex::for_counts(1, u32::MAX as usize), CsrIndex::U64);
    }

    #[test]
    fn vertex_slices_cover_and_respect_budget() {
        let g = diamond();
        // Whole graph in one slice under a huge budget.
        assert_eq!(g.vertex_slices(1 << 20), Some(vec![(0, 4)]));
        // Tight budget: several slices, contiguous cover, each within
        // budget, and slice bytes sum to more than storage (offsets
        // boundary entries are duplicated per slice).
        let budget = 6 * 4;
        let slices = g.vertex_slices(budget).expect("partitionable");
        assert!(slices.len() > 1);
        assert_eq!(slices.first().unwrap().0, 0);
        assert_eq!(slices.last().unwrap().1, 4);
        for w in slices.windows(2) {
            assert_eq!(w[0].1, w[1].0, "slices must tile the vertex space");
        }
        for &(lo, hi) in &slices {
            assert!(lo < hi);
            assert!(g.slice_bytes(lo, hi) <= budget);
        }
        // A budget below one row's bytes cannot be partitioned.
        assert_eq!(g.vertex_slices(4), None);
        // Empty graph: trivially zero slices.
        let empty = Csr::from_undirected_edges(0, []);
        assert_eq!(empty.vertex_slices(1), Some(vec![]));
    }

    #[test]
    fn edge_insert_matches_reconstruction() {
        let g = diamond();
        let edited = g.with_edge_inserted(0, 3);
        let rebuilt = Csr::from_undirected_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]);
        assert_eq!(edited, rebuilt);
        assert!(edited.has_arc(0, 3) && edited.has_arc(3, 0));
        assert_eq!(edited.num_undirected_edges(), 5);
        // Untouched rows are identical; edited rows stay sorted.
        assert_eq!(edited.neighbors(1), g.neighbors(1));
        assert!(edited.neighbors(0).windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn edge_remove_matches_reconstruction_and_inverts_insert() {
        let g = diamond();
        let removed = g.with_edge_removed(1, 3);
        assert_eq!(
            removed,
            Csr::from_undirected_edges(4, [(0, 1), (0, 2), (2, 3)])
        );
        assert_eq!(removed.num_undirected_edges(), 3);
        // Remove is the exact inverse of insert (bitwise CSR equality).
        assert_eq!(g.with_edge_inserted(0, 3).with_edge_removed(0, 3), g);
        assert_eq!(removed.with_edge_inserted(1, 3), g);
    }

    #[test]
    fn edge_edits_are_idempotent() {
        let g = diamond();
        assert_eq!(g.with_edge_inserted(0, 1), g);
        assert_eq!(g.with_edge_removed(0, 3), g);
    }

    #[test]
    fn edge_edits_preserve_forced_index_width() {
        let wide = diamond().with_index_width(CsrIndex::U64);
        assert_eq!(wide.with_edge_inserted(0, 3).index_width(), CsrIndex::U64);
        assert_eq!(wide.with_edge_removed(0, 1).index_width(), CsrIndex::U64);
        // A narrow graph stays narrow (for_counts still selects u32).
        assert_eq!(
            diamond().with_edge_inserted(0, 3).index_width(),
            CsrIndex::U32
        );
    }

    #[test]
    fn directed_edge_edits_touch_one_arc() {
        let g = Csr::from_directed_edges(3, [(0, 1), (1, 2)]);
        let e = g.with_edge_inserted(2, 0);
        assert!(e.has_arc(2, 0) && !e.has_arc(0, 2));
        assert_eq!(e.num_directed_edges(), 3);
        let r = e.with_edge_removed(2, 0);
        assert_eq!(r, g);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_insert_rejects_self_loop() {
        diamond().with_edge_inserted(2, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_insert_rejects_out_of_range() {
        diamond().with_edge_inserted(0, 9);
    }
}
