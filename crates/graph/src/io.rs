//! Graph file I/O.
//!
//! The paper's datasets ship in three formats; we implement readers
//! and writers for all of them so real downloads drop straight in:
//!
//! * **METIS / DIMACS-challenge `.graph`** — header `n m [fmt]`, then
//!   one whitespace-separated 1-indexed adjacency line per vertex.
//! * **Matrix Market** (`%%MatrixMarket matrix coordinate ...`) — the
//!   UFL sparse-matrix collection format (`af_shell9` et al.).
//! * **SNAP edge list** — `#`-commented lines of `u<TAB>v` pairs.
//!
//! Plus a compact little-endian binary CSR format for fast reloads.

use crate::csr::{Csr, CsrIndex};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Errors produced by the parsers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file contents.
    Parse {
        /// 1-based line of the offending input (0 = whole file).
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

fn perr(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Cap speculative `reserve` calls driven by header-claimed counts so
/// a malicious or corrupt header cannot force a giant allocation (or a
/// capacity-overflow panic) before any real data is seen. Buffers still
/// grow amortized past the cap when the file genuinely delivers.
const HEADER_RESERVE_CAP: usize = 1 << 22;

fn bounded_reserve(edges: &mut Vec<(u32, u32)>, claimed: u64) {
    edges.reserve(claimed.min(HEADER_RESERVE_CAP as u64) as usize);
}

/// Largest vertex count the CSR layout supports (ids are `u32`).
const MAX_VERTICES: u64 = u32::MAX as u64;

/// Read a METIS/DIMACS `.graph` file as an undirected graph.
pub fn read_metis(r: impl Read) -> Result<Csr, IoError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();
    // Header: first non-comment line.
    let (mut n, mut m) = (0usize, 0u64);
    let mut header_seen = false;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut vertex = 0u32;
    for (i, line) in &mut lines {
        let line = line?;
        let line_no = i + 1;
        let t = line.trim();
        if t.starts_with('%') || (t.is_empty() && !header_seen) {
            continue;
        }
        if !header_seen {
            let mut it = t.split_whitespace();
            n = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| perr(line_no, "missing vertex count"))?;
            m = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| perr(line_no, "missing edge count"))?;
            if n as u64 > MAX_VERTICES {
                return Err(perr(
                    line_no,
                    format!("vertex count {n} exceeds the u32 id space"),
                ));
            }
            if let Some(fmt) = it.next() {
                if !fmt.trim_start_matches('0').is_empty() {
                    return Err(perr(
                        line_no,
                        format!("unsupported METIS fmt field '{fmt}' (weights not supported)"),
                    ));
                }
            }
            bounded_reserve(&mut edges, m);
            header_seen = true;
            continue;
        }
        if vertex as usize >= n {
            if t.is_empty() {
                continue;
            }
            return Err(perr(line_no, "more adjacency lines than vertices"));
        }
        for tok in t.split_whitespace() {
            let w: u64 = tok
                .parse()
                .map_err(|_| perr(line_no, format!("bad vertex id '{tok}'")))?;
            if w == 0 || w > n as u64 {
                return Err(perr(line_no, format!("vertex id {w} out of range 1..={n}")));
            }
            edges.push((vertex, (w - 1) as u32));
        }
        vertex += 1;
    }
    if !header_seen {
        return Err(perr(0, "empty file"));
    }
    if (vertex as usize) < n {
        return Err(perr(
            0,
            format!("expected {n} adjacency lines, found {vertex}"),
        ));
    }
    let g = Csr::from_undirected_edges(n, edges);
    if g.num_undirected_edges() != m {
        // Tolerate mismatch (many published files count loosely) but
        // only within the dedup direction.
        if g.num_undirected_edges() > m {
            return Err(perr(
                0,
                format!(
                    "edge count mismatch: header {m}, found {}",
                    g.num_undirected_edges()
                ),
            ));
        }
    }
    Ok(g)
}

/// Write a graph in METIS/DIMACS `.graph` format.
pub fn write_metis(g: &Csr, w: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "{} {}", g.num_vertices(), g.num_undirected_edges())?;
    for u in g.vertices() {
        let mut first = true;
        for &v in g.neighbors(u) {
            if first {
                write!(out, "{}", v + 1)?;
                first = false;
            } else {
                write!(out, " {}", v + 1)?;
            }
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Read a Matrix Market coordinate file as an undirected graph
/// (pattern, real, or integer entries; values ignored).
pub fn read_matrix_market(r: impl Read) -> Result<Csr, IoError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();
    let (first_no, first) = lines
        .next()
        .ok_or_else(|| perr(0, "empty file"))
        .and_then(|(i, l)| Ok((i + 1, l?)))?;
    let header = first.to_ascii_lowercase();
    if !header.starts_with("%%matrixmarket matrix coordinate") {
        return Err(perr(first_no, "not a MatrixMarket coordinate file"));
    }
    let symmetric = header.contains("symmetric") || header.contains("skew");
    let mut dims: Option<(usize, usize, usize)> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (i, line) in lines {
        let line = line?;
        let line_no = i + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        if dims.is_none() {
            let rows: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| perr(line_no, "bad size line"))?;
            let cols: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| perr(line_no, "bad size line"))?;
            let nnz: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| perr(line_no, "bad size line"))?;
            if rows != cols {
                return Err(perr(line_no, "adjacency matrix must be square"));
            }
            if rows as u64 > MAX_VERTICES {
                return Err(perr(
                    line_no,
                    format!("matrix dimension {rows} exceeds the u32 id space"),
                ));
            }
            dims = Some((rows, cols, nnz));
            bounded_reserve(&mut edges, nnz as u64);
            continue;
        }
        let n = dims.unwrap().0;
        let u: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| perr(line_no, "bad entry"))?;
        let v: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| perr(line_no, "bad entry"))?;
        if u == 0 || v == 0 || u > n as u64 || v > n as u64 {
            return Err(perr(line_no, format!("index ({u},{v}) out of range")));
        }
        edges.push(((u - 1) as u32, (v - 1) as u32));
    }
    let (n, _, _) = dims.ok_or_else(|| perr(0, "missing size line"))?;
    let _ = symmetric; // both halves collapse in the undirected builder
    Ok(Csr::from_undirected_edges(n, edges))
}

/// Write a graph as a symmetric pattern Matrix Market file.
pub fn write_matrix_market(g: &Csr, w: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "%%MatrixMarket matrix coordinate pattern symmetric")?;
    writeln!(
        out,
        "{} {} {}",
        g.num_vertices(),
        g.num_vertices(),
        g.num_undirected_edges()
    )?;
    for (u, v) in g.arcs() {
        if u >= v {
            // lower triangle only, 1-indexed
            writeln!(out, "{} {}", u + 1, v + 1)?;
        }
    }
    out.flush()
}

/// Byte accounting of one streaming edge-list load, for the
/// peak-footprint regression test and the CLI's load diagnostics.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadReport {
    /// Raw (pre-dedup) edges parsed from the file.
    pub raw_edges: usize,
    /// Peak bytes of edge-proportional intermediate storage: the
    /// capacity of the single parse buffer that
    /// [`Csr::from_undirected_edges_in_place`] then consumes without
    /// copying. (The id-remap table is vertex-proportional and not
    /// counted here.)
    pub peak_intermediate_bytes: u64,
}

/// Read a SNAP-style edge list (`# comments`, `u v` per line,
/// arbitrary ids compacted to a dense range).
pub fn read_edge_list(r: impl Read) -> Result<Csr, IoError> {
    read_edge_list_reporting(r).map(|(g, _)| g)
}

/// [`read_edge_list`], also reporting the load's peak intermediate
/// footprint. The parse streams into exactly one edge buffer, which
/// the in-place CSR constructor consumes — no second edge-sized copy
/// ever exists, the prerequisite for loading graphs 10–100x larger.
pub fn read_edge_list_reporting(r: impl Read) -> Result<(Csr, LoadReport), IoError> {
    let reader = BufReader::new(r);
    let mut remap = std::collections::HashMap::<u64, u32>::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = i + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| perr(line_no, "bad edge line"))?;
        let v: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| perr(line_no, "bad edge line"))?;
        let id = |x: u64, remap: &mut std::collections::HashMap<u64, u32>| {
            let next = remap.len() as u32;
            *remap.entry(x).or_insert(next)
        };
        let (cu, cv) = (id(u, &mut remap), id(v, &mut remap));
        if remap.len() as u64 > MAX_VERTICES {
            return Err(perr(
                line_no,
                "more distinct vertex ids than the u32 id space",
            ));
        }
        edges.push((cu, cv));
    }
    let report = LoadReport {
        raw_edges: edges.len(),
        peak_intermediate_bytes: (edges.capacity() * std::mem::size_of::<(u32, u32)>()) as u64,
    };
    let n = remap.len();
    drop(remap);
    Ok((Csr::from_undirected_edges_in_place(n, edges), report))
}

/// Write a graph as a plain edge list (each undirected edge once).
pub fn write_edge_list(g: &Csr, w: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(
        out,
        "# Undirected graph: {} nodes, {} edges",
        g.num_vertices(),
        g.num_undirected_edges()
    )?;
    for (u, v) in g.arcs() {
        if u < v {
            writeln!(out, "{u}\t{v}")?;
        }
    }
    out.flush()
}

/// Version 1 of the binary format: no index-width byte (implies the
/// `u32` simulated layout). Still readable.
const BINARY_MAGIC_V1: &[u8; 8] = b"HBCCSR01";
/// Version 2 adds the simulated index width to the flags block so a
/// reload prices exactly like the original graph.
const BINARY_MAGIC: &[u8; 8] = b"HBCCSR02";

/// Write the compact binary CSR format (magic, n, adj-len, flags
/// block `[symmetric, index-width]`, offsets, adjacency; all
/// little-endian u32/u64).
pub fn write_binary(g: &Csr, w: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    out.write_all(BINARY_MAGIC)?;
    out.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    out.write_all(&(g.num_directed_edges() as u64).to_le_bytes())?;
    let width = match g.index_width() {
        CsrIndex::U32 => 0u8,
        CsrIndex::U64 => 1u8,
    };
    out.write_all(&[u8::from(g.is_symmetric()), width, 0, 0, 0, 0, 0, 0])?;
    for &o in g.offsets() {
        out.write_all(&o.to_le_bytes())?;
    }
    for &a in g.adj_array() {
        out.write_all(&a.to_le_bytes())?;
    }
    out.flush()
}

/// `read_exact` with truncation reported as a parse error naming the
/// section being read, instead of a bare `UnexpectedEof`.
fn read_section(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), IoError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            perr(0, format!("truncated file: {what}"))
        } else {
            IoError::Io(e)
        }
    })
}

/// Read the binary CSR format written by [`write_binary`] (either
/// `HBCCSR02` or the width-less `HBCCSR01`).
///
/// Every structural invariant the in-memory CSR relies on is checked
/// here — monotone offsets terminating at the adjacency length,
/// in-range neighbor ids, an even arc count for symmetric graphs —
/// so corrupt or truncated files come back as [`IoError`] values, and
/// header-claimed sizes never drive an allocation ahead of the bytes
/// that back them.
pub fn read_binary(mut r: impl Read) -> Result<Csr, IoError> {
    let mut magic = [0u8; 8];
    read_section(&mut r, &mut magic, "magic")?;
    let versioned = &magic == BINARY_MAGIC;
    if !versioned && &magic != BINARY_MAGIC_V1 {
        return Err(perr(0, "bad magic — not a hybrid-bc binary graph"));
    }
    let mut buf8 = [0u8; 8];
    read_section(&mut r, &mut buf8, "vertex count")?;
    let n64 = u64::from_le_bytes(buf8);
    read_section(&mut r, &mut buf8, "edge count")?;
    let dir64 = u64::from_le_bytes(buf8);
    if n64 > MAX_VERTICES {
        return Err(perr(
            0,
            format!("vertex count {n64} exceeds the u32 id space"),
        ));
    }
    if dir64 > u32::MAX as u64 {
        return Err(perr(
            0,
            format!("directed edge count {dir64} exceeds the u32 offset space"),
        ));
    }
    let (n, dir) = (n64 as usize, dir64 as usize);
    read_section(&mut r, &mut buf8, "flags block")?;
    let symmetric = buf8[0] != 0;
    let width = match (versioned, buf8[1]) {
        (false, _) | (true, 0) => CsrIndex::U32,
        (true, 1) => CsrIndex::U64,
        (true, w) => return Err(perr(0, format!("unknown index width tag {w}"))),
    };
    if symmetric && dir % 2 != 0 {
        return Err(perr(
            0,
            format!("symmetric graph with odd directed edge count {dir}"),
        ));
    }
    // Grow the buffers as bytes actually arrive rather than trusting
    // the header: a truncated or hostile file fails at its real length
    // instead of forcing an n-proportional allocation up front.
    let mut offsets = Vec::with_capacity((n + 1).min(HEADER_RESERVE_CAP));
    let mut buf4 = [0u8; 4];
    for i in 0..=n {
        read_section(&mut r, &mut buf4, "offsets array")?;
        let o = u32::from_le_bytes(buf4);
        if let Some(&prev) = offsets.last() {
            if o < prev {
                return Err(perr(
                    0,
                    format!("offsets not non-decreasing at vertex {i}: {prev} then {o}"),
                ));
            }
        } else if o != 0 {
            return Err(perr(0, format!("offsets must start at 0, found {o}")));
        }
        offsets.push(o);
    }
    let terminal = offsets.last().copied().unwrap_or(0);
    if terminal as usize != dir {
        return Err(perr(
            0,
            format!("offsets terminate at {terminal} but header claims {dir} directed edges"),
        ));
    }
    let mut adj = Vec::with_capacity(dir.min(HEADER_RESERVE_CAP));
    for _ in 0..dir {
        read_section(&mut r, &mut buf4, "adjacency array")?;
        let a = u32::from_le_bytes(buf4);
        if a as u64 >= n64 {
            return Err(perr(
                0,
                format!("adjacency entry {a} out of range for {n} vertices"),
            ));
        }
        adj.push(a);
    }
    Ok(Csr::from_raw_parts(offsets, adj, symmetric).with_index_width(width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn sample() -> Csr {
        gen::grid(4, 4)
    }

    #[test]
    fn metis_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let h = read_metis(buf.as_slice()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn metis_parses_comments_and_header() {
        let text = "% a comment\n3 2\n2 3\n1\n1\n";
        let g = read_metis(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_undirected_edges(), 2);
        assert!(g.has_arc(0, 1) && g.has_arc(0, 2));
    }

    #[test]
    fn metis_rejects_out_of_range() {
        let text = "2 1\n3\n1\n";
        assert!(matches!(
            read_metis(text.as_bytes()),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn metis_rejects_missing_lines() {
        let text = "3 1\n2\n";
        assert!(read_metis(text.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let h = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn matrix_market_rejects_garbage() {
        assert!(read_matrix_market("hello\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn edge_list_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(buf.as_slice()).unwrap();
        // Ids are remapped in first-seen order; structure is preserved.
        assert_eq!(g.num_vertices(), h.num_vertices());
        assert_eq!(g.num_undirected_edges(), h.num_undirected_edges());
    }

    #[test]
    fn edge_list_compacts_sparse_ids() {
        let text = "# comment\n1000000 2000000\n2000000 3000000\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_undirected_edges(), 2);
    }

    #[test]
    fn binary_round_trip() {
        let g = gen::kronecker(8, 8, 42);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let h = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn binary_round_trips_index_width() {
        let g = gen::grid(5, 5).with_index_width(CsrIndex::U64);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let h = read_binary(buf.as_slice()).unwrap();
        assert_eq!(h.index_width(), CsrIndex::U64);
        assert_eq!(g, h);
    }

    #[test]
    fn binary_reads_v1_files_as_narrow() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Rewrite the magic to the width-less v1 format; its flags
        // byte 1 was always zero, which is what our writer emits for
        // the default narrow width, so the payload is identical.
        buf[..8].copy_from_slice(b"HBCCSR01");
        let h = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, h);
        assert_eq!(h.index_width(), CsrIndex::U32);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTAGRPH00000000".to_vec();
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn binary_rejects_truncation_at_every_section() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Chopping the file anywhere must come back as a structured
        // error naming the missing section, never a panic.
        for cut in [0, 4, 8, 12, 16, 20, 24, 30, buf.len() - 3] {
            let err = read_binary(&buf[..cut]).unwrap_err();
            match err {
                IoError::Parse { message, .. } => {
                    assert!(message.contains("truncated"), "cut {cut}: {message}")
                }
                IoError::Io(e) => panic!("cut {cut}: expected Parse, got Io {e}"),
            }
        }
    }

    #[test]
    fn binary_rejects_oversized_header_counts() {
        // A header claiming u64::MAX vertices must fail fast without
        // attempting an n-proportional allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(BINARY_MAGIC);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&[0u8; 8]);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("id space"), "{err}");
    }

    #[test]
    fn binary_rejects_corrupt_offsets_and_adjacency() {
        let g = sample();
        let mut clean = Vec::new();
        write_binary(&g, &mut clean).unwrap();
        // Decreasing offsets: overwrite the second offset (the 32-byte
        // header ends at the offsets array) with a huge value so the
        // third is below it.
        let mut bad = clean.clone();
        bad[32 + 4..32 + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_binary(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("non-decreasing"), "{err}");
        // Out-of-range adjacency entry in the last 4 bytes.
        let mut bad = clean.clone();
        let last = bad.len() - 4;
        bad[last..].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_binary(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        // Terminal offset disagreeing with the header edge count.
        let mut bad = clean;
        bad[16..24].copy_from_slice(&(g.num_directed_edges() + 2).to_le_bytes());
        let err = read_binary(bad.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("truncated") || err.to_string().contains("terminate"),
            "{err}"
        );
    }

    #[test]
    fn text_headers_with_huge_counts_fail_structurally() {
        // METIS / MatrixMarket headers claiming absurd sizes must not
        // reserve absurd buffers or overflow; they parse the (small)
        // body and fail on the line-count / id-space checks instead.
        let metis = format!("{} 3\n1 2\n", u64::from(u32::MAX) + 5);
        assert!(matches!(
            read_metis(metis.as_bytes()),
            Err(IoError::Parse { .. })
        ));
        let metis_big_m = "3 18446744073709551615\n2 3\n1\n1\n";
        let g = read_metis(metis_big_m.as_bytes());
        // Edge-count mismatch against the header is tolerated downward
        // only; the huge claim itself must not have allocated.
        assert!(g.is_ok());
        let mtx = format!(
            "%%MatrixMarket matrix coordinate pattern symmetric\n{0} {0} 1\n1 1\n",
            u64::from(u32::MAX) + 5
        );
        assert!(matches!(
            read_matrix_market(mtx.as_bytes()),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn edge_list_streams_with_one_intermediate_buffer() {
        // The peak-footprint assertion behind the scaling work: the
        // loader's only edge-proportional intermediate is the single
        // parse buffer (amortized growth < 2x the raw edge bytes),
        // strictly below the old copy-then-build path, which held the
        // parse buffer AND a canonicalized copy simultaneously
        // (>= 2 x 8 bytes per raw edge).
        let g = gen::watts_strogatz(1024, 8, 0.05, 7);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (h, report) = read_edge_list_reporting(buf.as_slice()).unwrap();
        assert_eq!(g.num_vertices(), h.num_vertices());
        assert_eq!(g.num_undirected_edges(), h.num_undirected_edges());
        assert_eq!(report.raw_edges as u64, g.num_undirected_edges());
        let edge_bytes = 8 * report.raw_edges as u64;
        assert!(
            report.peak_intermediate_bytes < 2 * edge_bytes,
            "peak {} must stay under one amortized buffer ({} raw bytes)",
            report.peak_intermediate_bytes,
            edge_bytes
        );
    }
}
