//! Graph file I/O.
//!
//! The paper's datasets ship in three formats; we implement readers
//! and writers for all of them so real downloads drop straight in:
//!
//! * **METIS / DIMACS-challenge `.graph`** — header `n m [fmt]`, then
//!   one whitespace-separated 1-indexed adjacency line per vertex.
//! * **Matrix Market** (`%%MatrixMarket matrix coordinate ...`) — the
//!   UFL sparse-matrix collection format (`af_shell9` et al.).
//! * **SNAP edge list** — `#`-commented lines of `u<TAB>v` pairs.
//!
//! Plus a compact little-endian binary CSR format for fast reloads.

use crate::csr::{Csr, CsrIndex};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Errors produced by the parsers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file contents.
    Parse {
        /// 1-based line of the offending input (0 = whole file).
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

fn perr(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Read a METIS/DIMACS `.graph` file as an undirected graph.
pub fn read_metis(r: impl Read) -> Result<Csr, IoError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();
    // Header: first non-comment line.
    let (mut n, mut m) = (0usize, 0u64);
    let mut header_seen = false;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut vertex = 0u32;
    for (i, line) in &mut lines {
        let line = line?;
        let line_no = i + 1;
        let t = line.trim();
        if t.starts_with('%') || (t.is_empty() && !header_seen) {
            continue;
        }
        if !header_seen {
            let mut it = t.split_whitespace();
            n = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| perr(line_no, "missing vertex count"))?;
            m = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| perr(line_no, "missing edge count"))?;
            if let Some(fmt) = it.next() {
                if !fmt.trim_start_matches('0').is_empty() {
                    return Err(perr(
                        line_no,
                        format!("unsupported METIS fmt field '{fmt}' (weights not supported)"),
                    ));
                }
            }
            edges.reserve(m as usize);
            header_seen = true;
            continue;
        }
        if vertex as usize >= n {
            if t.is_empty() {
                continue;
            }
            return Err(perr(line_no, "more adjacency lines than vertices"));
        }
        for tok in t.split_whitespace() {
            let w: u64 = tok
                .parse()
                .map_err(|_| perr(line_no, format!("bad vertex id '{tok}'")))?;
            if w == 0 || w > n as u64 {
                return Err(perr(line_no, format!("vertex id {w} out of range 1..={n}")));
            }
            edges.push((vertex, (w - 1) as u32));
        }
        vertex += 1;
    }
    if !header_seen {
        return Err(perr(0, "empty file"));
    }
    if (vertex as usize) < n {
        return Err(perr(
            0,
            format!("expected {n} adjacency lines, found {vertex}"),
        ));
    }
    let g = Csr::from_undirected_edges(n, edges);
    if g.num_undirected_edges() != m {
        // Tolerate mismatch (many published files count loosely) but
        // only within the dedup direction.
        if g.num_undirected_edges() > m {
            return Err(perr(
                0,
                format!(
                    "edge count mismatch: header {m}, found {}",
                    g.num_undirected_edges()
                ),
            ));
        }
    }
    Ok(g)
}

/// Write a graph in METIS/DIMACS `.graph` format.
pub fn write_metis(g: &Csr, w: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "{} {}", g.num_vertices(), g.num_undirected_edges())?;
    for u in g.vertices() {
        let mut first = true;
        for &v in g.neighbors(u) {
            if first {
                write!(out, "{}", v + 1)?;
                first = false;
            } else {
                write!(out, " {}", v + 1)?;
            }
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Read a Matrix Market coordinate file as an undirected graph
/// (pattern, real, or integer entries; values ignored).
pub fn read_matrix_market(r: impl Read) -> Result<Csr, IoError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();
    let (first_no, first) = lines
        .next()
        .ok_or_else(|| perr(0, "empty file"))
        .and_then(|(i, l)| Ok((i + 1, l?)))?;
    let header = first.to_ascii_lowercase();
    if !header.starts_with("%%matrixmarket matrix coordinate") {
        return Err(perr(first_no, "not a MatrixMarket coordinate file"));
    }
    let symmetric = header.contains("symmetric") || header.contains("skew");
    let mut dims: Option<(usize, usize, usize)> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (i, line) in lines {
        let line = line?;
        let line_no = i + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        if dims.is_none() {
            let rows: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| perr(line_no, "bad size line"))?;
            let cols: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| perr(line_no, "bad size line"))?;
            let nnz: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| perr(line_no, "bad size line"))?;
            if rows != cols {
                return Err(perr(line_no, "adjacency matrix must be square"));
            }
            dims = Some((rows, cols, nnz));
            edges.reserve(nnz);
            continue;
        }
        let n = dims.unwrap().0;
        let u: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| perr(line_no, "bad entry"))?;
        let v: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| perr(line_no, "bad entry"))?;
        if u == 0 || v == 0 || u > n as u64 || v > n as u64 {
            return Err(perr(line_no, format!("index ({u},{v}) out of range")));
        }
        edges.push(((u - 1) as u32, (v - 1) as u32));
    }
    let (n, _, _) = dims.ok_or_else(|| perr(0, "missing size line"))?;
    let _ = symmetric; // both halves collapse in the undirected builder
    Ok(Csr::from_undirected_edges(n, edges))
}

/// Write a graph as a symmetric pattern Matrix Market file.
pub fn write_matrix_market(g: &Csr, w: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "%%MatrixMarket matrix coordinate pattern symmetric")?;
    writeln!(
        out,
        "{} {} {}",
        g.num_vertices(),
        g.num_vertices(),
        g.num_undirected_edges()
    )?;
    for (u, v) in g.arcs() {
        if u >= v {
            // lower triangle only, 1-indexed
            writeln!(out, "{} {}", u + 1, v + 1)?;
        }
    }
    out.flush()
}

/// Byte accounting of one streaming edge-list load, for the
/// peak-footprint regression test and the CLI's load diagnostics.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadReport {
    /// Raw (pre-dedup) edges parsed from the file.
    pub raw_edges: usize,
    /// Peak bytes of edge-proportional intermediate storage: the
    /// capacity of the single parse buffer that
    /// [`Csr::from_undirected_edges_in_place`] then consumes without
    /// copying. (The id-remap table is vertex-proportional and not
    /// counted here.)
    pub peak_intermediate_bytes: u64,
}

/// Read a SNAP-style edge list (`# comments`, `u v` per line,
/// arbitrary ids compacted to a dense range).
pub fn read_edge_list(r: impl Read) -> Result<Csr, IoError> {
    read_edge_list_reporting(r).map(|(g, _)| g)
}

/// [`read_edge_list`], also reporting the load's peak intermediate
/// footprint. The parse streams into exactly one edge buffer, which
/// the in-place CSR constructor consumes — no second edge-sized copy
/// ever exists, the prerequisite for loading graphs 10–100x larger.
pub fn read_edge_list_reporting(r: impl Read) -> Result<(Csr, LoadReport), IoError> {
    let reader = BufReader::new(r);
    let mut remap = std::collections::HashMap::<u64, u32>::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = i + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| perr(line_no, "bad edge line"))?;
        let v: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| perr(line_no, "bad edge line"))?;
        let id = |x: u64, remap: &mut std::collections::HashMap<u64, u32>| {
            let next = remap.len() as u32;
            *remap.entry(x).or_insert(next)
        };
        let (cu, cv) = (id(u, &mut remap), id(v, &mut remap));
        edges.push((cu, cv));
    }
    let report = LoadReport {
        raw_edges: edges.len(),
        peak_intermediate_bytes: (edges.capacity() * std::mem::size_of::<(u32, u32)>()) as u64,
    };
    let n = remap.len();
    drop(remap);
    Ok((Csr::from_undirected_edges_in_place(n, edges), report))
}

/// Write a graph as a plain edge list (each undirected edge once).
pub fn write_edge_list(g: &Csr, w: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(
        out,
        "# Undirected graph: {} nodes, {} edges",
        g.num_vertices(),
        g.num_undirected_edges()
    )?;
    for (u, v) in g.arcs() {
        if u < v {
            writeln!(out, "{u}\t{v}")?;
        }
    }
    out.flush()
}

/// Version 1 of the binary format: no index-width byte (implies the
/// `u32` simulated layout). Still readable.
const BINARY_MAGIC_V1: &[u8; 8] = b"HBCCSR01";
/// Version 2 adds the simulated index width to the flags block so a
/// reload prices exactly like the original graph.
const BINARY_MAGIC: &[u8; 8] = b"HBCCSR02";

/// Write the compact binary CSR format (magic, n, adj-len, flags
/// block `[symmetric, index-width]`, offsets, adjacency; all
/// little-endian u32/u64).
pub fn write_binary(g: &Csr, w: impl Write) -> io::Result<()> {
    let mut out = BufWriter::new(w);
    out.write_all(BINARY_MAGIC)?;
    out.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    out.write_all(&(g.num_directed_edges() as u64).to_le_bytes())?;
    let width = match g.index_width() {
        CsrIndex::U32 => 0u8,
        CsrIndex::U64 => 1u8,
    };
    out.write_all(&[u8::from(g.is_symmetric()), width, 0, 0, 0, 0, 0, 0])?;
    for &o in g.offsets() {
        out.write_all(&o.to_le_bytes())?;
    }
    for &a in g.adj_array() {
        out.write_all(&a.to_le_bytes())?;
    }
    out.flush()
}

/// Read the binary CSR format written by [`write_binary`] (either
/// `HBCCSR02` or the width-less `HBCCSR01`).
pub fn read_binary(mut r: impl Read) -> Result<Csr, IoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    let versioned = &magic == BINARY_MAGIC;
    if !versioned && &magic != BINARY_MAGIC_V1 {
        return Err(perr(0, "bad magic — not a hybrid-bc binary graph"));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let dir = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let symmetric = buf8[0] != 0;
    let width = match (versioned, buf8[1]) {
        (false, _) | (true, 0) => CsrIndex::U32,
        (true, 1) => CsrIndex::U64,
        (true, w) => return Err(perr(0, format!("unknown index width tag {w}"))),
    };
    let mut offsets = vec![0u32; n + 1];
    let mut buf4 = [0u8; 4];
    for o in offsets.iter_mut() {
        r.read_exact(&mut buf4)?;
        *o = u32::from_le_bytes(buf4);
    }
    let mut adj = vec![0u32; dir];
    for a in adj.iter_mut() {
        r.read_exact(&mut buf4)?;
        *a = u32::from_le_bytes(buf4);
    }
    Ok(Csr::from_raw_parts(offsets, adj, symmetric).with_index_width(width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn sample() -> Csr {
        gen::grid(4, 4)
    }

    #[test]
    fn metis_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let h = read_metis(buf.as_slice()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn metis_parses_comments_and_header() {
        let text = "% a comment\n3 2\n2 3\n1\n1\n";
        let g = read_metis(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_undirected_edges(), 2);
        assert!(g.has_arc(0, 1) && g.has_arc(0, 2));
    }

    #[test]
    fn metis_rejects_out_of_range() {
        let text = "2 1\n3\n1\n";
        assert!(matches!(
            read_metis(text.as_bytes()),
            Err(IoError::Parse { .. })
        ));
    }

    #[test]
    fn metis_rejects_missing_lines() {
        let text = "3 1\n2\n";
        assert!(read_metis(text.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let h = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn matrix_market_rejects_garbage() {
        assert!(read_matrix_market("hello\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn edge_list_round_trip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(buf.as_slice()).unwrap();
        // Ids are remapped in first-seen order; structure is preserved.
        assert_eq!(g.num_vertices(), h.num_vertices());
        assert_eq!(g.num_undirected_edges(), h.num_undirected_edges());
    }

    #[test]
    fn edge_list_compacts_sparse_ids() {
        let text = "# comment\n1000000 2000000\n2000000 3000000\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_undirected_edges(), 2);
    }

    #[test]
    fn binary_round_trip() {
        let g = gen::kronecker(8, 8, 42);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let h = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn binary_round_trips_index_width() {
        let g = gen::grid(5, 5).with_index_width(CsrIndex::U64);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let h = read_binary(buf.as_slice()).unwrap();
        assert_eq!(h.index_width(), CsrIndex::U64);
        assert_eq!(g, h);
    }

    #[test]
    fn binary_reads_v1_files_as_narrow() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Rewrite the magic to the width-less v1 format; its flags
        // byte 1 was always zero, which is what our writer emits for
        // the default narrow width, so the payload is identical.
        buf[..8].copy_from_slice(b"HBCCSR01");
        let h = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, h);
        assert_eq!(h.index_width(), CsrIndex::U32);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTAGRPH00000000".to_vec();
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn edge_list_streams_with_one_intermediate_buffer() {
        // The peak-footprint assertion behind the scaling work: the
        // loader's only edge-proportional intermediate is the single
        // parse buffer (amortized growth < 2x the raw edge bytes),
        // strictly below the old copy-then-build path, which held the
        // parse buffer AND a canonicalized copy simultaneously
        // (>= 2 x 8 bytes per raw edge).
        let g = gen::watts_strogatz(1024, 8, 0.05, 7);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (h, report) = read_edge_list_reporting(buf.as_slice()).unwrap();
        assert_eq!(g.num_vertices(), h.num_vertices());
        assert_eq!(g.num_undirected_edges(), h.num_undirected_edges());
        assert_eq!(report.raw_edges as u64, g.num_undirected_edges());
        let edge_bytes = 8 * report.raw_edges as u64;
        assert!(
            report.peak_intermediate_bytes < 2 * edge_bytes,
            "peak {} must stay under one amortized buffer ({} raw bytes)",
            report.peak_intermediate_bytes,
            edge_bytes
        );
    }
}
