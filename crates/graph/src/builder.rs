//! Edge-list accumulation and graph clean-up utilities.
//!
//! Generators and parsers produce raw edge lists; [`GraphBuilder`]
//! turns them into a clean CSR, optionally compacting vertex ids,
//! extracting the largest connected component, or permuting labels
//! (useful to destroy accidental locality that would flatter the
//! coalescing model).

use crate::csr::{Csr, VertexId};
use crate::traversal;

/// Accumulates undirected edges and finishes into a [`Csr`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Create a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        assert!(
            num_vertices <= u32::MAX as usize,
            "vertex ids must fit in u32"
        );
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Create a builder with pre-reserved edge capacity.
    pub fn with_capacity(num_vertices: usize, edges: usize) -> Self {
        let mut b = Self::new(num_vertices);
        b.edges.reserve(edges);
        b
    }

    /// Number of vertices the finished graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of (possibly duplicated) edges accumulated so far.
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add an undirected edge. Self-loops are silently ignored.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        debug_assert!((u as usize) < self.num_vertices && (v as usize) < self.num_vertices);
        if u != v {
            self.edges.push((u, v));
        }
    }

    /// Extend with many edges at once.
    pub fn extend(&mut self, edges: impl IntoIterator<Item = (VertexId, VertexId)>) {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
    }

    /// Finish into an undirected CSR (dedup + symmetrize).
    pub fn build(self) -> Csr {
        Csr::from_undirected_edges(self.num_vertices, self.edges)
    }
}

/// Relabel a graph with an explicit permutation: vertex `v` of the
/// input becomes vertex `perm[v]` of the output.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..n`.
pub fn relabel(g: &Csr, perm: &[VertexId]) -> Csr {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!((p as usize) < n && !seen[p as usize], "not a permutation");
        seen[p as usize] = true;
    }
    let edges = g
        .arcs()
        .filter(|&(u, v)| u < v)
        .map(|(u, v)| (perm[u as usize], perm[v as usize]));
    Csr::from_undirected_edges(n, edges)
}

/// Extract the largest connected component and relabel its vertices
/// densely (by BFS discovery order, which keeps some locality, like
/// most dataset preparation pipelines do).
///
/// Returns the component graph plus the mapping from new vertex id to
/// the original id.
pub fn largest_component(g: &Csr) -> (Csr, Vec<VertexId>) {
    let comps = traversal::connected_components(g);
    let n = g.num_vertices();
    if n == 0 {
        return (Csr::from_undirected_edges(0, []), Vec::new());
    }
    // Count component sizes and find the winner.
    let num_comps = comps.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let mut sizes = vec![0usize; num_comps];
    for &c in &comps {
        sizes[c as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| s)
        .map(|(c, _)| c as u32)
        .unwrap();

    let mut new_id = vec![u32::MAX; n];
    let mut to_old = Vec::with_capacity(sizes[best as usize]);
    for v in 0..n as u32 {
        if comps[v as usize] == best {
            new_id[v as usize] = to_old.len() as u32;
            to_old.push(v);
        }
    }
    let edges = g
        .arcs()
        .filter(|&(u, v)| u < v && comps[u as usize] == best && comps[v as usize] == best)
        .map(|(u, v)| (new_id[u as usize], new_id[v as usize]));
    (Csr::from_undirected_edges(to_old.len(), edges), to_old)
}

/// Compose two graphs into their disjoint union. Vertices of `b` are
/// shifted by `a.num_vertices()`. Useful for multi-component test
/// inputs (the paper's TEPS discussion hinges on isolated vertices and
/// component structure).
pub fn disjoint_union(a: &Csr, b: &Csr) -> Csr {
    let shift = a.num_vertices() as u32;
    let n = a.num_vertices() + b.num_vertices();
    let edges = a.arcs().filter(|&(u, v)| u < v).chain(
        b.arcs()
            .filter(|&(u, v)| u < v)
            .map(|(u, v)| (u + shift, v + shift)),
    );
    Csr::from_undirected_edges(n, edges)
}

/// Append `count` isolated vertices to a graph (Kronecker generators
/// naturally produce many; Table IV's TEPS adjustment depends on them).
pub fn with_isolated_vertices(g: &Csr, count: usize) -> Csr {
    let n = g.num_vertices() + count;
    Csr::from_undirected_edges(n, g.arcs().filter(|&(u, v)| u < v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_dedups_and_symmetrizes() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(2, 2); // dropped self-loop
        b.add_edge(2, 3);
        let g = b.build();
        assert_eq!(g.num_undirected_edges(), 2);
        assert!(g.has_arc(1, 0) && g.has_arc(0, 1));
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = Csr::from_undirected_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let perm = vec![3, 2, 1, 0];
        let h = relabel(&g, &perm);
        assert_eq!(h.num_undirected_edges(), 3);
        assert!(h.has_arc(3, 2) && h.has_arc(2, 1) && h.has_arc(1, 0));
        assert!(!h.has_arc(0, 3));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutation() {
        let g = Csr::from_undirected_edges(3, [(0, 1)]);
        let _ = relabel(&g, &[0, 0, 1]);
    }

    #[test]
    fn largest_component_picks_biggest() {
        // Component A: triangle {0,1,2}; component B: edge {3,4}; isolated 5.
        let g = Csr::from_undirected_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4)]);
        let (cc, to_old) = largest_component(&g);
        assert_eq!(cc.num_vertices(), 3);
        assert_eq!(cc.num_undirected_edges(), 3);
        let mut old: Vec<_> = to_old.to_vec();
        old.sort_unstable();
        assert_eq!(old, vec![0, 1, 2]);
    }

    #[test]
    fn largest_component_of_empty_graph() {
        let g = Csr::from_undirected_edges(0, []);
        let (cc, map) = largest_component(&g);
        assert_eq!(cc.num_vertices(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn disjoint_union_shifts_ids() {
        let a = Csr::from_undirected_edges(2, [(0, 1)]);
        let b = Csr::from_undirected_edges(3, [(0, 2)]);
        let u = disjoint_union(&a, &b);
        assert_eq!(u.num_vertices(), 5);
        assert_eq!(u.num_undirected_edges(), 2);
        assert!(u.has_arc(2, 4));
    }

    #[test]
    fn isolated_vertices_appended() {
        let g = Csr::from_undirected_edges(2, [(0, 1)]);
        let h = with_isolated_vertices(&g, 3);
        assert_eq!(h.num_vertices(), 5);
        assert_eq!(h.num_isolated(), 3);
        assert_eq!(h.num_undirected_edges(), 1);
    }
}
