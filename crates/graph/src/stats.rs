//! Whole-graph statistics: the quantities reported in the paper's
//! Table II (vertices, edges, max degree, diameter) plus structural
//! descriptors (degree distribution, component structure) used to
//! validate that generated graphs land in the right structural class.

use crate::csr::Csr;
use crate::traversal;
use serde::{Deserialize, Serialize};

/// Summary statistics for a graph, in the shape of the paper's
/// Table II rows.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices `n`.
    pub vertices: usize,
    /// Number of undirected edges `m`.
    pub edges: u64,
    /// Maximum vertex degree.
    pub max_degree: u32,
    /// Mean vertex degree (2m/n for undirected graphs).
    pub avg_degree: f64,
    /// Diameter (estimated by multi-sweep BFS for large graphs).
    pub diameter: u32,
    /// Whether the diameter is exact or a lower-bound estimate.
    pub diameter_exact: bool,
    /// Number of connected components.
    pub components: usize,
    /// Number of degree-zero vertices.
    pub isolated: usize,
    /// Fraction of vertices in the largest connected component.
    pub largest_component_frac: f64,
}

impl GraphStats {
    /// Compute statistics. Graphs with at most `exact_diameter_limit`
    /// vertices get an exact diameter; larger ones use a 6-sweep
    /// estimate (standard practice for dataset tables).
    pub fn compute(g: &Csr) -> Self {
        Self::compute_with_limit(g, 2048)
    }

    /// As [`GraphStats::compute`], with an explicit exact-diameter
    /// cutoff.
    pub fn compute_with_limit(g: &Csr, exact_diameter_limit: usize) -> Self {
        let n = g.num_vertices();
        let comps = traversal::connected_components(g);
        let num_comps = comps.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        let mut sizes = vec![0usize; num_comps];
        for &c in &comps {
            sizes[c as usize] += 1;
        }
        let largest = sizes.iter().copied().max().unwrap_or(0);
        let exact = n <= exact_diameter_limit;
        let diameter = if exact {
            traversal::exact_diameter(g)
        } else {
            traversal::diameter_estimate(g, 6)
        };
        GraphStats {
            vertices: n,
            edges: g.num_undirected_edges(),
            max_degree: g.max_degree(),
            avg_degree: if n == 0 {
                0.0
            } else {
                2.0 * g.num_undirected_edges() as f64 / n as f64
            },
            diameter,
            diameter_exact: exact,
            components: num_comps,
            isolated: g.num_isolated(),
            largest_component_frac: if n == 0 {
                0.0
            } else {
                largest as f64 / n as f64
            },
        }
    }
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() as usize + 1];
    for v in g.vertices() {
        hist[g.degree(v) as usize] += 1;
    }
    hist
}

/// Gini coefficient of the degree distribution: 0 for perfectly
/// uniform degrees, approaching 1 for extreme skew. Scale-free graphs
/// land well above meshes/roads; the hybrid methods exploit exactly
/// this difference, so tests pin generators to the right side of the
/// divide.
pub fn degree_gini(g: &Csr) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut degs: Vec<u64> = g.vertices().map(|v| g.degree(v) as u64).collect();
    degs.sort_unstable();
    let total: u64 = degs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // Gini = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n   with 1-based i.
    let weighted: u128 = degs
        .iter()
        .enumerate()
        .map(|(i, &d)| (i as u128 + 1) * d as u128)
        .sum();
    (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Fit the tail exponent of a power-law degree distribution via the
/// discrete maximum-likelihood estimator (Clauset–Shalizi–Newman's
/// continuous approximation), considering vertices of degree >=
/// `d_min`. Returns `None` when too few vertices qualify.
pub fn power_law_alpha(g: &Csr, d_min: u32) -> Option<f64> {
    let d_min = d_min.max(1);
    let xs: Vec<f64> = g
        .vertices()
        .map(|v| g.degree(v) as f64)
        .filter(|&d| d >= d_min as f64)
        .collect();
    if xs.len() < 16 {
        return None;
    }
    let s: f64 = xs.iter().map(|&x| (x / (d_min as f64 - 0.5)).ln()).sum();
    Some(1.0 + xs.len() as f64 / s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    #[test]
    fn stats_of_path() {
        let g = Csr::from_undirected_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.diameter, 4);
        assert!(s.diameter_exact);
        assert_eq!(s.components, 1);
        assert_eq!(s.isolated, 0);
        assert!((s.avg_degree - 1.6).abs() < 1e-12);
        assert!((s.largest_component_frac - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_with_isolated_vertices() {
        let g = Csr::from_undirected_edges(5, [(0, 1)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.components, 4);
        assert_eq!(s.isolated, 3);
        assert!((s.largest_component_frac - 0.4).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = Csr::from_undirected_edges(6, [(0, 1), (0, 2), (0, 3), (4, 5)]);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[3], 1); // the hub
        assert_eq!(h[1], 5);
    }

    #[test]
    fn gini_zero_for_regular_graph() {
        let cyc = Csr::from_undirected_edges(8, (0..8u32).map(|i| (i, (i + 1) % 8)));
        assert!(degree_gini(&cyc).abs() < 1e-12);
    }

    #[test]
    fn gini_large_for_star() {
        let star = Csr::from_undirected_edges(32, (1..32u32).map(|i| (0, i)));
        assert!(degree_gini(&star) > 0.4, "star should be highly skewed");
    }

    #[test]
    fn power_law_alpha_requires_samples() {
        let g = Csr::from_undirected_edges(4, [(0, 1), (1, 2)]);
        assert!(power_law_alpha(&g, 1).is_none());
    }

    #[test]
    fn empty_graph_stats() {
        let g = Csr::from_undirected_edges(0, []);
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.components, 0);
        assert_eq!(degree_gini(&g), 0.0);
    }
}
