//! Whole-graph statistics: the quantities reported in the paper's
//! Table II (vertices, edges, max degree, diameter) plus structural
//! descriptors (degree distribution, component structure) used to
//! validate that generated graphs land in the right structural class.

use crate::csr::Csr;
use crate::traversal;
use serde::{Deserialize, Serialize};

/// Summary statistics for a graph, in the shape of the paper's
/// Table II rows.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices `n`.
    pub vertices: usize,
    /// Number of undirected edges `m`.
    pub edges: u64,
    /// Maximum vertex degree.
    pub max_degree: u32,
    /// Mean vertex degree (2m/n for undirected graphs).
    pub avg_degree: f64,
    /// Diameter (estimated by multi-sweep BFS for large graphs).
    pub diameter: u32,
    /// Whether the diameter is exact or a lower-bound estimate.
    pub diameter_exact: bool,
    /// Number of connected components.
    pub components: usize,
    /// Number of degree-zero vertices.
    pub isolated: usize,
    /// Fraction of vertices in the largest connected component.
    pub largest_component_frac: f64,
}

impl GraphStats {
    /// Compute statistics. Graphs with at most `exact_diameter_limit`
    /// vertices get an exact diameter; larger ones use a 6-sweep
    /// estimate (standard practice for dataset tables).
    pub fn compute(g: &Csr) -> Self {
        Self::compute_with_limit(g, 2048)
    }

    /// As [`GraphStats::compute`], with an explicit exact-diameter
    /// cutoff.
    pub fn compute_with_limit(g: &Csr, exact_diameter_limit: usize) -> Self {
        let n = g.num_vertices();
        let comps = traversal::connected_components(g);
        let num_comps = comps.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        let mut sizes = vec![0usize; num_comps];
        for &c in &comps {
            sizes[c as usize] += 1;
        }
        let largest = sizes.iter().copied().max().unwrap_or(0);
        let exact = n <= exact_diameter_limit;
        let diameter = if exact {
            traversal::exact_diameter(g)
        } else {
            traversal::diameter_estimate(g, 6)
        };
        GraphStats {
            vertices: n,
            edges: g.num_undirected_edges(),
            max_degree: g.max_degree(),
            avg_degree: if n == 0 {
                0.0
            } else {
                2.0 * g.num_undirected_edges() as f64 / n as f64
            },
            diameter,
            diameter_exact: exact,
            components: num_comps,
            isolated: g.num_isolated(),
            largest_component_frac: if n == 0 {
                0.0
            } else {
                largest as f64 / n as f64
            },
        }
    }
}

/// Simulated cost per BFS level: every level of a search pays a fixed
/// launch/synchronization overhead on top of its edge work, so
/// high-diameter roots (road networks) cost far more than their edge
/// count suggests. Expressed in edge-work units.
const LEVEL_COST: f64 = 32.0;

/// Only the largest few components get eccentricity sweeps; smaller
/// ones fall back to the component-weight term, which dominates their
/// cost anyway. Bounds the probe at `ECC_SWEEP_COMPONENTS * sweeps`
/// BFS traversals however fragmented the graph is.
const ECC_SWEEP_COMPONENTS: usize = 8;

/// Deterministic per-root cost estimator for schedule seeding (LPT).
///
/// A Brandes search from root `r` touches exactly `r`'s connected
/// component — `n_c + m_c` units of work — and runs one level per BFS
/// depth, so its cost is estimated as the component weight plus
/// `LEVEL_COST` times a lower bound on `r`'s eccentricity. The
/// bounds come from multi-sweep BFS (the [`traversal::diameter_estimate`]
/// technique): every sweep from `s` gives `d(s, v) <= ecc(v)` for all
/// reached `v`, and restarting from the farthest vertex tightens the
/// bound where it matters (the periphery).
///
/// The estimate only ranks roots for load balancing — schedules merge
/// deterministically regardless — so a cheap lower bound is enough;
/// what matters is that construction is a pure function of the graph.
#[derive(Clone, Debug)]
pub struct RootCostEstimator {
    comp: Vec<u32>,
    comp_weight: Vec<f64>,
    ecc_lb: Vec<u32>,
}

impl RootCostEstimator {
    /// Probe `g` with `sweeps` BFS sweeps per major component.
    pub fn new(g: &Csr, sweeps: usize) -> Self {
        let n = g.num_vertices();
        let comp = traversal::connected_components(g);
        let num_comps = comp.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        // Accumulate component weights in u64 with checked adds and
        // convert to f64 once at the end: f64 `+=` would silently lose
        // units past 2^53, and a wrong weight only *mis-ranks* roots —
        // nothing downstream would ever catch it.
        let mut comp_units = vec![0u64; num_comps];
        let mut comp_min_vertex = vec![u32::MAX; num_comps];
        let mut comp_size = vec![0usize; num_comps];
        for v in g.vertices() {
            let c = comp[v as usize] as usize;
            // Component weight = vertices + degree sum (2m_c): the
            // O(n_c + m_c) work of one search over the component.
            comp_units[c] = comp_units[c]
                .checked_add(1 + g.degree(v) as u64)
                .expect("component weight overflows u64");
            comp_min_vertex[c] = comp_min_vertex[c].min(v);
            comp_size[c] += 1;
        }
        let comp_weight: Vec<f64> = comp_units
            .iter()
            .map(|&w| {
                debug_assert!(w <= 1u64 << 53, "component weight not exact in f64");
                w as f64
            })
            .collect();

        let mut ecc_lb = vec![0u32; n];
        let mut major: Vec<usize> = (0..num_comps).filter(|&c| comp_size[c] >= 2).collect();
        major.sort_by_key(|&c| (std::cmp::Reverse(comp_size[c]), c));
        for &c in major.iter().take(ECC_SWEEP_COMPONENTS) {
            let mut start = comp_min_vertex[c];
            for _ in 0..sweeps.max(1) {
                let dist = traversal::bfs_distances(g, start);
                let mut farthest = start;
                for v in g.vertices() {
                    let d = dist[v as usize];
                    if d == traversal::UNREACHED {
                        continue;
                    }
                    ecc_lb[v as usize] = ecc_lb[v as usize].max(d);
                    if d > dist[farthest as usize] {
                        farthest = v;
                    }
                }
                if farthest == start {
                    break; // the sweep converged (e.g. a clique)
                }
                start = farthest;
            }
        }
        RootCostEstimator {
            comp,
            comp_weight,
            ecc_lb,
        }
    }

    /// Estimated cost of a full search from `root`, in edge-work
    /// units. Deterministic; roots in the same component differ only
    /// by their eccentricity bounds.
    pub fn estimate(&self, root: u32) -> f64 {
        let c = self.comp[root as usize] as usize;
        self.comp_weight[c] + LEVEL_COST * self.ecc_lb[root as usize] as f64
    }
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() as usize + 1];
    for v in g.vertices() {
        hist[g.degree(v) as usize] += 1;
    }
    hist
}

/// Gini coefficient of the degree distribution: 0 for perfectly
/// uniform degrees, approaching 1 for extreme skew. Scale-free graphs
/// land well above meshes/roads; the hybrid methods exploit exactly
/// this difference, so tests pin generators to the right side of the
/// divide.
pub fn degree_gini(g: &Csr) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut degs: Vec<u64> = g.vertices().map(|v| g.degree(v) as u64).collect();
    degs.sort_unstable();
    let total: u64 = degs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // Gini = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n   with 1-based i.
    let weighted: u128 = degs
        .iter()
        .enumerate()
        .map(|(i, &d)| (i as u128 + 1) * d as u128)
        .sum();
    (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Total gather transactions implied by one full sweep of every
/// adjacency row: for each vertex, the number of *distinct* memory
/// lines of `ids_per_line` consecutive vertex ids its (sorted)
/// neighbor list touches when a warp gathers a neighbor-indexed array
/// (`d`/`σ` in the forward kernels).
///
/// Unlike raw adjacency bytes, this quantity is **label-sensitive**:
/// degree-descending relabeling packs hub ids into a dense prefix, so
/// neighbor lists concentrate onto fewer lines and the count drops on
/// scale-free graphs — the coalescing win `bench_scale` asserts.
pub fn gather_lines(g: &Csr, ids_per_line: u32) -> u64 {
    assert!(ids_per_line > 0);
    let mut lines = 0u64;
    for v in g.vertices() {
        let mut last = u32::MAX;
        for &u in g.neighbors(v) {
            let line = u / ids_per_line;
            if line != last {
                lines += 1;
                last = line;
            }
        }
    }
    lines
}

/// Fit the tail exponent of a power-law degree distribution via the
/// discrete maximum-likelihood estimator (Clauset–Shalizi–Newman's
/// continuous approximation), considering vertices of degree >=
/// `d_min`. Returns `None` when too few vertices qualify.
pub fn power_law_alpha(g: &Csr, d_min: u32) -> Option<f64> {
    let d_min = d_min.max(1);
    let xs: Vec<f64> = g
        .vertices()
        .map(|v| g.degree(v) as f64)
        .filter(|&d| d >= d_min as f64)
        .collect();
    if xs.len() < 16 {
        return None;
    }
    let s: f64 = xs.iter().map(|&x| (x / (d_min as f64 - 0.5)).ln()).sum();
    Some(1.0 + xs.len() as f64 / s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    #[test]
    fn stats_of_path() {
        let g = Csr::from_undirected_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.diameter, 4);
        assert!(s.diameter_exact);
        assert_eq!(s.components, 1);
        assert_eq!(s.isolated, 0);
        assert!((s.avg_degree - 1.6).abs() < 1e-12);
        assert!((s.largest_component_frac - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_with_isolated_vertices() {
        let g = Csr::from_undirected_edges(5, [(0, 1)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.components, 4);
        assert_eq!(s.isolated, 3);
        assert!((s.largest_component_frac - 0.4).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = Csr::from_undirected_edges(6, [(0, 1), (0, 2), (0, 3), (4, 5)]);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[3], 1); // the hub
        assert_eq!(h[1], 5);
    }

    #[test]
    fn gini_zero_for_regular_graph() {
        let cyc = Csr::from_undirected_edges(8, (0..8u32).map(|i| (i, (i + 1) % 8)));
        assert!(degree_gini(&cyc).abs() < 1e-12);
    }

    #[test]
    fn gini_large_for_star() {
        let star = Csr::from_undirected_edges(32, (1..32u32).map(|i| (0, i)));
        assert!(degree_gini(&star) > 0.4, "star should be highly skewed");
    }

    #[test]
    fn power_law_alpha_requires_samples() {
        let g = Csr::from_undirected_edges(4, [(0, 1), (1, 2)]);
        assert!(power_law_alpha(&g, 1).is_none());
    }

    #[test]
    fn cost_estimator_ranks_deep_roots_above_shallow_ones() {
        // A long path and a star of the same vertex count: path roots
        // pay ~n levels, star roots pay ~2 — the estimator must rank
        // every path root above every star root.
        let mut edges: Vec<(u32, u32)> = (0..63u32).map(|v| (v, v + 1)).collect();
        edges.extend((65..128u32).map(|v| (64, v)));
        let g = Csr::from_undirected_edges(128, edges);
        let est = RootCostEstimator::new(&g, 2);
        let path_min = (0..64u32).map(|r| est.estimate(r)).fold(f64::MAX, f64::min);
        let star_max = (64..128u32).map(|r| est.estimate(r)).fold(0.0, f64::max);
        assert!(
            path_min > star_max,
            "path roots ({path_min}) must outrank star roots ({star_max})"
        );
        // Same component => same weight term; construction is pure.
        let again = RootCostEstimator::new(&g, 2);
        for r in 0..128u32 {
            assert_eq!(est.estimate(r).to_bits(), again.estimate(r).to_bits());
        }
    }

    #[test]
    fn cost_estimator_handles_isolated_and_tiny_components() {
        let g = Csr::from_undirected_edges(6, [(0, 1)]);
        let est = RootCostEstimator::new(&g, 3);
        assert!(
            est.estimate(0) > est.estimate(2),
            "an edge outweighs an isolate"
        );
        assert_eq!(est.estimate(2), 1.0, "an isolated root costs its own visit");
        let empty = RootCostEstimator::new(&Csr::from_undirected_edges(0, []), 2);
        drop(empty);
    }

    #[test]
    fn gather_lines_counts_distinct_lines_per_row() {
        // Star center row = [1..32): with 8 ids per line that spans
        // lines 0..4 → 4 lines (+1 for each leaf's single-entry row).
        let star = Csr::from_undirected_edges(32, (1..32u32).map(|i| (0, i)));
        assert_eq!(gather_lines(&star, 8), 4 + 31);
        // One id per line degenerates to the directed edge count.
        assert_eq!(gather_lines(&star, 1), star.num_directed_edges() as u64);
        // Degree-descending relabeling concentrates a scale-free
        // graph's gathers onto fewer lines.
        let g = crate::gen::barabasi_albert(2000, 4, 9);
        let r = crate::relabel::apply(&g, crate::relabel::Relabeling::DegreeDesc);
        assert!(
            gather_lines(&r.graph, 8) < gather_lines(&g, 8),
            "relabeling must reduce gather lines on scale-free graphs"
        );
    }

    #[test]
    fn empty_graph_stats() {
        let g = Csr::from_undirected_edges(0, []);
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.components, 0);
        assert_eq!(degree_gini(&g), 0.0);
    }
}
