//! Sequential breadth-first traversal utilities.
//!
//! These are the host-side reference traversals: connected components,
//! BFS distance maps, eccentricity, and frontier traces. The GPU
//! methods in `bc-core` re-implement traversal against the simulator;
//! everything here is plain host code used for statistics, tests, and
//! ground truth.

use crate::csr::{Csr, VertexId};
use std::collections::VecDeque;

/// Distance value used for unreached vertices.
pub const UNREACHED: u32 = u32::MAX;

/// BFS distance from `source` to every vertex (`UNREACHED` where no
/// path exists).
pub fn bfs_distances(g: &Csr, source: VertexId) -> Vec<u32> {
    let mut dist = vec![UNREACHED; g.num_vertices()];
    let mut q = VecDeque::new();
    dist[source as usize] = 0;
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHED {
                dist[v as usize] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// The maximum finite BFS distance from `source` (its eccentricity
/// within its component). Returns 0 for an isolated source.
pub fn eccentricity(g: &Csr, source: VertexId) -> u32 {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != UNREACHED)
        .max()
        .unwrap_or(0)
}

/// Sizes of each BFS level starting from `source`; element `i` is the
/// number of vertices at distance `i`. This is the *vertex frontier*
/// trace of Figure 3.
pub fn frontier_sizes(g: &Csr, source: VertexId) -> Vec<usize> {
    let dist = bfs_distances(g, source);
    let max = dist
        .iter()
        .copied()
        .filter(|&d| d != UNREACHED)
        .max()
        .unwrap_or(0);
    let mut sizes = vec![0usize; max as usize + 1];
    for &d in &dist {
        if d != UNREACHED {
            sizes[d as usize] += 1;
        }
    }
    sizes
}

/// For each BFS level, the number of directed edges leaving that
/// level's vertices (the *edge frontier* of Table I).
pub fn edge_frontier_sizes(g: &Csr, source: VertexId) -> Vec<u64> {
    let dist = bfs_distances(g, source);
    let max = dist
        .iter()
        .copied()
        .filter(|&d| d != UNREACHED)
        .max()
        .unwrap_or(0);
    let mut sizes = vec![0u64; max as usize + 1];
    for v in g.vertices() {
        let d = dist[v as usize];
        if d != UNREACHED {
            sizes[d as usize] += g.degree(v) as u64;
        }
    }
    sizes
}

/// Label every vertex with a connected-component id (0-based, in order
/// of discovery). Requires a symmetric graph for meaningful results.
pub fn connected_components(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut q = VecDeque::new();
    for s in 0..n as u32 {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = next;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = next;
                    q.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of connected components.
pub fn num_components(g: &Csr) -> usize {
    connected_components(g)
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0)
}

/// Is the graph connected? (Empty graphs count as connected.)
pub fn is_connected(g: &Csr) -> bool {
    num_components(g) <= 1
}

/// Exact diameter by running a BFS from every vertex. O(nm): only for
/// small graphs and tests.
pub fn exact_diameter(g: &Csr) -> u32 {
    g.vertices().map(|v| eccentricity(g, v)).max().unwrap_or(0)
}

/// Diameter estimate via the double-sweep / multi-sweep heuristic:
/// run a few rounds of "BFS to the farthest vertex found so far" from
/// pseudo-random starts. Lower bound on the true diameter, usually
/// tight on real networks; this is how dataset tables (like the
/// paper's Table II) are normally produced for large graphs.
pub fn diameter_estimate(g: &Csr, sweeps: usize) -> u32 {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut best = 0u32;
    // Deterministic spread of starting vertices.
    let mut start = 0u32;
    for i in 0..sweeps.max(1) {
        let dist = bfs_distances(g, start);
        let (far, d) = dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != UNREACHED)
            .max_by_key(|&(_, &d)| d)
            .map(|(v, &d)| (v as u32, d))
            .unwrap_or((start, 0));
        best = best.max(d);
        start = far;
        // After the sweep converges, restart elsewhere to escape a
        // small component.
        if d == 0 {
            start = ((i as u64 + 1) * 0x9E37_79B9 % n as u64) as u32;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Csr {
        Csr::from_undirected_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn bfs_distances_on_path() {
        let d = bfs_distances(&path5(), 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = bfs_distances(&path5(), 2);
        assert_eq!(d2, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreached_is_marked() {
        let g = Csr::from_undirected_edges(4, [(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHED);
        assert_eq!(d[3], UNREACHED);
    }

    #[test]
    fn eccentricity_of_path() {
        assert_eq!(eccentricity(&path5(), 0), 4);
        assert_eq!(eccentricity(&path5(), 2), 2);
    }

    #[test]
    fn frontier_sizes_match_distances() {
        let sizes = frontier_sizes(&path5(), 0);
        assert_eq!(sizes, vec![1, 1, 1, 1, 1]);
        let star = Csr::from_undirected_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(frontier_sizes(&star, 0), vec![1, 4]);
    }

    #[test]
    fn edge_frontier_counts_outgoing_degree() {
        let star = Csr::from_undirected_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        // Level 0 is the hub with degree 4; level 1 is 4 leaves of degree 1.
        assert_eq!(edge_frontier_sizes(&star, 0), vec![4, 4]);
    }

    #[test]
    fn components_counted() {
        let g = Csr::from_undirected_edges(6, [(0, 1), (1, 2), (3, 4)]);
        let comp = connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[0]);
        assert_eq!(num_components(&g), 3);
        assert!(!is_connected(&g));
        assert!(is_connected(&path5()));
    }

    #[test]
    fn exact_diameter_of_known_shapes() {
        assert_eq!(exact_diameter(&path5()), 4);
        let cycle6 =
            Csr::from_undirected_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(exact_diameter(&cycle6), 3);
    }

    #[test]
    fn diameter_estimate_is_lower_bound_and_tight_on_path() {
        let g = path5();
        let est = diameter_estimate(&g, 4);
        assert_eq!(est, 4);
        let est1 = diameter_estimate(&g, 1);
        assert!(est1 <= 4);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = Csr::from_undirected_edges(0, []);
        assert_eq!(num_components(&g), 0);
        assert!(is_connected(&g));
        assert_eq!(exact_diameter(&g), 0);
        assert_eq!(diameter_estimate(&g, 3), 0);
    }
}
