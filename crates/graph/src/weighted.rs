//! Weighted graphs: a CSR with per-arc weights.
//!
//! The paper computes BC on unweighted graphs; its related-work
//! section points at Davidson et al.'s GPU SSSP and calls hybrid
//! strategies for that problem future work. This module provides the
//! substrate for that extension: weighted adjacency aligned with the
//! CSR arc order, consumed by `bc-core`'s Dijkstra-based Brandes.

use crate::csr::{Csr, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A graph with a non-negative weight per directed arc. Symmetric
/// graphs carry the same weight on both directions by construction.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedCsr {
    graph: Csr,
    weights: Vec<f32>,
}

impl WeightedCsr {
    /// Attach explicit per-arc weights (must match
    /// [`Csr::num_directed_edges`] and be non-negative and finite).
    pub fn new(graph: Csr, weights: Vec<f32>) -> Self {
        assert_eq!(
            weights.len(),
            graph.num_directed_edges(),
            "one weight per arc"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        WeightedCsr { graph, weights }
    }

    /// Build from undirected weighted edges; both arcs of an edge get
    /// its weight. Duplicate edges keep the smallest weight.
    pub fn from_undirected_edges(
        num_vertices: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId, f32)>,
    ) -> Self {
        let mut best: std::collections::HashMap<(u32, u32), f32> = std::collections::HashMap::new();
        for (u, v, w) in edges {
            assert!(w.is_finite() && w >= 0.0, "bad weight {w}");
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            best.entry(key).and_modify(|e| *e = e.min(w)).or_insert(w);
        }
        let graph = Csr::from_undirected_edges(num_vertices, best.keys().copied());
        let mut weights = vec![0.0f32; graph.num_directed_edges()];
        for u in graph.vertices() {
            for (e, &v) in graph.edge_range(u).zip(graph.neighbors(u)) {
                let key = if u < v { (u, v) } else { (v, u) };
                weights[e] = best[&key];
            }
        }
        WeightedCsr { graph, weights }
    }

    /// Assign uniform weight 1 to every arc of an existing graph
    /// (weighted BC then equals unweighted BC — the cross-validation
    /// hook).
    pub fn with_unit_weights(graph: Csr) -> Self {
        let m = graph.num_directed_edges();
        WeightedCsr {
            graph,
            weights: vec![1.0; m],
        }
    }

    /// Assign deterministic pseudo-random weights in `[lo, hi)` to an
    /// existing symmetric graph (both arc directions get the edge's
    /// weight).
    pub fn with_random_weights(graph: Csr, lo: f32, hi: f32, seed: u64) -> Self {
        assert!(
            graph.is_symmetric(),
            "random edge weights need a symmetric graph"
        );
        assert!(lo >= 0.0 && hi > lo);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Draw one weight per undirected edge (u < v), mirror to both
        // arcs.
        let mut per_edge: std::collections::HashMap<(u32, u32), f32> =
            std::collections::HashMap::new();
        for (u, v) in graph.arcs() {
            if u < v {
                per_edge.insert((u, v), rng.gen_range(lo..hi));
            }
        }
        let mut weights = vec![0.0f32; graph.num_directed_edges()];
        for u in graph.vertices() {
            for (e, &v) in graph.edge_range(u).zip(graph.neighbors(u)) {
                let key = if u < v { (u, v) } else { (v, u) };
                weights[e] = per_edge[&key];
            }
        }
        WeightedCsr { graph, weights }
    }

    /// The underlying topology.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// Weight of arc `e` (index into the adjacency array).
    #[inline]
    pub fn weight(&self, e: usize) -> f32 {
        self.weights[e]
    }

    /// All arc weights, adjacency-aligned.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Iterate `(edge_id, neighbor, weight)` for a vertex.
    pub fn neighbors_weighted(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (usize, VertexId, f32)> + '_ {
        self.graph
            .edge_range(v)
            .zip(self.graph.neighbors(v))
            .map(move |(e, &w)| (e, w, self.weights[e]))
    }

    /// Multiply every weight by `factor` (> 0). Shortest-path
    /// structure — and therefore BC — is invariant under this.
    pub fn scale_weights(&mut self, factor: f32) {
        assert!(factor > 0.0 && factor.is_finite());
        for w in self.weights.iter_mut() {
            *w *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn from_weighted_edges() {
        let wg = WeightedCsr::from_undirected_edges(3, [(0, 1, 2.0), (1, 2, 3.0)]);
        assert_eq!(wg.graph().num_undirected_edges(), 2);
        // Both directions carry the weight.
        for (_, v, w) in wg.neighbors_weighted(1) {
            if v == 0 {
                assert_eq!(w, 2.0);
            } else {
                assert_eq!(w, 3.0);
            }
        }
    }

    #[test]
    fn duplicate_edges_keep_minimum() {
        let wg = WeightedCsr::from_undirected_edges(2, [(0, 1, 5.0), (1, 0, 2.0)]);
        assert_eq!(wg.weight(0), 2.0);
    }

    #[test]
    fn unit_weights_cover_all_arcs() {
        let g = gen::grid(3, 3);
        let wg = WeightedCsr::with_unit_weights(g.clone());
        assert_eq!(wg.weights().len(), g.num_directed_edges());
        assert!(wg.weights().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn random_weights_symmetric_and_deterministic() {
        let g = gen::erdos_renyi(40, 100, 3);
        let a = WeightedCsr::with_random_weights(g.clone(), 1.0, 10.0, 7);
        let b = WeightedCsr::with_random_weights(g, 1.0, 10.0, 7);
        assert_eq!(a, b);
        // Symmetry: weight(u->v) == weight(v->u).
        for u in a.graph().vertices() {
            for (_, v, w) in a.neighbors_weighted(u) {
                let back = a
                    .neighbors_weighted(v)
                    .find(|&(_, t, _)| t == u)
                    .map(|(_, _, w)| w)
                    .unwrap();
                assert_eq!(w, back);
            }
        }
    }

    #[test]
    fn scaling_weights() {
        let mut wg = WeightedCsr::from_undirected_edges(2, [(0, 1, 2.0)]);
        wg.scale_weights(2.5);
        assert_eq!(wg.weight(0), 5.0);
    }

    #[test]
    #[should_panic(expected = "one weight per arc")]
    fn weight_count_must_match() {
        let g = gen::path(3);
        let _ = WeightedCsr::new(g, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let g = gen::path(2);
        let _ = WeightedCsr::new(g, vec![-1.0, 1.0]);
    }
}
