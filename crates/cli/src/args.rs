//! Argument parsing for the `hybrid-bc` binary. Hand-rolled (no CLI
//! dependency): `--flag value` pairs plus `--help`.

use bc_cluster::FaultPlan;
use bc_core::{
    HybridParams, Method, PartitionMode, RootSelection, SamplingParams, Schedule, TraversalMode,
};
use bc_gpusim::DeviceConfig;
use bc_graph::Relabeling;

/// How to execute the computation.
#[derive(Clone, Debug, PartialEq)]
pub enum RunMethod {
    /// Host-side sequential Brandes.
    Sequential,
    /// Host-side multi-threaded Brandes.
    CpuParallel,
    /// One of the six simulated GPU methods.
    Simulated(Method),
}

impl RunMethod {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            RunMethod::Sequential => "sequential",
            RunMethod::CpuParallel => "cpu",
            RunMethod::Simulated(m) => m.name(),
        }
    }
}

/// Parsed invocation.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Path to a graph file (format by extension), mutually
    /// exclusive with `dataset`.
    pub graph: Option<String>,
    /// Name of a Table II dataset analogue to generate.
    pub dataset: Option<String>,
    /// Scale reduction for generated datasets.
    pub reduction: u32,
    /// Generator seed.
    pub seed: u64,
    /// Vertex relabeling applied after load (scores are reported in
    /// the original vertex numbering either way).
    pub relabel: Relabeling,
    /// Allow graphs larger than device memory to run by streaming
    /// CSR slices from host memory (single-device and cluster runs).
    pub partition: PartitionMode,
    /// BC method.
    pub method: RunMethod,
    /// Root selection.
    pub roots: RootSelection,
    /// Simulated device.
    pub device: DeviceConfig,
    /// Host threads for the multi-root runner (0 = auto).
    pub threads: usize,
    /// Forward-sweep direction for the frontier-queue methods.
    pub traversal: TraversalMode,
    /// How root shards are assigned to host workers (and roots to
    /// GPUs under `--cluster`).
    pub schedule: Schedule,
    /// Run on a simulated multi-node cluster with this many nodes
    /// (3 GPUs each) instead of a single device.
    pub cluster: Option<usize>,
    /// Deterministic fault-injection plan for `--cluster` runs.
    pub faults: FaultPlan,
    /// Checkpoint directory for `--cluster` runs: completed per-root
    /// contributions stream here, and a rerun of the same
    /// configuration resumes from them.
    pub checkpoint: Option<String>,
    /// Per-root watchdog deadline as a multiple (≥ 1) of the root's
    /// estimated time; hung stragglers are cancelled and migrated.
    pub deadline_factor: Option<f64>,
    /// Engage the graceful-degradation ladder's sampled rung when the
    /// method cannot fit device memory even partitioned.
    pub degrade: bool,
    /// Normalize scores.
    pub normalize: bool,
    /// Serve this many randomized queries through the batched,
    /// epoch-cached `bc-serve` layer instead of one offline run.
    pub serve: Option<usize>,
    /// Batching window (simulated seconds) for `--serve`.
    pub serve_window: f64,
    /// Random edge edits interleaved into the `--serve` workload.
    pub serve_edits: usize,
    /// Run the bc-verify checks (CSR invariants, traced replay of a
    /// few roots, score sanity) on this run.
    pub verify: bool,
    /// Run the bc-analyze smoke pass (kernel-IR race proofs, a quick
    /// exhaustive scheduler-interleaving exploration, spec-vs-trace
    /// conformance) before the run.
    pub analyze: bool,
    /// Print the top-K vertices.
    pub top: usize,
    /// Write all scores to this path.
    pub out: Option<String>,
    /// Emit the run report as JSON on stdout.
    pub json: bool,
    /// Run metered and write per-root / per-GPU metrics as JSONL to
    /// this path.
    pub metrics: Option<String>,
}

/// Usage text.
pub const USAGE: &str = "\
hybrid-bc — betweenness centrality with the SC'14 hybrid GPU methods

USAGE:
    hybrid-bc [--graph FILE | --dataset NAME] [OPTIONS]

INPUT:
    --graph FILE       read a graph (.graph METIS, .mtx MatrixMarket,
                       .txt/.el edge list, .bin binary CSR)
    --dataset NAME     generate a Table II analogue (af_shell9,
                       caidaRouterLevel, cnr-2000, com-amazon,
                       delaunay_n20, kron_g500-logn20, loc-gowalla,
                       luxembourg.osm, rgg_n_2_20, smallworld)
    --reduction R      halve the dataset size R times      [default: 4]
    --seed S           generator seed               [default: 20140101]

COMPUTATION:
    --method M         sequential | cpu | vertex-parallel |
                       edge-parallel | gpu-fan | work-efficient |
                       hybrid | sampling             [default: sampling]
    --roots R          all | a number K (strided sample)  [default: all]
    --device D         titan | m2090                    [default: titan]
    --threads T        host threads for the multi-root runner; scores
                       are bitwise identical at any count [default: auto]
    --traversal T      push | pull | auto — forward-sweep direction for
                       the frontier-queue methods; auto switches to the
                       bottom-up bitmap kernel on saturated frontiers
                       (scores are bitwise identical)   [default: push]
    --schedule S       static | guided | work-stealing — how root
                       shards are assigned to host workers (and roots
                       to GPUs with --cluster); dynamic schedules seed
                       queues longest-first from a per-root cost
                       estimate, and scores stay bitwise identical
                       under every schedule             [default: static]
    --relabel R        none | degree — renumber vertices by descending
                       degree before the run; hub-adjacent accesses
                       land in fewer cache lines, and scores are
                       restored to the original numbering (bitwise
                       identical to --relabel none); single-device
                       runs only                        [default: none]
    --partition        allow graphs whose CSR exceeds device memory to
                       run anyway by streaming resident slices from
                       host memory (per-root swap time is priced into
                       the simulated report; scores are bitwise
                       identical); without it such runs abort with the
                       out-of-memory pre-flight error
    --normalize        scale scores by (n-1)(n-2)[/2]

CLUSTER:
    --cluster NODES    run on a simulated cluster of NODES nodes
                       (3 GPUs each, Keeneland interconnect); roots are
                       scheduled per-GPU at root granularity and merged
                       in root order (bitwise identical at any shape)
    --faults SPEC      inject a deterministic fault schedule into the
                       cluster run; comma-separated key=value pairs:
                       seed=N transient=P oom=P panic=P attempts=N
                       backoff=S backoff_cap=S dead=I+J death_fraction=F
                       straggle=I+J slowdown=X drop=P corrupt=P
                       e.g. --faults seed=7,transient=0.05,dead=1,drop=0.1
                       (recoverable schedules return scores bitwise
                       identical to the fault-free run); kill=F kills
                       the process after fraction F of the roots —
                       rerun with the same --checkpoint DIR to resume

DURABILITY (--cluster):
    --checkpoint DIR   stream completed per-root contributions to DIR
                       and resume from whatever an interrupted run
                       left there; the manifest pins the graph digest
                       and the options fingerprint, and a resumed run
                       is bitwise identical to an uninterrupted one
    --deadline-factor F
                       per-root watchdog budget as a multiple (>= 1)
                       of the root's estimated time; GPUs that would
                       blow every deadline have their roots cancelled
                       and migrated to healthy GPUs
    --degrade          when the method cannot fit device memory even
                       with out-of-core partitioning, fall back to the
                       leanest method that fits and approximate from a
                       bounded root sample (the decision and its error
                       bound are recorded on the report) instead of
                       aborting

SERVING:
    --serve N          instead of one offline run, serve N randomized
                       queries (top-k / per-vertex / subgraph) through
                       the batched query server: concurrent requests
                       coalesce into shared multi-root runs and
                       per-root contributions are cached under
                       (epoch, root, options) keys; every answer is
                       bitwise identical to a cold recompute
    --serve-window W   batching window in simulated seconds; requests
                       arriving within W of the first queued request
                       execute as one batch            [default: 0.001]
    --serve-edits E    interleave E random edge inserts/deletes into
                       the workload; each edit bumps the graph epoch
                       and invalidates only the cached roots whose
                       BFS DAG it can touch             [default: 0]

VERIFICATION:
    --verify           run the bc-verify layer on this run: CSR
                       invariants, race-checked traced replay of a few
                       roots, and final-score sanity (exit 1 on failure)
    --analyze          run the bc-analyze smoke pass first: kernel-IR
                       race proofs with atomic-set audit, a quick
                       exhaustive scheduler-interleaving exploration,
                       and spec-vs-trace conformance (exit 1 on failure;
                       the full gate is the standalone bc-analyze binary)

OUTPUT:
    --top K            print the K most central vertices  [default: 10]
    --out FILE         write one score per line to FILE
    --json             print the simulation report as JSON
    --metrics FILE     run metered and write structured metrics as
                       JSONL to FILE: per-root per-level frontier /
                       edge / atomic / direction counters (single
                       device) or per-GPU phase timelines (--cluster),
                       each followed by an aggregated summary line;
                       scores and simulated timings stay bitwise
                       identical to the unmetered run
    --help             this text
";

/// Parse an argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        graph: None,
        dataset: None,
        reduction: 4,
        seed: 20140101,
        relabel: Relabeling::None,
        partition: PartitionMode::Off,
        method: RunMethod::Simulated(Method::Sampling(SamplingParams::default())),
        roots: RootSelection::All,
        device: DeviceConfig::gtx_titan(),
        threads: 0,
        traversal: TraversalMode::Push,
        schedule: Schedule::Static,
        cluster: None,
        faults: FaultPlan::none(),
        checkpoint: None,
        deadline_factor: None,
        degrade: false,
        normalize: false,
        serve: None,
        serve_window: 1e-3,
        serve_edits: 0,
        verify: false,
        analyze: false,
        top: 10,
        out: None,
        json: false,
        metrics: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--graph" => cli.graph = Some(value()?),
            "--dataset" => cli.dataset = Some(value()?),
            "--reduction" => {
                cli.reduction = value()?.parse().map_err(|e| format!("--reduction: {e}"))?
            }
            "--seed" => cli.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--relabel" => {
                cli.relabel = match value()?.as_str() {
                    "none" => Relabeling::None,
                    "degree" => Relabeling::DegreeDesc,
                    other => return Err(format!("unknown relabeling '{other}' (none | degree)")),
                }
            }
            "--partition" => cli.partition = PartitionMode::Auto,
            "--method" => cli.method = parse_method(&value()?)?,
            "--roots" => {
                let v = value()?;
                cli.roots = if v == "all" {
                    RootSelection::All
                } else {
                    RootSelection::Strided(v.parse().map_err(|e| format!("--roots: {e}"))?)
                };
            }
            "--device" => {
                cli.device = match value()?.as_str() {
                    "titan" => DeviceConfig::gtx_titan(),
                    "m2090" => DeviceConfig::tesla_m2090(),
                    other => return Err(format!("unknown device '{other}'")),
                }
            }
            "--threads" => cli.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?,
            "--traversal" => {
                cli.traversal = match value()?.as_str() {
                    "push" => TraversalMode::Push,
                    "pull" => TraversalMode::Pull,
                    "auto" => TraversalMode::Auto,
                    other => return Err(format!("unknown traversal '{other}'")),
                }
            }
            "--schedule" => {
                let v = value()?;
                cli.schedule = Schedule::parse(&v).ok_or_else(|| {
                    format!("unknown schedule '{v}' (static | guided | work-stealing)")
                })?;
            }
            "--cluster" => {
                cli.cluster = Some(value()?.parse().map_err(|e| format!("--cluster: {e}"))?)
            }
            "--faults" => cli.faults = FaultPlan::parse(&value()?)?,
            "--checkpoint" => cli.checkpoint = Some(value()?),
            "--deadline-factor" => {
                let f: f64 = value()?
                    .parse()
                    .map_err(|e| format!("--deadline-factor: {e}"))?;
                if !f.is_finite() || f < 1.0 {
                    return Err(format!(
                        "--deadline-factor must be a finite multiple >= 1, got {f}"
                    ));
                }
                cli.deadline_factor = Some(f);
            }
            "--degrade" => cli.degrade = true,
            "--serve" => cli.serve = Some(value()?.parse().map_err(|e| format!("--serve: {e}"))?),
            "--serve-window" => {
                let w: f64 = value()?
                    .parse()
                    .map_err(|e| format!("--serve-window: {e}"))?;
                if !w.is_finite() || w < 0.0 {
                    return Err(format!(
                        "--serve-window must be a finite non-negative duration, got {w}"
                    ));
                }
                cli.serve_window = w;
            }
            "--serve-edits" => {
                cli.serve_edits = value()?
                    .parse()
                    .map_err(|e| format!("--serve-edits: {e}"))?
            }
            "--normalize" => cli.normalize = true,
            "--verify" => cli.verify = true,
            "--analyze" => cli.analyze = true,
            "--top" => cli.top = value()?.parse().map_err(|e| format!("--top: {e}"))?,
            "--out" => cli.out = Some(value()?),
            "--json" => cli.json = true,
            "--metrics" => cli.metrics = Some(value()?),
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }
    if cli.graph.is_some() == cli.dataset.is_some() {
        return Err(format!(
            "exactly one of --graph or --dataset is required\n\n{USAGE}"
        ));
    }
    if !cli.faults.is_none() && cli.cluster.is_none() {
        return Err(
            "--faults requires --cluster (faults are injected into the cluster runner)".to_owned(),
        );
    }
    if cli.cluster.is_none() {
        if cli.checkpoint.is_some() {
            return Err(
                "--checkpoint requires --cluster (the durable runner streams per-root chunks)"
                    .to_owned(),
            );
        }
        if cli.deadline_factor.is_some() {
            return Err(
                "--deadline-factor requires --cluster (the watchdog guards GPU workers)".to_owned(),
            );
        }
    }
    if cli.cluster.is_some() && !matches!(cli.method, RunMethod::Simulated(_)) {
        return Err(format!(
            "--cluster runs simulated GPU methods only, not '{}'",
            cli.method.name()
        ));
    }
    if cli.schedule != Schedule::Static && cli.method == RunMethod::Sequential {
        return Err(format!(
            "--schedule {} needs a multi-root runner; the sequential method has none",
            cli.schedule
        ));
    }
    if cli.metrics.is_some() && !matches!(cli.method, RunMethod::Simulated(_)) {
        return Err(format!(
            "--metrics instruments the simulated GPU methods only, not '{}'",
            cli.method.name()
        ));
    }
    if cli.relabel != Relabeling::None && cli.cluster.is_some() {
        return Err(
            "--relabel is a single-device option: the cluster runner samples roots by \
             stride in graph order, so renumbering would change the sampled root set"
                .to_owned(),
        );
    }
    if cli.partition == PartitionMode::Auto && !matches!(cli.method, RunMethod::Simulated(_)) {
        return Err(format!(
            "--partition streams device-resident slices, which only the simulated GPU \
             methods have; '{}' runs in host memory",
            cli.method.name()
        ));
    }
    if cli.degrade && !matches!(cli.method, RunMethod::Simulated(_)) {
        return Err(format!(
            "--degrade steps down device-memory pressure, which only the simulated GPU \
             methods have; '{}' runs in host memory",
            cli.method.name()
        ));
    }
    if cli.serve.is_none() {
        if cli.serve_window != 1e-3 {
            return Err("--serve-window requires --serve".to_owned());
        }
        if cli.serve_edits != 0 {
            return Err("--serve-edits requires --serve".to_owned());
        }
    } else {
        if cli.cluster.is_some() {
            return Err(
                "--serve runs the single-device query server; it cannot combine with --cluster"
                    .to_owned(),
            );
        }
        if cli.relabel != Relabeling::None {
            return Err(
                "--serve answers queries in the graph's own numbering; --relabel is a \
                 single-run layout option"
                    .to_owned(),
            );
        }
        if cli.partition == PartitionMode::Auto || cli.degrade {
            return Err(
                "--serve requires the graph resident on the simulated device; \
                 --partition/--degrade apply to offline runs"
                    .to_owned(),
            );
        }
        if cli.verify || cli.analyze {
            return Err(
                "--serve has its own battery (bc-verify stage 8); --verify/--analyze \
                 apply to offline runs"
                    .to_owned(),
            );
        }
    }
    Ok(cli)
}

fn parse_method(name: &str) -> Result<RunMethod, String> {
    Ok(match name {
        "sequential" => RunMethod::Sequential,
        "cpu" => RunMethod::CpuParallel,
        "vertex-parallel" | "vp" => RunMethod::Simulated(Method::VertexParallel),
        "edge-parallel" | "ep" => RunMethod::Simulated(Method::EdgeParallel),
        "gpu-fan" => RunMethod::Simulated(Method::GpuFan),
        "work-efficient" | "we" => RunMethod::Simulated(Method::WorkEfficient),
        "hybrid" => RunMethod::Simulated(Method::Hybrid(HybridParams::default())),
        "sampling" => RunMethod::Simulated(Method::Sampling(SamplingParams::default())),
        other => return Err(format!("unknown method '{other}'\n\n{USAGE}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn minimal_dataset_invocation() {
        let cli = parse(&s(&["--dataset", "smallworld"])).unwrap();
        assert_eq!(cli.dataset.as_deref(), Some("smallworld"));
        assert!(cli.graph.is_none());
        assert_eq!(cli.reduction, 4);
        assert_eq!(cli.method.name(), "sampling");
    }

    #[test]
    fn full_flag_set() {
        let cli = parse(&s(&[
            "--graph",
            "g.mtx",
            "--method",
            "we",
            "--roots",
            "128",
            "--device",
            "m2090",
            "--threads",
            "4",
            "--traversal",
            "auto",
            "--normalize",
            "--verify",
            "--top",
            "5",
            "--out",
            "scores.txt",
            "--json",
        ]))
        .unwrap();
        assert_eq!(cli.graph.as_deref(), Some("g.mtx"));
        assert_eq!(cli.method.name(), "work-efficient");
        assert_eq!(cli.roots, RootSelection::Strided(128));
        assert_eq!(cli.device.name, "Tesla M2090");
        assert_eq!(cli.threads, 4);
        assert_eq!(cli.traversal, TraversalMode::Auto);
        assert!(cli.normalize && cli.json && cli.verify);
        assert!(!cli.analyze);
        assert_eq!(cli.top, 5);
        assert_eq!(cli.out.as_deref(), Some("scores.txt"));
    }

    #[test]
    fn host_methods() {
        let cli = parse(&s(&["--dataset", "smallworld", "--method", "cpu"])).unwrap();
        assert_eq!(cli.method, RunMethod::CpuParallel);
        let cli = parse(&s(&["--dataset", "smallworld", "--method", "sequential"])).unwrap();
        assert_eq!(cli.method, RunMethod::Sequential);
    }

    #[test]
    fn rejects_both_or_neither_inputs() {
        assert!(parse(&s(&[])).is_err());
        assert!(parse(&s(&["--graph", "a", "--dataset", "b"])).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_methods() {
        assert!(parse(&s(&["--dataset", "smallworld", "--wat", "1"])).is_err());
        assert!(parse(&s(&["--dataset", "smallworld", "--method", "magic"])).is_err());
        assert!(parse(&s(&["--dataset", "smallworld", "--device", "h100"])).is_err());
        assert!(parse(&s(&["--dataset", "smallworld", "--traversal", "sideways"])).is_err());
    }

    #[test]
    fn traversal_modes_parse() {
        for (name, mode) in [
            ("push", TraversalMode::Push),
            ("pull", TraversalMode::Pull),
            ("auto", TraversalMode::Auto),
        ] {
            let cli = parse(&s(&["--dataset", "smallworld", "--traversal", name])).unwrap();
            assert_eq!(cli.traversal, mode);
        }
    }

    #[test]
    fn schedules_parse_and_validate() {
        assert_eq!(
            parse(&s(&["--dataset", "smallworld"])).unwrap().schedule,
            Schedule::Static
        );
        for (name, schedule) in [
            ("static", Schedule::Static),
            ("guided", Schedule::Guided),
            ("work-stealing", Schedule::WorkStealing),
        ] {
            let cli = parse(&s(&["--dataset", "smallworld", "--schedule", name])).unwrap();
            assert_eq!(cli.schedule, schedule);
        }
        assert!(parse(&s(&["--dataset", "smallworld", "--schedule", "chaotic"])).is_err());
        // The sequential method has no multi-root runner to schedule.
        assert!(parse(&s(&[
            "--dataset",
            "smallworld",
            "--method",
            "sequential",
            "--schedule",
            "guided"
        ]))
        .is_err());
        // cpu and simulated methods both accept dynamic schedules.
        assert!(parse(&s(&[
            "--dataset",
            "smallworld",
            "--method",
            "cpu",
            "--schedule",
            "work-stealing"
        ]))
        .is_ok());
    }

    #[test]
    fn cluster_and_faults_parse() {
        let cli = parse(&s(&[
            "--dataset",
            "smallworld",
            "--cluster",
            "4",
            "--faults",
            "seed=9,transient=0.1,dead=1+2,drop=0.05",
        ]))
        .unwrap();
        assert_eq!(cli.cluster, Some(4));
        assert_eq!(cli.faults.seed, 9);
        assert_eq!(cli.faults.transient_rate, 0.1);
        assert_eq!(cli.faults.dead_gpus, vec![1, 2]);
        assert_eq!(cli.faults.reduce_drop_rate, 0.05);
    }

    #[test]
    fn faults_require_cluster() {
        assert!(parse(&s(&[
            "--dataset",
            "smallworld",
            "--faults",
            "transient=0.1"
        ]))
        .is_err());
    }

    #[test]
    fn cluster_rejects_host_methods_and_bad_specs() {
        assert!(parse(&s(&[
            "--dataset",
            "smallworld",
            "--cluster",
            "2",
            "--method",
            "cpu"
        ]))
        .is_err());
        assert!(parse(&s(&[
            "--dataset",
            "smallworld",
            "--cluster",
            "2",
            "--faults",
            "transient=lots"
        ]))
        .is_err());
    }

    #[test]
    fn metrics_parses_and_requires_a_simulated_method() {
        let cli = parse(&s(&[
            "--dataset",
            "smallworld",
            "--metrics",
            "metrics.jsonl",
        ]))
        .unwrap();
        assert_eq!(cli.metrics.as_deref(), Some("metrics.jsonl"));
        assert!(parse(&s(&[
            "--dataset",
            "smallworld",
            "--method",
            "cpu",
            "--metrics",
            "m.jsonl"
        ]))
        .is_err());
    }

    #[test]
    fn relabel_parses_and_defaults_to_none() {
        assert_eq!(
            parse(&s(&["--dataset", "smallworld"])).unwrap().relabel,
            Relabeling::None
        );
        let cli = parse(&s(&["--dataset", "smallworld", "--relabel", "degree"])).unwrap();
        assert_eq!(cli.relabel, Relabeling::DegreeDesc);
        let cli = parse(&s(&["--dataset", "smallworld", "--relabel", "none"])).unwrap();
        assert_eq!(cli.relabel, Relabeling::None);
        assert!(parse(&s(&["--dataset", "smallworld", "--relabel", "random"])).is_err());
        // The cluster runner samples roots internally in graph order,
        // so relabeling would silently change the sampled root set.
        assert!(parse(&s(&[
            "--dataset",
            "smallworld",
            "--relabel",
            "degree",
            "--cluster",
            "2"
        ]))
        .is_err());
        // Relabeling applies to host methods too (it is a graph
        // transform, not a device feature).
        assert!(parse(&s(&[
            "--dataset",
            "smallworld",
            "--method",
            "cpu",
            "--relabel",
            "degree"
        ]))
        .is_ok());
    }

    #[test]
    fn partition_is_a_bare_flag_for_simulated_methods() {
        assert_eq!(
            parse(&s(&["--dataset", "smallworld"])).unwrap().partition,
            PartitionMode::Off
        );
        let cli = parse(&s(&["--dataset", "smallworld", "--partition"])).unwrap();
        assert_eq!(cli.partition, PartitionMode::Auto);
        // Composes with --cluster (the runner partitions per-worker).
        let cli = parse(&s(&[
            "--dataset",
            "smallworld",
            "--partition",
            "--cluster",
            "2",
        ]))
        .unwrap();
        assert_eq!(cli.partition, PartitionMode::Auto);
        assert_eq!(cli.cluster, Some(2));
        // Host methods have no device memory to partition.
        assert!(parse(&s(&[
            "--dataset",
            "smallworld",
            "--method",
            "sequential",
            "--partition"
        ]))
        .is_err());
    }

    #[test]
    fn durability_flags_parse_and_validate() {
        let cli = parse(&s(&[
            "--dataset",
            "smallworld",
            "--cluster",
            "2",
            "--checkpoint",
            "/tmp/ckpt",
            "--deadline-factor",
            "2.5",
            "--degrade",
        ]))
        .unwrap();
        assert_eq!(cli.checkpoint.as_deref(), Some("/tmp/ckpt"));
        assert_eq!(cli.deadline_factor, Some(2.5));
        assert!(cli.degrade);
        // Both checkpointing and the watchdog are cluster features.
        assert!(parse(&s(&["--dataset", "smallworld", "--checkpoint", "d"])).is_err());
        assert!(parse(&s(&["--dataset", "smallworld", "--deadline-factor", "2"])).is_err());
        // The deadline budget is a multiple of the estimate: < 1 or
        // non-finite makes no sense.
        for bad in ["0.5", "-3", "nan", "inf"] {
            assert!(
                parse(&s(&[
                    "--dataset",
                    "smallworld",
                    "--cluster",
                    "2",
                    "--deadline-factor",
                    bad
                ]))
                .is_err(),
                "deadline factor {bad} must be rejected"
            );
        }
        // --degrade works single-device too (run_or_degrade), but
        // only for simulated methods.
        assert!(parse(&s(&["--dataset", "smallworld", "--degrade"])).is_ok());
        assert!(parse(&s(&[
            "--dataset",
            "smallworld",
            "--method",
            "cpu",
            "--degrade"
        ]))
        .is_err());
        // kill=F parses through the fault spec.
        let cli = parse(&s(&[
            "--dataset",
            "smallworld",
            "--cluster",
            "2",
            "--faults",
            "kill=0.5",
        ]))
        .unwrap();
        assert_eq!(cli.faults.kill_fraction, Some(0.5));
    }

    #[test]
    fn analyze_flag_parses() {
        let cli = parse(&s(&["--dataset", "smallworld", "--analyze"])).unwrap();
        assert!(cli.analyze);
        // --analyze composes with --verify: static then dynamic checks.
        let cli = parse(&s(&["--dataset", "smallworld", "--analyze", "--verify"])).unwrap();
        assert!(cli.analyze && cli.verify);
    }

    #[test]
    fn serve_flags_parse_and_validate() {
        let cli = parse(&s(&[
            "--dataset",
            "smallworld",
            "--serve",
            "32",
            "--serve-window",
            "0.01",
            "--serve-edits",
            "3",
        ]))
        .unwrap();
        assert_eq!(cli.serve, Some(32));
        assert_eq!(cli.serve_window, 0.01);
        assert_eq!(cli.serve_edits, 3);
        // Serve options without --serve are rejected.
        let err = parse(&s(&["--dataset", "smallworld", "--serve-edits", "2"])).unwrap_err();
        assert!(err.contains("requires --serve"));
        // The server is a single-device layer.
        let err = parse(&s(&[
            "--dataset",
            "smallworld",
            "--serve",
            "8",
            "--cluster",
            "2",
        ]))
        .unwrap_err();
        assert!(err.contains("--cluster"));
    }

    #[test]
    fn help_prints_usage() {
        let err = parse(&s(&["--help"])).unwrap_err();
        assert!(err.contains("USAGE"));
    }
}
