//! `hybrid-bc` — command-line betweenness centrality.
//!
//! Loads or generates a graph, runs one of the paper's methods (on
//! the simulated GPU) or a host reference, and reports scores plus
//! the simulation report. See `--help`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod args;

use args::{Cli, RunMethod};
use bc_core::{brandes, BcOptions, RootSelection};
use bc_graph::{io, relabel::RelabeledCsr, Csr, DatasetId, Relabeling};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::time::Instant;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let cli = match args::parse(&raw) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg.starts_with("hybrid-bc") { 0 } else { 2 });
        }
    };
    if let Err(msg) = run(&cli) {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}

fn load_graph(cli: &Cli) -> Result<Csr, String> {
    if let Some(path) = &cli.graph {
        let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let g = if path.ends_with(".mtx") {
            io::read_matrix_market(file).map_err(|e| e.to_string())?
        } else if path.ends_with(".bin") {
            io::read_binary(file).map_err(|e| e.to_string())?
        } else if path.ends_with(".txt") || path.ends_with(".el") || path.ends_with(".edges") {
            io::read_edge_list(file).map_err(|e| e.to_string())?
        } else {
            io::read_metis(file).map_err(|e| e.to_string())?
        };
        Ok(g)
    } else {
        let name = cli
            .dataset
            .as_deref()
            .ok_or("one of --graph or --dataset is required")?;
        let d = DatasetId::from_name(name).ok_or_else(|| {
            format!(
                "unknown dataset '{name}' (known: {})",
                DatasetId::ALL.map(|d| d.name()).join(", ")
            )
        })?;
        Ok(d.generate(cli.reduction, cli.seed))
    }
}

fn run(cli: &Cli) -> Result<(), String> {
    if cli.analyze {
        analyze_run()?;
    }
    let t0 = Instant::now();
    let loaded = load_graph(cli)?;
    eprintln!(
        "graph: {} vertices, {} undirected edges ({}; loaded in {:.2?})",
        loaded.num_vertices(),
        loaded.num_undirected_edges(),
        if loaded.is_symmetric() {
            "undirected"
        } else {
            "directed"
        },
        t0.elapsed()
    );

    if let Some(nodes) = cli.cluster {
        return run_on_cluster(cli, &loaded, nodes);
    }
    if let Some(requests) = cli.serve {
        return run_serve(cli, &loaded, requests);
    }

    // --relabel: renumber the graph after load. Roots are resolved in
    // the ORIGINAL numbering and mapped through the permutation, and
    // scores are restored before any output, so everything downstream
    // of this block (top-K, --out, --verify) sees original vertex ids.
    let relabel: Option<RelabeledCsr> =
        (cli.relabel != Relabeling::None).then(|| bc_graph::relabel::apply(&loaded, cli.relabel));
    let g = relabel.as_ref().map_or(&loaded, |r| &r.graph);
    let roots_sel = match &relabel {
        None => cli.roots.clone(),
        Some(r) => {
            eprintln!(
                "relabel: {} — vertices renumbered by descending degree (scores are \
                 restored to the original numbering)",
                r.relabeling().name()
            );
            RootSelection::Explicit(r.map_roots(&cli.roots.resolve(loaded.num_vertices())))
        }
    };

    let t1 = Instant::now();
    let (scores, report) = match &cli.method {
        RunMethod::Sequential | RunMethod::CpuParallel => {
            let roots = roots_sel.resolve(g.num_vertices());
            let mut scores = match cli.method {
                RunMethod::Sequential => brandes::betweenness_from_roots(g, roots.iter().copied()),
                _ => bc_core::parallel::cpu_betweenness_from_roots_scheduled(
                    g,
                    &roots,
                    cli.threads,
                    cli.schedule,
                )
                .map_err(|e| e.to_string())?,
            };
            if cli.normalize {
                brandes::normalize(&mut scores, g.is_symmetric());
            }
            eprintln!(
                "{} Brandes over {} roots: {:.2?} host wall time",
                cli.method.name(),
                roots.len(),
                t1.elapsed()
            );
            (scores, None)
        }
        RunMethod::Simulated(method) => {
            let opts = BcOptions {
                device: cli.device.clone(),
                roots: roots_sel.clone(),
                normalize: cli.normalize,
                threads: cli.threads,
                traversal: cli.traversal,
                schedule: cli.schedule,
                partition: cli.partition,
            };
            // Metering only observes values the engine already
            // computed, so the metered run is bitwise identical.
            let run = if let Some(path) = &cli.metrics {
                let (run, metrics) = method.run_metered(g, &opts).map_err(|e| e.to_string())?;
                write_metrics(path, &bc_metrics::run_to_jsonl(&metrics))?;
                eprintln!(
                    "wrote metrics for {} root(s) to {path}",
                    metrics.per_root.len()
                );
                run
            } else if cli.degrade {
                let run = bc_core::run_or_degrade(g, method, &opts).map_err(|e| e.to_string())?;
                print_degradation(run.report.degradation.as_ref());
                run
            } else {
                method.run(g, &opts).map_err(|e| e.to_string())?
            };
            eprintln!(
                "{} on simulated {}: {:.3}s simulated ({:.1} MTEPS), {:.2?} host wall time",
                method.name(),
                cli.device.name,
                run.report.full_seconds,
                run.report.mteps(),
                t1.elapsed()
            );
            if let Some((push, pull)) = run.report.traversal_iterations {
                eprintln!(
                    "traversal {}: {push} push / {pull} bottom-up forward launches",
                    cli.traversal.name()
                );
            }
            if let Some(plan) = &run.report.partition {
                eprintln!(
                    "partition: CSR exceeded device memory; streamed {} resident slice(s) \
                     from host (per-root swap time is priced into the report)",
                    plan.num_slices()
                );
            }
            if let RootSelection::Strided(k) = cli.roots {
                eprintln!(
                    "(scores are partial sums over {k} sampled roots; simulated time is \
                     extrapolated to all roots)"
                );
            }
            (run.scores, Some(run.report))
        }
    };
    // Undo the relabeling permutation so every consumer below —
    // top-K, --out, --verify — sees the original vertex numbering.
    let scores = match &relabel {
        None => scores,
        Some(r) => r.restore_scores(&scores),
    };

    // Top-K table.
    if cli.top > 0 {
        let mut ranked: Vec<(u32, f64)> = scores
            .iter()
            .enumerate()
            .map(|(v, &s)| (v as u32, s))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("top {} vertices by betweenness:", cli.top.min(ranked.len()));
        for (v, s) in ranked.iter().take(cli.top) {
            println!("{v:>10}  {s:.6}");
        }
    }

    if let Some(path) = &cli.out {
        let mut w = BufWriter::new(File::create(path).map_err(|e| format!("create {path}: {e}"))?);
        for s in &scores {
            writeln!(w, "{s}").map_err(|e| e.to_string())?;
        }
        w.flush().map_err(|e| e.to_string())?;
        eprintln!("wrote {} scores to {path}", scores.len());
    }

    if cli.json {
        if let Some(report) = &report {
            println!(
                "{}",
                serde_json::to_string_pretty(report).map_err(|e| e.to_string())?
            );
        } else {
            eprintln!("(--json applies to simulated methods only)");
        }
    }

    if cli.verify {
        verify_run(cli, &loaded, &scores)?;
    }
    Ok(())
}

/// `--cluster N`: run the multi-GPU runner, optionally under an
/// injected fault schedule, and report scores, timing, and the fault
/// counters. Recoverable fault schedules yield scores bitwise
/// identical to the fault-free run; unrecoverable ones exit with the
/// structured error (and a note on what partial work completed).
fn run_on_cluster(cli: &Cli, g: &Csr, nodes: usize) -> Result<(), String> {
    let RunMethod::Simulated(method) = &cli.method else {
        return Err("--cluster requires a simulated GPU method".to_owned());
    };
    let n = g.num_vertices();
    let cfg = bc_cluster::ClusterConfig {
        nodes,
        gpus_per_node: 3,
        device: cli.device.clone(),
        network: bc_cluster::NetworkConfig::keeneland(),
        method: method.clone(),
        traversal: cli.traversal,
        schedule: cli.schedule,
    };
    let sample_roots = match &cli.roots {
        RootSelection::All => n,
        RootSelection::FirstK(k) | RootSelection::Strided(k) => *k,
        RootSelection::Explicit(v) => v.len(),
    };

    let durability = bc_cluster::DurabilityOptions {
        checkpoint: cli.checkpoint.as_ref().map(std::path::PathBuf::from),
        deadline_factor: cli.deadline_factor,
        degrade: cli.degrade,
    };
    let t = Instant::now();
    let outcome = if cli.metrics.is_some() {
        bc_cluster::run_cluster_durable_metered(g, &cfg, sample_roots, &cli.faults, &durability)
    } else {
        bc_cluster::run_cluster_durable(g, &cfg, sample_roots, &cli.faults, &durability)
            .map(|run| (run, bc_metrics::ClusterMetrics::default()))
    };
    let (run, cluster_metrics) = match outcome {
        Ok(out) => out,
        Err(e) => {
            if let Some(partial) = e.partial() {
                eprintln!(
                    "partial result before failure: {} root(s) completed, checksum {:#018x}",
                    partial.report.roots_sampled, partial.report.checksum
                );
            }
            return Err(e.to_string());
        }
    };
    print_degradation(run.report.degradation.as_ref());
    let planned_roots = match &run.report.degradation {
        Some(bc_core::Degradation::Sampled { sources, .. }) => *sources,
        _ => sample_roots.min(n),
    };
    if cli.checkpoint.is_some() && run.report.roots_sampled < planned_roots {
        eprintln!(
            "checkpoint: resumed — {} of {planned_roots} root(s) were already on disk",
            planned_roots - run.report.roots_sampled,
        );
    }
    if let Some(path) = &cli.metrics {
        write_metrics(path, &bc_metrics::cluster_to_jsonl(&cluster_metrics))?;
        eprintln!(
            "wrote metrics for {} GPU(s) to {path}",
            cluster_metrics.per_gpu.len()
        );
    }
    let report = run.report;
    eprintln!(
        "{} on {} node(s) / {} simulated {}: {:.3}s simulated \
         ({:.2} GTEPS; compute {:.3}s + reduce {:.3}s), {:.2?} host wall time",
        method.name(),
        report.nodes,
        report.gpus,
        cli.device.name,
        report.total_seconds,
        report.gteps(),
        report.compute_seconds,
        report.reduce_seconds,
        t.elapsed()
    );
    let f = &report.faults;
    if !cli.faults.is_none() {
        eprintln!(
            "faults: {} transient / {} oom / {} panics contained; {} retries \
             ({:.3}s backoff); {} GPU(s) lost, {} root(s) reassigned ({:.3}s); \
             {} straggler(s) (+{:.3}s); reduce {} dropped / {} corrupted; \
             +{:.3}s total",
            f.transient_faults,
            f.oom_faults,
            f.panics_contained,
            f.retries,
            f.backoff_seconds,
            f.dead_gpus,
            f.reassigned_roots,
            f.reassign_seconds,
            f.straggler_gpus,
            f.straggler_seconds,
            f.reduce_drops,
            f.reduce_corruptions,
            f.added_seconds
        );
        if f.watchdog_cancellations > 0 {
            eprintln!(
                "watchdog: {} root(s) cancelled off deadline-blowing GPU(s) and migrated \
                 (+{:.3}s burned budget)",
                f.watchdog_cancellations, f.watchdog_seconds
            );
        }
        eprintln!(
            "scores verified: checksum {:#018x} (bitwise identical to the fault-free schedule)",
            report.checksum
        );
    }
    if report.roots_sampled < n {
        eprintln!(
            "(scores are partial sums over {} sampled roots; simulated time is \
             extrapolated to all roots)",
            report.roots_sampled
        );
    }

    let mut scores = run.scores;
    if cli.normalize {
        brandes::normalize(&mut scores, g.is_symmetric());
    }

    if cli.top > 0 {
        let mut ranked: Vec<(u32, f64)> = scores
            .iter()
            .enumerate()
            .map(|(v, &s)| (v as u32, s))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("top {} vertices by betweenness:", cli.top.min(ranked.len()));
        for (v, s) in ranked.iter().take(cli.top) {
            println!("{v:>10}  {s:.6}");
        }
    }

    if let Some(path) = &cli.out {
        let mut w = BufWriter::new(File::create(path).map_err(|e| format!("create {path}: {e}"))?);
        for s in &scores {
            writeln!(w, "{s}").map_err(|e| e.to_string())?;
        }
        w.flush().map_err(|e| e.to_string())?;
        eprintln!("wrote {} scores to {path}", scores.len());
    }

    if cli.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    }

    if cli.verify {
        verify_run(cli, g, &scores)?;
    }
    Ok(())
}

/// `--serve N`: feed a seeded open-loop workload of N randomized
/// queries (optionally interleaved with `--serve-edits` edge edits)
/// through the batched, epoch-cached query server and report latency
/// percentiles plus cache behavior. `--metrics FILE` writes one
/// `{"kind":"serve"}` JSONL row per batch and per edit.
fn run_serve(cli: &Cli, g: &Csr, requests: usize) -> Result<(), String> {
    use bc_serve::{open_loop_events, percentile, random_edits, BcServer, QueryMix, ServeConfig};
    let config = ServeConfig {
        device: cli.device.clone(),
        threads: cli.threads,
        schedule: cli.schedule,
        traversal: cli.traversal,
        normalize: cli.normalize,
        window: cli.serve_window,
        ..ServeConfig::default()
    };
    eprintln!(
        "serve: {requests} request(s), window {}s, {} edit(s), cache {} MiB",
        config.window,
        cli.serve_edits,
        config.cache_budget_bytes >> 20
    );

    let t = Instant::now();
    let mix = QueryMix::for_graph(g.num_vertices());
    let mut events = open_loop_events("default", &mix, requests, 50.0, 0, cli.seed);
    let span = events.last().map(|e| e.at()).unwrap_or(0.0);
    events.extend(random_edits(g, "default", cli.serve_edits, span, cli.seed));
    let mut server = BcServer::single(g.clone(), config);
    let out = server.run(events).map_err(|e| e.to_string())?;

    let latencies: Vec<f64> = out.responses.iter().map(|r| r.latency).collect();
    let batches = out.rows.iter().filter(|r| r.event == "batch").count();
    let stats = server.cache_stats();
    println!(
        "served {} request(s) in {batches} batch(es): p50 {:.6}s / p95 {:.6}s / p99 {:.6}s \
         simulated latency ({:.2?} host wall time)",
        latencies.len(),
        percentile(&latencies, 50.0),
        percentile(&latencies, 95.0),
        percentile(&latencies, 99.0),
        t.elapsed()
    );
    println!(
        "cache: {} hit(s), {} miss(es), {} eviction(s); {} contribution(s) resident; \
         final epoch {}",
        stats.hits,
        stats.misses,
        stats.evictions,
        server.cache_len(),
        server.epoch("default").unwrap_or(0)
    );
    if let Some(path) = &cli.metrics {
        write_metrics(path, &bc_metrics::serve_to_jsonl(&out.rows))?;
        eprintln!("wrote {} serve row(s) to {path}", out.rows.len());
    }
    Ok(())
}

/// Report what the graceful-degradation ladder decided, if anything.
fn print_degradation(d: Option<&bc_core::Degradation>) {
    match d {
        Some(bc_core::Degradation::Partitioned { slices }) => eprintln!(
            "degraded: CSR exceeded device memory; streamed {slices} resident slice(s) \
             out-of-core (scores bitwise identical; swap time priced into the report)"
        ),
        Some(bc_core::Degradation::Sampled {
            method,
            sources,
            error_bound,
        }) => eprintln!(
            "degraded: method cannot fit device memory even partitioned; approximated \
             with '{method}' from {sources} sampled source(s) (Hoeffding bound {error_bound:.4} \
             on normalized scores at 90% confidence)"
        ),
        None => {}
    }
}

/// Write a metrics JSONL blob (`--metrics FILE`).
fn write_metrics(path: &str, jsonl: &str) -> Result<(), String> {
    let mut w = BufWriter::new(File::create(path).map_err(|e| format!("create {path}: {e}"))?);
    w.write_all(jsonl.as_bytes()).map_err(|e| e.to_string())?;
    w.flush().map_err(|e| e.to_string())
}

/// `--analyze`: run the bc-analyze smoke pass — the kernel-IR race
/// prover with its atomic-set audit, the scheduler-interleaving
/// explorer at the quick bound, and a two-dataset spec-vs-trace
/// conformance replay. Input-independent (the proofs quantify over
/// all graphs), so it runs before the graph is even loaded; the full
/// gate (4×6 explorer bound, all ten analogues) is the standalone
/// `bc-analyze` binary.
fn analyze_run() -> Result<(), String> {
    let t = Instant::now();
    let report = bc_analyze::analyze(&bc_analyze::AnalyzeOptions::smoke());
    eprint!("{}", report.render());
    if !report.is_clean() {
        return Err("static analysis found violations (see above)".into());
    }
    eprintln!("analyze: all passes clean in {:.2?}", t.elapsed());
    Ok(())
}

/// Run the bc-verify layer against this invocation's graph and
/// scores: CSR invariants, a race-checked traced replay of a few
/// roots, score sanity, and — for exact unnormalized all-roots runs
/// on small graphs — the Brandes pair-sum identity.
fn verify_run(cli: &Cli, g: &Csr, scores: &[f64]) -> Result<(), String> {
    let t = Instant::now();
    let mut problems = 0usize;

    let csr = bc_verify::check_csr(g);
    for v in &csr {
        eprintln!("verify FAIL: {v}");
    }
    problems += csr.len();

    let n = g.num_vertices();
    let traced_roots = 4.min(n);
    let mut events = 0u64;
    for i in 0..traced_roots {
        let root = ((i * n) / traced_roots) as u32;
        // Replay under the traversal the run actually used, so a
        // pull/auto invocation race-checks the bottom-up kernel it
        // launched, not just the push path.
        let v = if cli.traversal == bc_core::TraversalMode::Push {
            bc_verify::verify_root(g, root, &cli.device)
        } else {
            bc_verify::verify_root_with(
                g,
                root,
                &cli.device,
                bc_core::DirectionOptimizingModel::new(cli.traversal),
            )
        };
        events += v.events;
        for r in &v.races {
            eprintln!("verify FAIL (root {root}): {r}");
        }
        for viol in &v.violations {
            eprintln!("verify FAIL (root {root}): {viol}");
        }
        problems += v.races.len() + v.violations.len();
    }

    let bad_scores = bc_verify::check_scores(scores);
    for v in &bad_scores {
        eprintln!("verify FAIL: {v}");
    }
    problems += bad_scores.len();

    // The pair-sum identity only holds for exact, unnormalized,
    // all-roots scores, and costs an all-pairs BFS — gate it to small
    // instances.
    if cli.roots == RootSelection::All && !cli.normalize && n <= 4096 {
        let pair = bc_verify::check_pair_sum(g, scores);
        for v in &pair {
            eprintln!("verify FAIL: {v}");
        }
        problems += pair.len();
    }

    if problems > 0 {
        return Err(format!("--verify found {problems} problem(s)"));
    }
    eprintln!(
        "verify: clean — CSR invariants, {traced_roots} traced roots ({events} events, race-free), \
         score sanity ({:.2?})",
        t.elapsed()
    );
    Ok(())
}
