//! Frontier instrumentation and representation — the data behind
//! Figure 3 (frontier evolution) and Table I (correlation of frontier
//! sizes with per-iteration execution time), plus the compressed
//! (hierarchical bitmap) frontier the bottom-up sweep consumes.

use crate::engine::{process_root, SearchWorkspace};
use crate::methods::models::WorkEfficientModel;
use bc_gpusim::DeviceConfig;
use bc_graph::{Csr, VertexId};
use serde::{Deserialize, Serialize};

/// Vertices covered by one 32-bit leaf word of a
/// [`CompressedFrontier`].
pub const VERTICES_PER_WORD: u32 = 32;

/// Leaf words covered by one bit of the summary level — so one
/// summary *word* covers `32 × 32 = 1024` vertices.
pub const WORDS_PER_SUMMARY_BIT: u32 = 32;

/// Vertices covered by one summary word (`32 × 32`).
pub const VERTICES_PER_SUMMARY_WORD: u32 = VERTICES_PER_WORD * WORDS_PER_SUMMARY_BIT;

/// A two-level (hierarchical) frontier bitmap: one bit per vertex in
/// the leaf level, one bit per leaf word in the summary level.
///
/// This is the dense frontier representation the bottom-up kernels
/// use in place of `Q_curr`'s sparse queue — 32× denser than a vertex
/// list, with the summary level letting whole 1024-vertex regions be
/// skipped (or cleared) in a single probe. The engine materializes it
/// with the `frontier-compact` kernel on a push→pull direction switch
/// and thereafter maintains it by swapping `F_curr`/`F_next`, exactly
/// like the paper's direction-optimizing BFS bookkeeping.
///
/// Invariant: a leaf word is nonzero only if its summary bit is set
/// ([`Self::set`] maintains both), which is what makes the
/// summary-guided [`Self::clear`] O(occupied regions) instead of
/// O(n/32).
#[derive(Clone, Debug, Default)]
pub struct CompressedFrontier {
    leaf: Vec<u32>,
    summary: Vec<u32>,
}

impl CompressedFrontier {
    /// An empty frontier over `n` vertices.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(VERTICES_PER_WORD as usize);
        let summaries = words.div_ceil(WORDS_PER_SUMMARY_BIT as usize);
        CompressedFrontier {
            leaf: vec![0; words],
            summary: vec![0; summaries],
        }
    }

    /// Leaf words allocated (`⌈n / 32⌉`).
    pub fn leaf_words(&self) -> usize {
        self.leaf.len()
    }

    /// Summary words allocated (`⌈⌈n / 32⌉ / 32⌉`).
    pub fn summary_words(&self) -> usize {
        self.summary.len()
    }

    /// Set vertex `v`'s bit in both levels.
    pub fn set(&mut self, v: VertexId) {
        let word = (v / VERTICES_PER_WORD) as usize;
        self.leaf[word] |= 1u32 << (v % VERTICES_PER_WORD);
        self.summary[word / WORDS_PER_SUMMARY_BIT as usize] |=
            1u32 << (word as u32 % WORDS_PER_SUMMARY_BIT);
    }

    /// Is vertex `v`'s bit set? One leaf-word probe.
    pub fn contains(&self, v: VertexId) -> bool {
        self.leaf[(v / VERTICES_PER_WORD) as usize] & (1u32 << (v % VERTICES_PER_WORD)) != 0
    }

    /// Does the 1024-vertex region holding `v` contain any frontier
    /// vertex at all? One summary-word probe — the hierarchical
    /// shortcut that lets a scan skip empty regions without touching
    /// their leaf words.
    pub fn region_occupied(&self, v: VertexId) -> bool {
        let word = v / VERTICES_PER_WORD;
        self.summary[(word / WORDS_PER_SUMMARY_BIT) as usize]
            & (1u32 << (word % WORDS_PER_SUMMARY_BIT))
            != 0
    }

    /// Nonzero leaf words — the words the compaction kernel actually
    /// materialized (equals the total population count of the summary
    /// level, by the invariant).
    pub fn occupied_leaf_words(&self) -> u64 {
        self.summary.iter().map(|&w| w.count_ones() as u64).sum()
    }

    /// Nonzero summary words — occupied 1024-vertex regions.
    pub fn occupied_summary_words(&self) -> u64 {
        self.summary.iter().filter(|&&w| w != 0).count() as u64
    }

    /// Clear every set bit, guided by the summary level: only leaf
    /// words whose summary bit is set are touched.
    pub fn clear(&mut self) {
        for (si, sw) in self.summary.iter_mut().enumerate() {
            let mut bits = *sw;
            while bits != 0 {
                let b = bits.trailing_zeros();
                self.leaf[si * WORDS_PER_SUMMARY_BIT as usize + b as usize] = 0;
                bits &= bits - 1;
            }
            *sw = 0;
        }
    }

    /// Clear, then set every vertex of `frontier`.
    pub fn rebuild_from(&mut self, frontier: &[VertexId]) {
        self.clear();
        for &v in frontier {
            self.set(v);
        }
    }
}

/// Per-root frontier trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrontierTrace {
    /// The root this trace describes.
    pub root: VertexId,
    /// Vertex-frontier size at each BFS depth.
    pub vertex_frontier: Vec<usize>,
    /// Edge-frontier size at each BFS depth.
    pub edge_frontier: Vec<u64>,
    /// Simulated work-efficient iteration time at each depth.
    pub level_seconds: Vec<f64>,
}

impl FrontierTrace {
    /// Vertex frontier as a percentage of `n` (Figure 3's y-axis).
    pub fn vertex_frontier_percent(&self, n: usize) -> Vec<f64> {
        self.vertex_frontier
            .iter()
            .map(|&f| 100.0 * f as f64 / n as f64)
            .collect()
    }

    /// ρ(vertex frontier, iteration time) — Table I's `ρ_{v,t}`.
    pub fn rho_vt(&self) -> f64 {
        pearson(
            &self
                .vertex_frontier
                .iter()
                .map(|&x| x as f64)
                .collect::<Vec<_>>(),
            &self.level_seconds,
        )
    }

    /// ρ(edge frontier, iteration time) — Table I's `ρ_{e,t}`.
    pub fn rho_et(&self) -> f64 {
        pearson(
            &self
                .edge_frontier
                .iter()
                .map(|&x| x as f64)
                .collect::<Vec<_>>(),
            &self.level_seconds,
        )
    }

    /// Peak vertex-frontier fraction of `n` — the quantity separating
    /// Figure 3's graph classes (over half for small-world/scale-free,
    /// a few percent for meshes and roads).
    pub fn peak_fraction(&self, n: usize) -> f64 {
        self.vertex_frontier.iter().copied().max().unwrap_or(0) as f64 / n as f64
    }
}

/// Trace the frontier evolution of one root using the work-efficient
/// method (the configuration Table I measures).
pub fn trace_root(g: &Csr, root: VertexId, device: &DeviceConfig) -> FrontierTrace {
    let mut ws = SearchWorkspace::new(g.num_vertices());
    let mut bc = vec![0.0; g.num_vertices()];
    let mut model = WorkEfficientModel::default();
    let out = process_root(g, root, device, &mut ws, &mut model, &mut bc);
    FrontierTrace {
        root,
        vertex_frontier: out.frontier_sizes,
        edge_frontier: out.edge_frontier_sizes,
        level_seconds: out.forward_level_seconds,
    }
}

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either sample is constant or shorter than 2.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs paired samples");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::gen;

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "paired samples")]
    fn pearson_rejects_mismatched_lengths() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn trace_shapes_match_graph() {
        let g = gen::path(32);
        let t = trace_root(&g, 0, &DeviceConfig::gtx_titan());
        assert_eq!(t.vertex_frontier.len(), 32);
        assert!(t.vertex_frontier.iter().all(|&f| f == 1));
        assert_eq!(t.level_seconds.len(), 32);
        assert!((t.peak_fraction(32) - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn vertex_frontier_correlates_with_time() {
        // Table I's core claim: ρ_{v,t} is strongly positive for any
        // structure. Use a mesh (high diameter, growing frontiers).
        let g = gen::triangulated_grid(40, 40, 1);
        let t = trace_root(&g, 0, &DeviceConfig::gtx_titan());
        assert!(
            t.rho_vt() > 0.8,
            "vertex frontier should correlate with iteration time, got {}",
            t.rho_vt()
        );
    }

    #[test]
    fn small_world_peak_fraction_is_large() {
        let sw = gen::watts_strogatz(2048, 10, 0.1, 2);
        let t = trace_root(&sw, 0, &DeviceConfig::gtx_titan());
        assert!(
            t.peak_fraction(2048) > 0.4,
            "small-world peak frontier holds over 40% of vertices, got {}",
            t.peak_fraction(2048)
        );
        let road = gen::road_network(2048, 2);
        let tr = trace_root(&road, 0, &DeviceConfig::gtx_titan());
        assert!(
            tr.peak_fraction(road.num_vertices()) < 0.1,
            "road peak frontier stays small, got {}",
            tr.peak_fraction(road.num_vertices())
        );
    }

    #[test]
    fn compressed_frontier_set_contains_and_summary() {
        let mut f = CompressedFrontier::new(5000);
        assert_eq!(f.leaf_words(), 157);
        assert_eq!(f.summary_words(), 5);
        for v in [0u32, 31, 32, 1023, 1024, 4999] {
            assert!(!f.contains(v));
            f.set(v);
            assert!(f.contains(v));
        }
        assert!(!f.contains(1), "neighboring bits stay clear");
        // 0/31 share a word; 32 and 1023 each own one; 1024; 4999.
        assert_eq!(f.occupied_leaf_words(), 5);
        // Regions: [0,1024) holds three words, [1024,2048), [4096,..).
        assert_eq!(f.occupied_summary_words(), 3);
        assert!(f.region_occupied(1) && f.region_occupied(4998));
        assert!(!f.region_occupied(2048), "empty region skips in one probe");
    }

    #[test]
    fn compressed_frontier_clear_restores_empty_state() {
        let mut f = CompressedFrontier::new(4096);
        for v in (0..4096).step_by(7) {
            f.set(v);
        }
        f.clear();
        assert_eq!(f.occupied_leaf_words(), 0);
        assert_eq!(f.occupied_summary_words(), 0);
        assert!((0..4096).all(|v| !f.contains(v)));
        // And the invariant survives reuse.
        f.rebuild_from(&[9, 2048]);
        assert!(f.contains(9) && f.contains(2048) && !f.contains(10));
        assert_eq!(f.occupied_leaf_words(), 2);
    }

    #[test]
    fn compressed_frontier_handles_edge_sizes() {
        // Exactly one word, exactly one summary bit.
        let mut f = CompressedFrontier::new(32);
        assert_eq!((f.leaf_words(), f.summary_words()), (1, 1));
        f.set(31);
        assert!(f.contains(31) && f.region_occupied(0));
        // Empty graph: no words at all.
        let e = CompressedFrontier::new(0);
        assert_eq!((e.leaf_words(), e.summary_words()), (0, 0));
    }

    #[test]
    fn percent_conversion() {
        let t = FrontierTrace {
            root: 0,
            vertex_frontier: vec![1, 50],
            edge_frontier: vec![1, 50],
            level_seconds: vec![0.0, 0.0],
        };
        assert_eq!(t.vertex_frontier_percent(100), vec![1.0, 50.0]);
    }
}
