//! Frontier instrumentation — the data behind Figure 3 (frontier
//! evolution) and Table I (correlation of frontier sizes with
//! per-iteration execution time).

use crate::engine::{process_root, SearchWorkspace};
use crate::methods::models::WorkEfficientModel;
use bc_gpusim::DeviceConfig;
use bc_graph::{Csr, VertexId};
use serde::{Deserialize, Serialize};

/// Per-root frontier trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FrontierTrace {
    /// The root this trace describes.
    pub root: VertexId,
    /// Vertex-frontier size at each BFS depth.
    pub vertex_frontier: Vec<usize>,
    /// Edge-frontier size at each BFS depth.
    pub edge_frontier: Vec<u64>,
    /// Simulated work-efficient iteration time at each depth.
    pub level_seconds: Vec<f64>,
}

impl FrontierTrace {
    /// Vertex frontier as a percentage of `n` (Figure 3's y-axis).
    pub fn vertex_frontier_percent(&self, n: usize) -> Vec<f64> {
        self.vertex_frontier
            .iter()
            .map(|&f| 100.0 * f as f64 / n as f64)
            .collect()
    }

    /// ρ(vertex frontier, iteration time) — Table I's `ρ_{v,t}`.
    pub fn rho_vt(&self) -> f64 {
        pearson(
            &self
                .vertex_frontier
                .iter()
                .map(|&x| x as f64)
                .collect::<Vec<_>>(),
            &self.level_seconds,
        )
    }

    /// ρ(edge frontier, iteration time) — Table I's `ρ_{e,t}`.
    pub fn rho_et(&self) -> f64 {
        pearson(
            &self
                .edge_frontier
                .iter()
                .map(|&x| x as f64)
                .collect::<Vec<_>>(),
            &self.level_seconds,
        )
    }

    /// Peak vertex-frontier fraction of `n` — the quantity separating
    /// Figure 3's graph classes (over half for small-world/scale-free,
    /// a few percent for meshes and roads).
    pub fn peak_fraction(&self, n: usize) -> f64 {
        self.vertex_frontier.iter().copied().max().unwrap_or(0) as f64 / n as f64
    }
}

/// Trace the frontier evolution of one root using the work-efficient
/// method (the configuration Table I measures).
pub fn trace_root(g: &Csr, root: VertexId, device: &DeviceConfig) -> FrontierTrace {
    let mut ws = SearchWorkspace::new(g.num_vertices());
    let mut bc = vec![0.0; g.num_vertices()];
    let mut model = WorkEfficientModel::default();
    let out = process_root(g, root, device, &mut ws, &mut model, &mut bc);
    FrontierTrace {
        root,
        vertex_frontier: out.frontier_sizes,
        edge_frontier: out.edge_frontier_sizes,
        level_seconds: out.forward_level_seconds,
    }
}

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either sample is constant or shorter than 2.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs paired samples");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::gen;

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "paired samples")]
    fn pearson_rejects_mismatched_lengths() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn trace_shapes_match_graph() {
        let g = gen::path(32);
        let t = trace_root(&g, 0, &DeviceConfig::gtx_titan());
        assert_eq!(t.vertex_frontier.len(), 32);
        assert!(t.vertex_frontier.iter().all(|&f| f == 1));
        assert_eq!(t.level_seconds.len(), 32);
        assert!((t.peak_fraction(32) - 1.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn vertex_frontier_correlates_with_time() {
        // Table I's core claim: ρ_{v,t} is strongly positive for any
        // structure. Use a mesh (high diameter, growing frontiers).
        let g = gen::triangulated_grid(40, 40, 1);
        let t = trace_root(&g, 0, &DeviceConfig::gtx_titan());
        assert!(
            t.rho_vt() > 0.8,
            "vertex frontier should correlate with iteration time, got {}",
            t.rho_vt()
        );
    }

    #[test]
    fn small_world_peak_fraction_is_large() {
        let sw = gen::watts_strogatz(2048, 10, 0.1, 2);
        let t = trace_root(&sw, 0, &DeviceConfig::gtx_titan());
        assert!(
            t.peak_fraction(2048) > 0.4,
            "small-world peak frontier holds over 40% of vertices, got {}",
            t.peak_fraction(2048)
        );
        let road = gen::road_network(2048, 2);
        let tr = trace_root(&road, 0, &DeviceConfig::gtx_titan());
        assert!(
            tr.peak_fraction(road.num_vertices()) < 0.1,
            "road peak frontier stays small, got {}",
            tr.peak_fraction(road.num_vertices())
        );
    }

    #[test]
    fn percent_conversion() {
        let t = FrontierTrace {
            root: 0,
            vertex_frontier: vec![1, 50],
            edge_frontier: vec![1, 50],
            level_seconds: vec![0.0, 0.0],
        };
        assert_eq!(t.vertex_frontier_percent(100), vec![1.0, 50.0]);
    }
}
